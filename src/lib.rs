//! # mars-system — workspace facade
//!
//! Re-exports the crates of the MARS reproduction so that examples and
//! integration tests can use a single dependency. See the README for the
//! architecture overview and `DESIGN.md` / `EXPERIMENTS.md` for the mapping
//! between the paper and this codebase.

pub use mars;
pub use mars_chase as chase;
pub use mars_cost as cost;
pub use mars_cq as cq;
pub use mars_grex as grex;
pub use mars_specialize as specialize;
pub use mars_storage as storage;
pub use mars_workloads as workloads;
pub use mars_xml as xml;
pub use mars_xquery as xquery;
