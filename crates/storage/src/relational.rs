//! In-memory relational engine.
//!
//! Tables are stored as ground facts in a symbolic instance (the same
//! representation the chase uses, so the hash-join evaluator is shared), and
//! conjunctive queries — in particular, the relational parts of MARS
//! reformulations — execute directly against it. [`sql_for_query`] renders
//! the SQL text MARS would ship to an external RDBMS.

use mars_chase::{evaluate_bindings, SymbolicInstance};
use mars_cq::{Atom, ConjunctiveQuery, Predicate, Substitution, Term};
use std::collections::BTreeSet;

/// A result row: one value per head term.
pub type Row = Vec<Term>;

/// An in-memory relational database of ground facts.
#[derive(Clone, Debug, Default)]
pub struct RelationalDatabase {
    inst: SymbolicInstance,
}

impl RelationalDatabase {
    /// An empty database.
    pub fn new() -> RelationalDatabase {
        RelationalDatabase::default()
    }

    /// Insert a row of string values into a relation.
    pub fn insert_strs(&mut self, relation: &str, values: &[&str]) {
        let atom = Atom::named(relation, values.iter().map(|v| Term::constant_str(v)).collect());
        self.inst.insert_atom(&atom);
    }

    /// Insert a ground fact.
    pub fn insert_fact(&mut self, fact: &Atom) {
        debug_assert!(fact.is_ground(), "facts must be ground: {fact}");
        self.inst.insert_atom(fact);
    }

    /// Bulk-load ground facts (e.g. a GReX document encoding).
    pub fn load_facts(&mut self, facts: &[Atom]) {
        for f in facts {
            self.insert_fact(f);
        }
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.inst.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.inst.is_empty()
    }

    /// Cardinality of one relation.
    pub fn cardinality(&self, relation: &str) -> usize {
        self.inst.relation(Predicate::new(relation)).len()
    }

    /// Execute a conjunctive query, returning the (deduplicated) head rows.
    pub fn query(&self, q: &ConjunctiveQuery) -> Vec<Row> {
        let bindings =
            evaluate_bindings(&q.body, &q.inequalities, &self.inst, &Substitution::new());
        let mut seen: BTreeSet<Row> = BTreeSet::new();
        let mut out = Vec::new();
        for b in bindings {
            let row: Row = q.head.iter().map(|t| b.apply_term(*t)).collect();
            if seen.insert(row.clone()) {
                out.push(row);
            }
        }
        out
    }

    /// Execute and render the rows as strings (for tests and examples).
    pub fn query_strings(&self, q: &ConjunctiveQuery) -> Vec<Vec<String>> {
        self.query(q)
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|t| match t {
                        Term::Const(c) => c.render(),
                        Term::Var(v) => format!("?{v}"),
                    })
                    .collect()
            })
            .collect()
    }
}

/// Render a conjunctive query as the SQL text MARS would send to an RDBMS
/// (one alias per atom, equi-join predicates from repeated variables,
/// constant selections from constant arguments).
pub fn sql_for_query(q: &ConjunctiveQuery) -> String {
    let mut from = Vec::new();
    let mut wheres = Vec::new();
    let mut first_occurrence: Vec<(mars_cq::Variable, String)> = Vec::new();

    for (i, atom) in q.body.iter().enumerate() {
        let alias = format!("t{i}");
        from.push(format!("{} AS {alias}", atom.predicate.name().replace('#', "_")));
        for (j, arg) in atom.args.iter().enumerate() {
            let col = format!("{alias}.c{j}");
            match arg {
                Term::Const(c) => wheres.push(format!("{col} = '{}'", c.render())),
                Term::Var(v) => {
                    if let Some((_, prev)) = first_occurrence.iter().find(|(pv, _)| pv == v) {
                        wheres.push(format!("{col} = {prev}"));
                    } else {
                        first_occurrence.push((*v, col));
                    }
                }
            }
        }
    }
    for (a, b) in &q.inequalities {
        let render = |t: &Term| match t {
            Term::Const(c) => format!("'{}'", c.render()),
            Term::Var(v) => first_occurrence
                .iter()
                .find(|(pv, _)| pv == v)
                .map(|(_, c)| c.clone())
                .unwrap_or_else(|| "NULL".to_string()),
        };
        wheres.push(format!("{} <> {}", render(a), render(b)));
    }
    let select: Vec<String> = q
        .head
        .iter()
        .map(|t| match t {
            Term::Const(c) => format!("'{}'", c.render()),
            Term::Var(v) => first_occurrence
                .iter()
                .find(|(pv, _)| pv == v)
                .map(|(_, c)| c.clone())
                .unwrap_or_else(|| "NULL".to_string()),
        })
        .collect();
    let mut sql = format!("SELECT DISTINCT {}\nFROM {}", select.join(", "), from.join(", "));
    if !wheres.is_empty() {
        sql.push_str(&format!("\nWHERE {}", wheres.join("\n  AND ")));
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patient_db() -> RelationalDatabase {
        // Example 1.1's proprietary tables.
        let mut db = RelationalDatabase::new();
        for (name, diag) in [("ann", "flu"), ("bob", "asthma")] {
            db.insert_strs("patientDiag", &[name, diag]);
        }
        for (name, drug, usage) in [
            ("ann", "aspirin", "daily"),
            ("bob", "inhaler", "as-needed"),
            ("ann", "vitaminC", "daily"),
        ] {
            db.insert_strs("patientDrug", &[name, drug, usage]);
        }
        db
    }

    #[test]
    fn join_query_over_tables() {
        let db = patient_db();
        // CaseMap's navigation: join the two tables on the patient name and
        // project the name away.
        let q = ConjunctiveQuery::new("Case")
            .with_head(vec![Term::var("diag"), Term::var("drug")])
            .with_body(vec![
                Atom::named("patientDiag", vec![Term::var("n"), Term::var("diag")]),
                Atom::named("patientDrug", vec![Term::var("n"), Term::var("drug"), Term::var("u")]),
            ]);
        let rows = db.query_strings(&q);
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&vec!["flu".to_string(), "aspirin".to_string()]));
        assert!(rows.contains(&vec!["asthma".to_string(), "inhaler".to_string()]));
    }

    #[test]
    fn constants_and_inequalities_filter_rows() {
        let db = patient_db();
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("drug")])
            .with_body(vec![Atom::named(
                "patientDrug",
                vec![Term::var("n"), Term::var("drug"), Term::constant_str("daily")],
            )])
            .with_inequality(Term::var("drug"), Term::constant_str("aspirin"));
        let rows = db.query_strings(&q);
        assert_eq!(rows, vec![vec!["vitaminC".to_string()]]);
    }

    #[test]
    fn duplicate_rows_are_eliminated() {
        let db = patient_db();
        let q = ConjunctiveQuery::new("Q").with_head(vec![Term::var("n")]).with_body(vec![
            Atom::named("patientDrug", vec![Term::var("n"), Term::var("d"), Term::var("u")]),
        ]);
        assert_eq!(db.query(&q).len(), 2);
        assert_eq!(db.cardinality("patientDrug"), 3);
        assert_eq!(db.len(), 5);
        assert!(!db.is_empty());
    }

    #[test]
    fn sql_rendering() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("diag"), Term::var("price")])
            .with_body(vec![
                Atom::named("patientDiag", vec![Term::var("n"), Term::var("diag")]),
                Atom::named("patientDrug", vec![Term::var("n"), Term::var("drug"), Term::var("u")]),
                Atom::named("drugPrice", vec![Term::var("drug"), Term::var("price")]),
            ])
            .with_inequality(Term::var("price"), Term::constant_str("0"));
        let sql = sql_for_query(&q);
        assert!(sql.starts_with("SELECT DISTINCT t0.c1, t2.c1"));
        assert!(sql.contains("FROM patientDiag AS t0, patientDrug AS t1, drugPrice AS t2"));
        assert!(sql.contains("t1.c0 = t0.c0"));
        assert!(sql.contains("t2.c0 = t1.c1"));
        assert!(sql.contains("<> '0'"));
    }

    #[test]
    fn grex_predicates_render_with_sanitized_names() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![Atom::named("child#case.xml", vec![Term::var("p"), Term::var("x")])]);
        let sql = sql_for_query(&q);
        assert!(sql.contains("child_case.xml AS t0"));
    }
}
