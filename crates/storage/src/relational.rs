//! In-memory relational engine.
//!
//! Tables are stored as ground facts in a symbolic instance (the same
//! representation the chase uses, so the counters behind the shared
//! [`mars_cost::StatisticsCatalog`] are maintained on every insert), and
//! conjunctive queries — in particular, the relational parts of MARS
//! reformulations — execute directly against it through a cost-based
//! physical plan ([`RelationalDatabase::plan`], executed by
//! [`crate::executor`]). The historical naive evaluator survives as the
//! explicit [`QueryExecutor::Naive`] ablation. [`sql_for_query`] renders the
//! SQL text MARS would ship to an external RDBMS.

use crate::executor::execute_plan;
use mars_chase::{evaluate_bindings, SymbolicInstance};
use mars_cost::{physical_plan, PhysicalPlan, StatisticsCatalog};
use mars_cq::{Atom, ConjunctiveQuery, Predicate, Substitution, Term, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A result row: one value per head term.
pub type Row = Vec<Term>;

/// Which evaluator executes a conjunctive query.
///
/// Both return the identical row set in the identical (ascending) order —
/// property-tested byte-for-byte in `tests/property_based.rs` — so the choice
/// changes execution cost only, mirroring the chase's `with_naive_joins`
/// ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueryExecutor {
    /// Compile a cost-based physical plan from the store's exact statistics
    /// and execute it (the default).
    #[default]
    Physical,
    /// The historical naive path: enumerate bindings with the chase's
    /// evaluator, then project and deduplicate. Kept as an explicit ablation
    /// and as the executor correctness oracle.
    Naive,
}

/// An in-memory relational database of ground facts.
#[derive(Clone, Debug, Default)]
pub struct RelationalDatabase {
    inst: SymbolicInstance,
}

impl RelationalDatabase {
    /// An empty database.
    pub fn new() -> RelationalDatabase {
        RelationalDatabase::default()
    }

    /// Insert a row of string values into a relation.
    pub fn insert_strs(&mut self, relation: &str, values: &[&str]) {
        let atom = Atom::named(relation, values.iter().map(|v| Term::constant_str(v)).collect());
        self.inst.insert_atom(&atom);
    }

    /// Insert a ground fact.
    pub fn insert_fact(&mut self, fact: &Atom) {
        debug_assert!(fact.is_ground(), "facts must be ground: {fact}");
        self.inst.insert_atom(fact);
    }

    /// Bulk-load ground facts (e.g. a GReX document encoding).
    pub fn load_facts(&mut self, facts: &[Atom]) {
        for f in facts {
            self.insert_fact(f);
        }
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.inst.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.inst.is_empty()
    }

    /// Cardinality of one relation.
    pub fn cardinality(&self, relation: &str) -> usize {
        self.inst.relation(Predicate::new(relation)).len()
    }

    /// Compile `q` into a physical plan against this store's exact
    /// statistics (see [`mars_cost::physical_plan`]). The rendered plan is
    /// golden-snapshot-tested (`tests/golden/plans/`).
    ///
    /// # Panics
    ///
    /// Panics on a body-less query (nothing to scan); [`Self::query`]
    /// handles that degenerate case without planning.
    pub fn plan(&self, q: &ConjunctiveQuery) -> PhysicalPlan {
        physical_plan(q, &self.inst)
    }

    /// Execute a conjunctive query with the default (physical) executor.
    ///
    /// Returns the deduplicated head rows in **ascending row order** — the
    /// engine's deterministic output contract, identical for every
    /// [`QueryExecutor`] and every planner choice.
    pub fn query(&self, q: &ConjunctiveQuery) -> Vec<Row> {
        self.query_with(q, QueryExecutor::Physical)
    }

    /// Execute with the naive evaluator (the explicit ablation path).
    pub fn query_naive(&self, q: &ConjunctiveQuery) -> Vec<Row> {
        self.query_with(q, QueryExecutor::Naive)
    }

    /// Execute a conjunctive query with the chosen executor. Both executors
    /// return the identical rows in the identical (ascending) order.
    pub fn query_with(&self, q: &ConjunctiveQuery, executor: QueryExecutor) -> Vec<Row> {
        if executor == QueryExecutor::Physical && !q.body.is_empty() {
            return execute_plan(&self.plan(q), &self.inst);
        }
        // Naive path (and the body-less degenerate case): enumerate bindings,
        // project the head, deduplicate into ascending order. Rows move into
        // the set (no per-row clone).
        let bindings =
            evaluate_bindings(&q.body, &q.inequalities, &self.inst, &Substitution::new());
        let rows: BTreeSet<Row> =
            bindings.iter().map(|b| q.head.iter().map(|t| b.apply_term(*t)).collect()).collect();
        rows.into_iter().collect()
    }

    /// Execute and render the rows as strings (for tests and examples).
    pub fn query_strings(&self, q: &ConjunctiveQuery) -> Vec<Vec<String>> {
        self.query(q)
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|t| match t {
                        Term::Const(c) => c.render(),
                        Term::Var(v) => format!("?{v}"),
                    })
                    .collect()
            })
            .collect()
    }
}

/// The storage side of the shared statistics catalog: the database keeps its
/// facts in the chase's instance representation, so the same exact counters
/// (tuple counts, per-column distincts, scan ledgers) are maintained on every
/// insert/load and read here by the physical planner and cost estimators.
impl StatisticsCatalog for RelationalDatabase {
    fn tuple_count(&self, relation: Predicate) -> usize {
        self.inst.tuple_count(relation)
    }

    fn column_count(&self, relation: Predicate) -> usize {
        self.inst.column_count(relation)
    }

    fn distinct_in_column(&self, relation: Predicate, col: usize) -> usize {
        self.inst.distinct_in_column(relation, col)
    }

    fn distinct_for_columns(&self, relation: Predicate, cols: &[usize]) -> usize {
        self.inst.distinct_for_columns(relation, cols)
    }

    fn expected_matches(&self, relation: Predicate, cols: &[usize], window: usize) -> usize {
        self.inst.expected_matches(relation, cols, window)
    }

    fn scan_work(&self, relation: Predicate, cols: &[usize]) -> usize {
        self.inst.scan_work(relation, cols)
    }
}

/// SQL rendering failed: the query uses a variable its body never binds, so
/// there is no column to name (the engine-side evaluators handle such unsafe
/// queries; SQL cannot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlUnboundVariable {
    /// The variable with no binding column.
    pub variable: Variable,
    /// Where the variable occurred: `"head"` or `"inequality"`.
    pub place: &'static str,
}

impl fmt::Display for SqlUnboundVariable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot render SQL: {} variable {} is not bound by the query body",
            self.place, self.variable
        )
    }
}

impl std::error::Error for SqlUnboundVariable {}

/// A SQL string literal with embedded single quotes doubled
/// (`O'Brien` → `'O''Brien'`), so rendered constants cannot produce
/// malformed SQL.
fn sql_literal(c: &mars_cq::Constant) -> String {
    format!("'{}'", c.render().replace('\'', "''"))
}

/// Render a conjunctive query as the SQL text MARS would send to an RDBMS
/// (one alias per atom, equi-join predicates from repeated variables,
/// constant selections from constant arguments).
///
/// Errors with [`SqlUnboundVariable`] if the head or an inequality uses a
/// variable the body never binds — such unsafe queries execute on the
/// engine's evaluators but have no SQL rendering (the seed silently rendered
/// them as `NULL`).
pub fn sql_for_query(q: &ConjunctiveQuery) -> Result<String, SqlUnboundVariable> {
    let mut from = Vec::new();
    let mut wheres = Vec::new();
    let mut first_occurrence: Vec<(Variable, String)> = Vec::new();

    for (i, atom) in q.body.iter().enumerate() {
        let alias = format!("t{i}");
        from.push(format!("{} AS {alias}", atom.predicate.name().replace('#', "_")));
        for (j, arg) in atom.args.iter().enumerate() {
            let col = format!("{alias}.c{j}");
            match arg {
                Term::Const(c) => wheres.push(format!("{col} = {}", sql_literal(c))),
                Term::Var(v) => {
                    if let Some((_, prev)) = first_occurrence.iter().find(|(pv, _)| pv == v) {
                        wheres.push(format!("{col} = {prev}"));
                    } else {
                        first_occurrence.push((*v, col));
                    }
                }
            }
        }
    }
    let column = |t: &Term, place: &'static str| match t {
        Term::Const(c) => Ok(sql_literal(c)),
        Term::Var(v) => first_occurrence
            .iter()
            .find(|(pv, _)| pv == v)
            .map(|(_, c)| c.clone())
            .ok_or(SqlUnboundVariable { variable: *v, place }),
    };
    for (a, b) in &q.inequalities {
        wheres.push(format!("{} <> {}", column(a, "inequality")?, column(b, "inequality")?));
    }
    let select = q
        .head
        .iter()
        .map(|t| column(t, "head"))
        .collect::<Result<Vec<String>, SqlUnboundVariable>>()?;
    let mut sql = format!("SELECT DISTINCT {}\nFROM {}", select.join(", "), from.join(", "));
    if !wheres.is_empty() {
        sql.push_str(&format!("\nWHERE {}", wheres.join("\n  AND ")));
    }
    Ok(sql)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patient_db() -> RelationalDatabase {
        // Example 1.1's proprietary tables.
        let mut db = RelationalDatabase::new();
        for (name, diag) in [("ann", "flu"), ("bob", "asthma")] {
            db.insert_strs("patientDiag", &[name, diag]);
        }
        for (name, drug, usage) in [
            ("ann", "aspirin", "daily"),
            ("bob", "inhaler", "as-needed"),
            ("ann", "vitaminC", "daily"),
        ] {
            db.insert_strs("patientDrug", &[name, drug, usage]);
        }
        db
    }

    fn case_query() -> ConjunctiveQuery {
        // CaseMap's navigation: join the two tables on the patient name and
        // project the name away.
        ConjunctiveQuery::new("Case")
            .with_head(vec![Term::var("diag"), Term::var("drug")])
            .with_body(vec![
                Atom::named("patientDiag", vec![Term::var("n"), Term::var("diag")]),
                Atom::named("patientDrug", vec![Term::var("n"), Term::var("drug"), Term::var("u")]),
            ])
    }

    #[test]
    fn join_query_over_tables() {
        let db = patient_db();
        let rows = db.query_strings(&case_query());
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&vec!["flu".to_string(), "aspirin".to_string()]));
        assert!(rows.contains(&vec!["asthma".to_string(), "inhaler".to_string()]));
    }

    #[test]
    fn constants_and_inequalities_filter_rows() {
        let db = patient_db();
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("drug")])
            .with_body(vec![Atom::named(
                "patientDrug",
                vec![Term::var("n"), Term::var("drug"), Term::constant_str("daily")],
            )])
            .with_inequality(Term::var("drug"), Term::constant_str("aspirin"));
        let rows = db.query_strings(&q);
        assert_eq!(rows, vec![vec!["vitaminC".to_string()]]);
        // The constant lands in the scan, not a separate filter.
        let plan = db.plan(&q).to_string();
        assert!(plan.contains("pushdown=[c2='daily']"), "{plan}");
    }

    #[test]
    fn duplicate_rows_are_eliminated() {
        let db = patient_db();
        let q = ConjunctiveQuery::new("Q").with_head(vec![Term::var("n")]).with_body(vec![
            Atom::named("patientDrug", vec![Term::var("n"), Term::var("d"), Term::var("u")]),
        ]);
        assert_eq!(db.query(&q).len(), 2);
        assert_eq!(db.cardinality("patientDrug"), 3);
        assert_eq!(db.len(), 5);
        assert!(!db.is_empty());
    }

    /// Both executors return byte-identical rows in ascending order — the
    /// engine's deterministic output contract.
    #[test]
    fn physical_and_naive_executors_agree_byte_for_byte() {
        let db = patient_db();
        let q = case_query().with_inequality(Term::var("drug"), Term::constant_str("aspirin"));
        let physical = db.query(&q);
        let naive = db.query_naive(&q);
        assert_eq!(physical, naive);
        let mut sorted = physical.clone();
        sorted.sort();
        assert_eq!(physical, sorted, "rows must come back in ascending order");
        assert_eq!(db.query_with(&q, QueryExecutor::default()), physical);
    }

    /// The shared statistics catalog is maintained on insert and visible
    /// through the storage layer.
    #[test]
    fn storage_implements_the_statistics_catalog() {
        let db = patient_db();
        let p = Predicate::new("patientDrug");
        assert_eq!(db.tuple_count(p), 3);
        assert_eq!(db.column_count(p), 3);
        assert_eq!(db.distinct_in_column(p, 0), 2, "ann appears twice");
        assert_eq!(db.distinct_in_column(p, 1), 3);
        assert_eq!(db.distinct_for_columns(p, &[0, 2]), 2);
        assert_eq!(db.expected_matches(p, &[0], 3), 2);
        assert_eq!(db.tuple_count(Predicate::new("missing")), 0);
    }

    #[test]
    fn sql_rendering() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("diag"), Term::var("price")])
            .with_body(vec![
                Atom::named("patientDiag", vec![Term::var("n"), Term::var("diag")]),
                Atom::named("patientDrug", vec![Term::var("n"), Term::var("drug"), Term::var("u")]),
                Atom::named("drugPrice", vec![Term::var("drug"), Term::var("price")]),
            ])
            .with_inequality(Term::var("price"), Term::constant_str("0"));
        let sql = sql_for_query(&q).unwrap();
        assert!(sql.starts_with("SELECT DISTINCT t0.c1, t2.c1"));
        assert!(sql.contains("FROM patientDiag AS t0, patientDrug AS t1, drugPrice AS t2"));
        assert!(sql.contains("t1.c0 = t0.c0"));
        assert!(sql.contains("t2.c0 = t1.c1"));
        assert!(sql.contains("<> '0'"));
    }

    #[test]
    fn grex_predicates_render_with_sanitized_names() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![Atom::named("child#case.xml", vec![Term::var("p"), Term::var("x")])]);
        let sql = sql_for_query(&q).unwrap();
        assert!(sql.contains("child_case.xml AS t0"));
    }

    /// Unbound head/inequality variables are a rendering error, not `NULL`.
    #[test]
    fn unbound_variables_are_a_sql_error() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("ghost")])
            .with_body(vec![Atom::named("r", vec![Term::var("x")])]);
        let err = sql_for_query(&q).unwrap_err();
        assert_eq!(err.place, "head");
        assert_eq!(err.variable, Variable::named("ghost"));
        assert!(err.to_string().contains("not bound"));

        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![Atom::named("r", vec![Term::var("x")])])
            .with_inequality(Term::var("x"), Term::var("ghost"));
        assert_eq!(sql_for_query(&q).unwrap_err().place, "inequality");
    }

    /// Single quotes in constants are doubled, SQL's escape for literals.
    #[test]
    fn quotes_in_constants_are_escaped() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::constant_str("O'Brien")])
            .with_body(vec![Atom::named(
                "person",
                vec![Term::constant_str("O'Brien"), Term::var("x")],
            )])
            .with_inequality(Term::var("x"), Term::constant_str("it's"));
        let sql = sql_for_query(&q).unwrap();
        assert!(sql.contains("SELECT DISTINCT 'O''Brien'"), "{sql}");
        assert!(sql.contains("t0.c0 = 'O''Brien'"), "{sql}");
        assert!(sql.contains("<> 'it''s'"), "{sql}");
    }
}
