//! The XML store and the naive XBind evaluator.
//!
//! The evaluator executes XBind queries directly over the XML documents by
//! nested-loop enumeration of the path atoms — deliberately unsophisticated,
//! because it plays the role of the general-purpose XQuery engines (Galax,
//! Enosys) that the paper measures unreformulated queries on. Reformulated
//! queries instead run over the materialized views (tables via
//! [`RelationalDatabase`](crate::RelationalDatabase), documents via this
//! store), which is where the paper's net saving comes from.

use mars_xml::{eval_path, Document, NodeId, PathValue};
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm};
use std::collections::HashMap;
use std::fmt;

/// A typed evaluation error from the XML store.
///
/// Historically a path atom over an absent document silently produced zero
/// bindings, which made "the document is not loaded" indistinguishable from
/// "the document is empty". Evaluation is now fallible, aligned with the
/// `MarsError`-style structured errors of the rest of the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlStoreError {
    /// A path atom referenced a document the store does not hold.
    MissingDocument {
        /// The name the atom (or a prior binding) referenced.
        document: String,
    },
}

impl fmt::Display for XmlStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlStoreError::MissingDocument { document } => {
                write!(f, "document '{document}' is not in the XML store")
            }
        }
    }
}

impl std::error::Error for XmlStoreError {}

/// A value bound by XBind evaluation: an element node of a named document, or
/// a string.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// An element node.
    Node {
        /// Owning document name.
        document: String,
        /// Node handle.
        node: NodeId,
    },
    /// A string value (text content, attribute value, constant).
    Str(String),
}

impl Value {
    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Node { .. } => None,
        }
    }
}

/// A set of named in-memory XML documents.
#[derive(Clone, Debug, Default)]
pub struct XmlStore {
    documents: HashMap<String, Document>,
}

impl XmlStore {
    /// An empty store.
    pub fn new() -> XmlStore {
        XmlStore::default()
    }

    /// Add (or replace) a document; its `name` field is the lookup key.
    pub fn add_document(&mut self, doc: Document) {
        self.documents.insert(doc.name.clone(), doc);
    }

    /// Look up a document.
    pub fn document(&self, name: &str) -> Option<&Document> {
        self.documents.get(name)
    }

    /// Names of all stored documents.
    pub fn document_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.documents.keys().cloned().collect();
        names.sort();
        names
    }

    /// Total number of element nodes across documents.
    pub fn total_elements(&self) -> usize {
        self.documents.values().map(Document::element_count).sum()
    }

    fn path_values(&self, value: &PathValue, document: &str) -> Value {
        match value {
            PathValue::Node(n) => Value::Node { document: document.to_string(), node: *n },
            PathValue::Text(s) => Value::Str(s.clone()),
        }
    }

    /// Evaluate an XBind query by nested loops over its atoms, optionally
    /// using previously computed results for `QueryRef` atoms (keyed by query
    /// name). Returns one binding map per result (deduplicated when the query
    /// is `distinct`).
    ///
    /// # Errors
    ///
    /// [`XmlStoreError::MissingDocument`] when a path atom references a
    /// document the store does not hold — an absent document is a storage
    /// misconfiguration, not an empty result.
    pub fn eval_xbind(
        &self,
        query: &XBindQuery,
        prior: &HashMap<String, Vec<HashMap<String, Value>>>,
    ) -> Result<Vec<HashMap<String, Value>>, XmlStoreError> {
        let missing =
            |document: &str| XmlStoreError::MissingDocument { document: document.to_string() };
        let mut rows: Vec<HashMap<String, Value>> = vec![HashMap::new()];
        for atom in &query.atoms {
            let mut next = Vec::new();
            for row in &rows {
                match atom {
                    XBindAtom::AbsolutePath { document, path, var } => {
                        let doc = self.document(document).ok_or_else(|| missing(document))?;
                        for v in eval_path(doc, path, None) {
                            let val = self.path_values(&v, document);
                            if let Some(existing) = row.get(var) {
                                if existing == &val {
                                    next.push(row.clone());
                                }
                                continue;
                            }
                            let mut r = row.clone();
                            r.insert(var.clone(), val);
                            next.push(r);
                        }
                    }
                    XBindAtom::RelativePath { path, source, var } => {
                        let Some(Value::Node { document, node }) = row.get(source) else {
                            continue;
                        };
                        let doc = self.document(document).ok_or_else(|| missing(document))?;
                        for v in eval_path(doc, path, Some(*node)) {
                            let val = self.path_values(&v, document);
                            if let Some(existing) = row.get(var) {
                                if existing == &val {
                                    next.push(row.clone());
                                }
                                continue;
                            }
                            let mut r = row.clone();
                            r.insert(var.clone(), val);
                            next.push(r);
                        }
                    }
                    XBindAtom::QueryRef { name, vars } => {
                        for outer in prior.get(name).map(Vec::as_slice).unwrap_or(&[]) {
                            let mut r = row.clone();
                            let mut ok = true;
                            for v in vars {
                                let Some(val) = outer.get(v) else {
                                    ok = false;
                                    break;
                                };
                                match r.get(v) {
                                    Some(existing) if existing != val => {
                                        ok = false;
                                        break;
                                    }
                                    _ => {
                                        r.insert(v.clone(), val.clone());
                                    }
                                }
                            }
                            if ok {
                                next.push(r);
                            }
                        }
                    }
                    XBindAtom::Relational { .. } => {
                        // Relational atoms are executed by the relational
                        // engine; the naive XML engine ignores them (the
                        // workloads never mix them in unreformulated queries).
                        next.push(row.clone());
                    }
                    XBindAtom::Eq(a, b) => {
                        if self.compare(row, a, b) == Some(true) {
                            next.push(row.clone());
                        }
                    }
                    XBindAtom::Neq(a, b) => {
                        if self.compare(row, a, b) == Some(false) {
                            next.push(row.clone());
                        }
                    }
                }
            }
            rows = next;
        }
        if query.distinct {
            let mut seen: Vec<HashMap<String, Value>> = Vec::new();
            for r in rows {
                let projected: HashMap<String, Value> = query
                    .head
                    .iter()
                    .filter_map(|h| r.get(h).map(|v| (h.clone(), v.clone())))
                    .collect();
                if !seen.contains(&projected) {
                    seen.push(projected);
                }
            }
            Ok(seen)
        } else {
            Ok(rows)
        }
    }

    fn compare(&self, row: &HashMap<String, Value>, a: &XBindTerm, b: &XBindTerm) -> Option<bool> {
        let resolve = |t: &XBindTerm| -> Option<Value> {
            match t {
                XBindTerm::Var(v) => row.get(v).cloned(),
                XBindTerm::Str(s) => Some(Value::Str(s.clone())),
            }
        };
        Some(resolve(a)? == resolve(b)?)
    }

    /// Evaluate a chain of decorrelated blocks (outermost first), feeding each
    /// block the results of the previous ones. Returns the bindings of every
    /// block, keyed by block name.
    ///
    /// # Errors
    ///
    /// [`XmlStoreError::MissingDocument`] when any block references a
    /// document the store does not hold (see [`XmlStore::eval_xbind`]).
    pub fn eval_blocks(
        &self,
        blocks: &[XBindQuery],
    ) -> Result<HashMap<String, Vec<HashMap<String, Value>>>, XmlStoreError> {
        let mut results: HashMap<String, Vec<HashMap<String, Value>>> = HashMap::new();
        for block in blocks {
            let rows = self.eval_xbind(block, &results)?;
            results.insert(block.name.clone(), rows);
        }
        Ok(results)
    }
}

/// Navigation statistics over the stored documents, computed from the node
/// arenas on demand. These are the XML-side counters the backend router
/// prices native navigation with (the relational side reads the exact
/// [`StatisticsCatalog`](mars_cost::StatisticsCatalog) counters instead).
/// Documents are small and routing runs once per query block, so a linear
/// walk per call is deliberate — no shadow counters to keep coherent.
impl mars_cost::NavigationStatistics for XmlStore {
    fn has_document(&self, document: &str) -> bool {
        self.documents.contains_key(document)
    }

    fn element_count(&self, document: &str) -> usize {
        self.document(document).map(Document::element_count).unwrap_or(0)
    }

    fn descendant_pairs(&self, document: &str) -> usize {
        let Some(doc) = self.document(document) else { return 0 };
        doc.all_nodes()
            .filter(|id| doc.node(*id).is_element())
            .map(|id| 1 + doc.descendants(id).len())
            .sum()
    }

    fn tag_count(&self, document: &str, tag: &str) -> usize {
        let Some(doc) = self.document(document) else { return 0 };
        doc.all_nodes().filter(|id| doc.node(*id).tag() == Some(tag)).count()
    }

    fn text_count(&self, document: &str) -> usize {
        let Some(doc) = self.document(document) else { return 0 };
        doc.all_nodes()
            .filter(|id| doc.node(*id).is_element() && !doc.text_of(*id).is_empty())
            .count()
    }

    fn attr_count(&self, document: &str) -> usize {
        let Some(doc) = self.document(document) else { return 0 };
        doc.all_nodes()
            .filter(|id| doc.node(*id).is_element())
            .map(|id| doc.node(id).attributes.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_document;
    use mars_xquery::xbind::example_2_1;

    fn books_store() -> XmlStore {
        let mut store = XmlStore::new();
        store.add_document(
            parse_document(
                "books.xml",
                r#"<bib>
                     <book><title>TCP/IP</title><author>Stevens</author></book>
                     <book><title>Data on the Web</title><author>Abiteboul</author><author>Suciu</author></book>
                     <book><title>Advanced TCP/IP</title><author>Stevens</author></book>
                   </bib>"#,
            )
            .unwrap(),
        );
        store
    }

    #[test]
    fn example_2_1_blocks_evaluate_with_correlation() {
        let store = books_store();
        let (xbo, xbi) = example_2_1();
        // The example names the blocks Xbo/Xbi; the inner references "Xbo".
        let results = store.eval_blocks(&[xbo.clone(), xbi.clone()]).unwrap();
        // Distinct authors: Stevens, Abiteboul, Suciu.
        assert_eq!(results["Xbo"].len(), 3);
        // Correlated inner bindings: one per (author, book-with-that-author) pair
        // with title: Stevens×2 + Abiteboul×1 + Suciu×1 = 4.
        assert_eq!(results["Xbi"].len(), 4);
        for row in &results["Xbi"] {
            assert_eq!(row["a"], row["a1"]);
        }
    }

    #[test]
    fn distinct_eliminates_duplicate_head_bindings() {
        let store = books_store();
        let (xbo, _) = example_2_1();
        let mut non_distinct = xbo.clone();
        non_distinct.distinct = false;
        let with = store.eval_xbind(&xbo, &HashMap::new()).unwrap();
        let without = store.eval_xbind(&non_distinct, &HashMap::new()).unwrap();
        assert_eq!(with.len(), 3);
        assert_eq!(without.len(), 4); // Stevens appears twice
    }

    /// A path atom over an absent document is a typed error, not an empty
    /// result — the silent-empty behavior hid storage misconfigurations.
    #[test]
    fn missing_documents_are_a_typed_error() {
        let store = XmlStore::new();
        let (xbo, _) = example_2_1();
        let err = store.eval_xbind(&xbo, &HashMap::new()).unwrap_err();
        assert_eq!(err, XmlStoreError::MissingDocument { document: "books.xml".to_string() });
        assert!(err.to_string().contains("books.xml"));
        assert_eq!(store.total_elements(), 0);
        assert!(store.document_names().is_empty());
    }

    #[test]
    fn inequalities_and_constants() {
        let store = books_store();
        let q = XBindQuery::new("Q")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "books.xml".to_string(),
                path: mars_xml::parse_path("//author/text()").unwrap(),
                var: "a".to_string(),
            })
            .with_atom(XBindAtom::Neq(XBindTerm::var("a"), XBindTerm::str("Stevens")));
        let rows = store.eval_xbind(&q, &HashMap::new()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r["a"].as_str() != Some("Stevens")));
    }
}
