//! The XML store and the naive XBind evaluator.
//!
//! The evaluator executes XBind queries directly over the XML documents by
//! nested-loop enumeration of the path atoms — deliberately unsophisticated,
//! because it plays the role of the general-purpose XQuery engines (Galax,
//! Enosys) that the paper measures unreformulated queries on. Reformulated
//! queries instead run over the materialized views (tables via
//! [`RelationalDatabase`](crate::RelationalDatabase), documents via this
//! store), which is where the paper's net saving comes from.

use mars_xml::{eval_path, Document, NodeId, PathValue};
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm};
use std::collections::HashMap;

/// A value bound by XBind evaluation: an element node of a named document, or
/// a string.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// An element node.
    Node {
        /// Owning document name.
        document: String,
        /// Node handle.
        node: NodeId,
    },
    /// A string value (text content, attribute value, constant).
    Str(String),
}

impl Value {
    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Node { .. } => None,
        }
    }
}

/// A set of named in-memory XML documents.
#[derive(Clone, Debug, Default)]
pub struct XmlStore {
    documents: HashMap<String, Document>,
}

impl XmlStore {
    /// An empty store.
    pub fn new() -> XmlStore {
        XmlStore::default()
    }

    /// Add (or replace) a document; its `name` field is the lookup key.
    pub fn add_document(&mut self, doc: Document) {
        self.documents.insert(doc.name.clone(), doc);
    }

    /// Look up a document.
    pub fn document(&self, name: &str) -> Option<&Document> {
        self.documents.get(name)
    }

    /// Names of all stored documents.
    pub fn document_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.documents.keys().cloned().collect();
        names.sort();
        names
    }

    /// Total number of element nodes across documents.
    pub fn total_elements(&self) -> usize {
        self.documents.values().map(Document::element_count).sum()
    }

    fn path_values(&self, value: &PathValue, document: &str) -> Value {
        match value {
            PathValue::Node(n) => Value::Node { document: document.to_string(), node: *n },
            PathValue::Text(s) => Value::Str(s.clone()),
        }
    }

    /// Evaluate an XBind query by nested loops over its atoms, optionally
    /// using previously computed results for `QueryRef` atoms (keyed by query
    /// name). Returns one binding map per result (deduplicated when the query
    /// is `distinct`).
    pub fn eval_xbind(
        &self,
        query: &XBindQuery,
        prior: &HashMap<String, Vec<HashMap<String, Value>>>,
    ) -> Vec<HashMap<String, Value>> {
        let mut rows: Vec<HashMap<String, Value>> = vec![HashMap::new()];
        for atom in &query.atoms {
            let mut next = Vec::new();
            for row in &rows {
                match atom {
                    XBindAtom::AbsolutePath { document, path, var } => {
                        if let Some(doc) = self.document(document) {
                            for v in eval_path(doc, path, None) {
                                let val = self.path_values(&v, document);
                                if let Some(existing) = row.get(var) {
                                    if existing == &val {
                                        next.push(row.clone());
                                    }
                                    continue;
                                }
                                let mut r = row.clone();
                                r.insert(var.clone(), val);
                                next.push(r);
                            }
                        }
                    }
                    XBindAtom::RelativePath { path, source, var } => {
                        let Some(Value::Node { document, node }) = row.get(source) else {
                            continue;
                        };
                        let Some(doc) = self.document(document) else { continue };
                        for v in eval_path(doc, path, Some(*node)) {
                            let val = self.path_values(&v, document);
                            if let Some(existing) = row.get(var) {
                                if existing == &val {
                                    next.push(row.clone());
                                }
                                continue;
                            }
                            let mut r = row.clone();
                            r.insert(var.clone(), val);
                            next.push(r);
                        }
                    }
                    XBindAtom::QueryRef { name, vars } => {
                        for outer in prior.get(name).map(Vec::as_slice).unwrap_or(&[]) {
                            let mut r = row.clone();
                            let mut ok = true;
                            for v in vars {
                                let Some(val) = outer.get(v) else {
                                    ok = false;
                                    break;
                                };
                                match r.get(v) {
                                    Some(existing) if existing != val => {
                                        ok = false;
                                        break;
                                    }
                                    _ => {
                                        r.insert(v.clone(), val.clone());
                                    }
                                }
                            }
                            if ok {
                                next.push(r);
                            }
                        }
                    }
                    XBindAtom::Relational { .. } => {
                        // Relational atoms are executed by the relational
                        // engine; the naive XML engine ignores them (the
                        // workloads never mix them in unreformulated queries).
                        next.push(row.clone());
                    }
                    XBindAtom::Eq(a, b) => {
                        if self.compare(row, a, b) == Some(true) {
                            next.push(row.clone());
                        }
                    }
                    XBindAtom::Neq(a, b) => {
                        if self.compare(row, a, b) == Some(false) {
                            next.push(row.clone());
                        }
                    }
                }
            }
            rows = next;
        }
        if query.distinct {
            let mut seen: Vec<HashMap<String, Value>> = Vec::new();
            for r in rows {
                let projected: HashMap<String, Value> = query
                    .head
                    .iter()
                    .filter_map(|h| r.get(h).map(|v| (h.clone(), v.clone())))
                    .collect();
                if !seen.contains(&projected) {
                    seen.push(projected);
                }
            }
            seen
        } else {
            rows
        }
    }

    fn compare(&self, row: &HashMap<String, Value>, a: &XBindTerm, b: &XBindTerm) -> Option<bool> {
        let resolve = |t: &XBindTerm| -> Option<Value> {
            match t {
                XBindTerm::Var(v) => row.get(v).cloned(),
                XBindTerm::Str(s) => Some(Value::Str(s.clone())),
            }
        };
        Some(resolve(a)? == resolve(b)?)
    }

    /// Evaluate a chain of decorrelated blocks (outermost first), feeding each
    /// block the results of the previous ones. Returns the bindings of every
    /// block, keyed by block name.
    pub fn eval_blocks(
        &self,
        blocks: &[XBindQuery],
    ) -> HashMap<String, Vec<HashMap<String, Value>>> {
        let mut results: HashMap<String, Vec<HashMap<String, Value>>> = HashMap::new();
        for block in blocks {
            let rows = self.eval_xbind(block, &results);
            results.insert(block.name.clone(), rows);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_document;
    use mars_xquery::xbind::example_2_1;

    fn books_store() -> XmlStore {
        let mut store = XmlStore::new();
        store.add_document(
            parse_document(
                "books.xml",
                r#"<bib>
                     <book><title>TCP/IP</title><author>Stevens</author></book>
                     <book><title>Data on the Web</title><author>Abiteboul</author><author>Suciu</author></book>
                     <book><title>Advanced TCP/IP</title><author>Stevens</author></book>
                   </bib>"#,
            )
            .unwrap(),
        );
        store
    }

    #[test]
    fn example_2_1_blocks_evaluate_with_correlation() {
        let store = books_store();
        let (xbo, xbi) = example_2_1();
        // The example names the blocks Xbo/Xbi; the inner references "Xbo".
        let results = store.eval_blocks(&[xbo.clone(), xbi.clone()]);
        // Distinct authors: Stevens, Abiteboul, Suciu.
        assert_eq!(results["Xbo"].len(), 3);
        // Correlated inner bindings: one per (author, book-with-that-author) pair
        // with title: Stevens×2 + Abiteboul×1 + Suciu×1 = 4.
        assert_eq!(results["Xbi"].len(), 4);
        for row in &results["Xbi"] {
            assert_eq!(row["a"], row["a1"]);
        }
    }

    #[test]
    fn distinct_eliminates_duplicate_head_bindings() {
        let store = books_store();
        let (xbo, _) = example_2_1();
        let mut non_distinct = xbo.clone();
        non_distinct.distinct = false;
        let with = store.eval_xbind(&xbo, &HashMap::new());
        let without = store.eval_xbind(&non_distinct, &HashMap::new());
        assert_eq!(with.len(), 3);
        assert_eq!(without.len(), 4); // Stevens appears twice
    }

    #[test]
    fn missing_documents_give_empty_results() {
        let store = XmlStore::new();
        let (xbo, _) = example_2_1();
        assert!(store.eval_xbind(&xbo, &HashMap::new()).is_empty());
        assert_eq!(store.total_elements(), 0);
        assert!(store.document_names().is_empty());
    }

    #[test]
    fn inequalities_and_constants() {
        let store = books_store();
        let q = XBindQuery::new("Q")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "books.xml".to_string(),
                path: mars_xml::parse_path("//author/text()").unwrap(),
                var: "a".to_string(),
            })
            .with_atom(XBindAtom::Neq(XBindTerm::var("a"), XBindTerm::str("Stevens")));
        let rows = store.eval_xbind(&q, &HashMap::new());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r["a"].as_str() != Some("Stevens")));
    }
}
