//! View materialization and result tagging.
//!
//! * [`materialize_view`] runs a view body over the stores and writes its
//!   output — a stored relation or a flat XML document — into the proprietary
//!   storage. This is the tuning step of the paper (materialized views,
//!   caches of previously answered queries such as `cacheEntry.xml`).
//! * [`tag_results`] assembles the XML result of a client query from the
//!   binding tables of its decorrelated blocks, following the sorted
//!   outer-union approach the paper adopts from XPeranto.

use crate::relational::RelationalDatabase;
use crate::xml_engine::{Value, XmlStore, XmlStoreError};
use mars_grex::{ViewDef, ViewOutput};
use mars_xml::Document;
use mars_xquery::{DecorrelatedQuery, TemplateNode};
use std::collections::HashMap;

/// Materialize a view: evaluate its body over the XML store (its navigation
/// part) and write the result either into the relational database or as a new
/// document in the XML store. Returns the number of rows materialized.
///
/// # Errors
///
/// [`XmlStoreError::MissingDocument`] when the view body navigates a document
/// the store does not hold.
pub fn materialize_view(
    view: &ViewDef,
    xml: &mut XmlStore,
    relational: &mut RelationalDatabase,
) -> Result<usize, XmlStoreError> {
    let bindings = xml.eval_xbind(&view.body, &HashMap::new())?;
    let rows: Vec<Vec<String>> = bindings
        .iter()
        .map(|b| {
            view.body
                .head
                .iter()
                .map(|h| match b.get(h) {
                    Some(Value::Str(s)) => s.clone(),
                    Some(Value::Node { document, node }) => {
                        // Element-valued columns are represented by their text
                        // content (the common case for the paper's flat views).
                        xml.document(document).map(|d| d.text_of(*node)).unwrap_or_default()
                    }
                    None => String::new(),
                })
                .collect()
        })
        .collect();
    // Deduplicate (set semantics for materialized views).
    let mut unique: Vec<Vec<String>> = Vec::new();
    for r in rows {
        if !unique.contains(&r) {
            unique.push(r);
        }
    }

    match &view.output {
        ViewOutput::Relation { name } => {
            for r in &unique {
                let refs: Vec<&str> = r.iter().map(String::as_str).collect();
                relational.insert_strs(name, &refs);
            }
        }
        ViewOutput::XmlFlat { document, row_tag, field_tags } => {
            let mut doc = Document::new(document);
            let root = doc.create_root(&format!("{row_tag}s"));
            for r in &unique {
                let row_el = doc.add_element(root, row_tag);
                for (tag, value) in field_tags.iter().zip(r.iter()) {
                    doc.add_leaf(row_el, tag, value);
                }
            }
            xml.add_document(doc);
        }
    }
    Ok(unique.len())
}

/// Assemble the XML result of a decorrelated query from the bindings of its
/// blocks (sorted outer union tagging).
pub fn tag_results(
    query: &DecorrelatedQuery,
    blocks: &HashMap<String, Vec<HashMap<String, Value>>>,
    xml: &XmlStore,
    result_name: &str,
) -> Document {
    let mut doc = Document::new(result_name);
    let root = doc.create_root("xquery-result");
    for node in &query.template.roots {
        instantiate(node, query, blocks, xml, &mut doc, root, &HashMap::new());
    }
    doc
}

fn value_text(v: &Value, xml: &XmlStore) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Node { document, node } => {
            xml.document(document).map(|d| d.text_of(*node)).unwrap_or_default()
        }
    }
}

fn binding_matches(outer: &HashMap<String, Value>, inner: &HashMap<String, Value>) -> bool {
    outer.iter().all(|(k, v)| inner.get(k).map(|iv| iv == v).unwrap_or(true))
}

fn instantiate(
    node: &TemplateNode,
    query: &DecorrelatedQuery,
    blocks: &HashMap<String, Vec<HashMap<String, Value>>>,
    xml: &XmlStore,
    doc: &mut Document,
    parent: mars_xml::NodeId,
    context: &HashMap<String, Value>,
) {
    match node {
        TemplateNode::Literal(s) => {
            doc.add_text(parent, s);
        }
        TemplateNode::Element { tag, children } => {
            let el = doc.add_element(parent, tag);
            for c in children {
                instantiate(c, query, blocks, xml, doc, el, context);
            }
        }
        TemplateNode::VarText { var, .. } => {
            if let Some(v) = context.get(var) {
                doc.add_text(parent, &value_text(v, xml));
            }
        }
        TemplateNode::ForEach { block, children } => {
            let Some(block_query) = query.blocks.get(*block) else { return };
            let rows = blocks.get(&block_query.name).map(Vec::as_slice).unwrap_or(&[]);
            for row in rows {
                if !binding_matches(context, row) {
                    continue;
                }
                let mut merged = context.clone();
                for (k, v) in row {
                    merged.insert(k.clone(), v.clone());
                }
                for c in children {
                    instantiate(c, query, blocks, xml, doc, parent, &merged);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_document;
    use mars_xquery::{decorrelate, parse_xquery, XBindAtom, XBindQuery};

    fn catalog_store() -> XmlStore {
        let mut store = XmlStore::new();
        store.add_document(
            parse_document(
                "catalog.xml",
                r#"<catalog>
                     <drug><name>aspirin</name><price>3</price><notes><note>generic ok</note></notes></drug>
                     <drug><name>inhaler</name><price>25</price></drug>
                   </catalog>"#,
            )
            .unwrap(),
        );
        store
    }

    fn drug_price_view() -> ViewDef {
        let body = XBindQuery::new("DrugPriceMap")
            .with_head(&["n", "p"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "catalog.xml".to_string(),
                path: mars_xml::parse_path("//drug").unwrap(),
                var: "d".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: mars_xml::parse_path("./name/text()").unwrap(),
                source: "d".to_string(),
                var: "n".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: mars_xml::parse_path("./price/text()").unwrap(),
                source: "d".to_string(),
                var: "p".to_string(),
            });
        ViewDef::relational("drugPrice", body)
    }

    #[test]
    fn materialize_relational_view_from_xml() {
        let mut xml = catalog_store();
        let mut db = RelationalDatabase::new();
        let rows = materialize_view(&drug_price_view(), &mut xml, &mut db).unwrap();
        assert_eq!(rows, 2);
        assert_eq!(db.cardinality("drugPrice"), 2);
    }

    #[test]
    fn materialize_xml_view_creates_a_document() {
        let mut xml = catalog_store();
        let mut db = RelationalDatabase::new();
        let view = ViewDef::xml_flat(
            "CacheEntry",
            drug_price_view().body,
            "cacheEntry.xml",
            "entry",
            &["name", "price"],
        );
        let rows = materialize_view(&view, &mut xml, &mut db).unwrap();
        assert_eq!(rows, 2);
        let doc = xml.document("cacheEntry.xml").expect("document materialized");
        assert_eq!(doc.children_with_tag(doc.root().unwrap(), "entry").count(), 2);
        assert!(doc.to_xml().contains("<price>25</price>"));
    }

    #[test]
    fn tagging_assembles_nested_results() {
        let mut store = XmlStore::new();
        store.add_document(
            parse_document(
                "books.xml",
                r#"<bib>
                     <book><title>TCP/IP</title><author>Stevens</author></book>
                     <book><title>Advanced TCP/IP</title><author>Stevens</author></book>
                     <book><title>Data on the Web</title><author>Abiteboul</author></book>
                   </bib>"#,
            )
            .unwrap(),
        );
        let ast = parse_xquery(
            r#"<result>
                 for $a in distinct(//author/text())
                 return <item><writer>$a</writer>
                   {for $b in //book $a1 in $b/author/text() $t in $b/title
                    where $a = $a1 return <title>$t</title>}
                 </item>
               </result>"#,
        )
        .unwrap();
        let dec = decorrelate(&ast, "books.xml");
        let blocks = store.eval_blocks(&dec.blocks).unwrap();
        let result = tag_results(&dec, &blocks, &store, "result.xml");
        let xml_text = result.to_xml();
        // Two writers, and Stevens' item groups both titles.
        assert_eq!(xml_text.matches("<writer>").count(), 2);
        assert_eq!(xml_text.matches("<title>").count(), 3);
        let stevens_idx = xml_text.find("Stevens").unwrap();
        let abiteboul_idx = xml_text.find("Abiteboul").unwrap();
        assert_ne!(stevens_idx, abiteboul_idx);
    }
}
