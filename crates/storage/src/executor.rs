//! Vectorized evaluation of physical plans over the stored facts.
//!
//! `execute_plan` walks a [`PhysicalPlan`] (compiled by
//! [`mars_cost::physical_plan`] from exact storage statistics) bottom-up.
//! Every operator materializes its output as one flat row-major `Batch` —
//! a single `Vec<Term>` holding `len` rows of `width` columns in the
//! operator's pruned layout — so executing a plan performs a constant number
//! of allocations per operator, not per row. The operators:
//!
//! * `TableScan` streams one relation, applying the pushed-down constant
//!   predicates and intra-atom duplicate-variable checks, and keeps only the
//!   pruned columns;
//! * `HashJoin` hashes the plan-chosen build side on the key columns
//!   (Fx-style multiplicative hashing, with a single-column fast path that
//!   indexes the bare [`Term`]) and probes it with the other side
//!   (intermediate row order is plan-dependent — the root `Distinct`
//!   canonicalizes it away);
//! * `Filter` compacts out rows failing a residual inequality, in place;
//! * `Project` assembles the head row (columns, literal constants, or the
//!   variable itself for unsafe head variables — matching the naive
//!   evaluator);
//! * `Distinct` deduplicates and emits rows in **ascending [`Row`] order** —
//!   the deterministic output order `RelationalDatabase::query` guarantees
//!   for both the physical and the naive evaluator.
//!
//! Correctness does not depend on the planner: any join order, build side or
//! pruning produces the same row set (property-tested byte-identical to the
//! naive evaluator in `tests/property_based.rs`).

use crate::relational::Row;
use mars_chase::SymbolicInstance;
use mars_cost::{BuildSide, Operand, PhysicalPlan};
use mars_cq::Term;
use std::collections::{BTreeSet, HashMap};
use std::hash::BuildHasherDefault;

/// FxHash-style multiplicative hasher. Join keys are one or two tiny `Copy`
/// terms (interned `u32` pairs); SipHash's setup cost per key would dominate
/// the whole probe, and a DoS-resistant hash buys nothing against data the
/// process itself materialized.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }
    fn write_i64(&mut self, n: i64) {
        self.mix(n as u64);
    }
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

type Fx = BuildHasherDefault<FxHasher>;

/// A flat row-major batch: `len` rows of `width` terms each, stored in one
/// contiguous allocation. `width` may be 0 (a Boolean sub-result), which is
/// why `len` is tracked explicitly.
struct Batch {
    width: usize,
    len: usize,
    data: Vec<Term>,
}

impl Batch {
    fn new(width: usize) -> Batch {
        Batch { width, len: 0, data: Vec::new() }
    }

    fn row(&self, i: usize) -> &[Term] {
        &self.data[i * self.width..i * self.width + self.width]
    }

    fn rows(&self) -> impl Iterator<Item = &[Term]> {
        (0..self.len).map(|i| self.row(i))
    }
}

/// Execute `plan` against the stored facts, returning the deduplicated head
/// rows in ascending order. `plan` must be a root plan (ending in
/// `Distinct ∘ Project`, as [`mars_cost::physical_plan`] produces).
pub(crate) fn execute_plan(plan: &PhysicalPlan, inst: &SymbolicInstance) -> Vec<Row> {
    let batch = match plan {
        PhysicalPlan::Distinct { input } => eval(input, inst),
        // physical_plan always roots at Distinct; anything else is still a
        // well-defined batch (deduplicated below all the same).
        other => eval(other, inst),
    };
    let rows: BTreeSet<Row> = batch.rows().map(<[Term]>::to_vec).collect();
    rows.into_iter().collect()
}

/// Resolve an operand against a row (unsafe/unbound variables evaluate to
/// themselves, exactly like the naive evaluator's `apply_term`).
fn resolve(op: &Operand, row: &[Term]) -> Term {
    match op {
        Operand::Column(c) => row[*c],
        Operand::Const(k) => Term::Const(*k),
        Operand::Unbound(v) => Term::Var(*v),
    }
}

/// Hash the `build` batch on `build_cols`, probe with the `probe` batch on
/// `probe_cols`, and call `on_match(build_row, probe_row)` for every
/// matching pair in probe-major order. Single-column keys — the common case
/// for chained star joins — index the bare [`Term`] and skip the per-row
/// key allocation entirely.
fn hash_join(
    build: &Batch,
    probe: &Batch,
    build_cols: &[usize],
    probe_cols: &[usize],
    mut on_match: impl FnMut(usize, usize),
) {
    if let (&[bc], &[pc]) = (build_cols, probe_cols) {
        let mut table: HashMap<Term, Vec<u32>, Fx> =
            HashMap::with_capacity_and_hasher(build.len, Fx::default());
        for (i, row) in build.rows().enumerate() {
            table.entry(row[bc]).or_default().push(i as u32);
        }
        for (p, row) in probe.rows().enumerate() {
            if let Some(ids) = table.get(&row[pc]) {
                for &b in ids {
                    on_match(b as usize, p);
                }
            }
        }
        return;
    }
    let mut table: HashMap<Vec<Term>, Vec<u32>, Fx> =
        HashMap::with_capacity_and_hasher(build.len, Fx::default());
    for (i, row) in build.rows().enumerate() {
        let key: Vec<Term> = build_cols.iter().map(|&c| row[c]).collect();
        table.entry(key).or_default().push(i as u32);
    }
    let mut key: Vec<Term> = Vec::with_capacity(probe_cols.len());
    for (p, row) in probe.rows().enumerate() {
        key.clear();
        key.extend(probe_cols.iter().map(|&c| row[c]));
        if let Some(ids) = table.get(&key) {
            for &b in ids {
                on_match(b as usize, p);
            }
        }
    }
}

fn eval(plan: &PhysicalPlan, inst: &SymbolicInstance) -> Batch {
    match plan {
        PhysicalPlan::TableScan(scan) => {
            let mut out = Batch::new(scan.columns.len());
            for tuple in inst.relation(scan.relation) {
                if scan.pushdown.iter().any(|(c, k)| tuple[*c] != Term::Const(*k)) {
                    continue;
                }
                if scan.duplicates.iter().any(|(a, b)| tuple[*a] != tuple[*b]) {
                    continue;
                }
                out.data.extend(scan.columns.iter().map(|&c| tuple[c]));
                out.len += 1;
            }
            out
        }
        PhysicalPlan::HashJoin { left, right, keys, build, left_keep, right_keep, .. } => {
            let left_rows = eval(left, inst);
            let right_rows = eval(right, inst);
            let mut out = Batch::new(left_keep.len() + right_keep.len());
            if left_rows.len == 0 || right_rows.len == 0 {
                return out;
            }
            let lk: Vec<usize> = keys.iter().map(|&(lc, _)| lc).collect();
            let rk: Vec<usize> = keys.iter().map(|&(_, rc)| rc).collect();
            let mut emit = |lrow: &[Term], rrow: &[Term]| {
                out.data.extend(left_keep.iter().map(|&c| lrow[c]));
                out.data.extend(right_keep.iter().map(|&c| rrow[c]));
                out.len += 1;
            };
            match build {
                BuildSide::Right => hash_join(&right_rows, &left_rows, &rk, &lk, |b, p| {
                    emit(left_rows.row(p), right_rows.row(b))
                }),
                BuildSide::Left => hash_join(&left_rows, &right_rows, &lk, &rk, |b, p| {
                    emit(left_rows.row(b), right_rows.row(p))
                }),
            }
            out
        }
        PhysicalPlan::Filter { input, predicates } => {
            let mut batch = eval(input, inst);
            // In-place compaction: copy each surviving row down over the
            // gap left by dropped ones (rows are `Copy` terms).
            let width = batch.width;
            let mut kept = 0;
            for i in 0..batch.len {
                let row = batch.row(i);
                if predicates.iter().all(|(a, b)| resolve(a, row) != resolve(b, row)) {
                    if kept != i {
                        batch.data.copy_within(i * width..(i + 1) * width, kept * width);
                    }
                    kept += 1;
                }
            }
            batch.data.truncate(kept * width);
            batch.len = kept;
            batch
        }
        PhysicalPlan::Project { input, columns } => {
            let batch = eval(input, inst);
            let mut out = Batch::new(columns.len());
            out.data.reserve(columns.len() * batch.len);
            for i in 0..batch.len {
                let row = batch.row(i);
                out.data.extend(columns.iter().map(|op| resolve(op, row)));
                out.len += 1;
            }
            out
        }
        PhysicalPlan::Distinct { input } => {
            let batch = eval(input, inst);
            let rows: BTreeSet<Vec<Term>> = batch.rows().map(<[Term]>::to_vec).collect();
            let mut out = Batch::new(batch.width);
            for row in rows {
                out.data.extend(row);
                out.len += 1;
            }
            out
        }
    }
}
