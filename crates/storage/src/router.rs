//! The backend router: execute one reformulated query block on the cheapest
//! backend.
//!
//! [`BackendRouter`] prices a conjunctive query (a minimal reformulation from
//! the backchase) with [`mars_cost::route_query`] against the relational
//! store's exact statistics and the XML store's navigation statistics, then
//! executes it through a [`RoutedPlan`]:
//!
//! * **relational** — [`RelationalDatabase::query`] (the physical executor);
//! * **xml** — a native GReX interpreter over the stored [`Document`]s: each
//!   navigation atom (`root#d`, `el#d`, `child#d`, `desc#d`, `tag#d`,
//!   `attr#d`, `id#d`, `text#d`) is enumerated directly from the document
//!   arena, producing exactly the tuples `mars_grex::encode_document` would
//!   load (node identities are the same `"<doc>/n<k>"` constants), so the
//!   two backends agree byte for byte;
//! * **mixed** — the navigation atoms run natively, the remaining atoms run
//!   as a relational subquery, and the two binding sets are hash-joined on
//!   their shared variables.
//!
//! Every route ends in the same head projection (unsafe head variables
//! evaluate to themselves), residual inequality filtering, and ascending
//! [`BTreeSet`] deduplication as the relational executor — the routing
//! decision is advisory, the row set is invariant (property-tested in
//! `tests/property_based.rs` and gated in CI).

use crate::relational::{RelationalDatabase, Row};
use crate::xml_engine::{XmlStore, XmlStoreError};
use mars_cost::{greedy_navigation_key, navigation_parts, route_query};
pub use mars_cost::{Route, RouteCosts, RoutingDecision};
use mars_cq::{Atom, ConjunctiveQuery, Term, Variable};
use mars_xml::{Document, NodeId};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Navigation bindings in slot-indexed form: the variable→column map plus
/// one `Option<Term>` row per surviving binding (see
/// [`BackendRouter::navigate_slots`]).
type SlotBindings = (HashMap<Variable, usize>, Vec<Vec<Option<Term>>>);

/// A query paired with its priced routing decision (see [`BackendRouter::plan`]).
#[derive(Clone, Debug)]
pub struct RoutedPlan {
    /// The query to execute (a reformulation's `best_or_initial`).
    pub query: ConjunctiveQuery,
    /// The decision: chosen route and per-backend estimates.
    pub decision: RoutingDecision,
}

/// The outcome of executing a [`RoutedPlan`]: estimated vs actual cost.
#[derive(Clone, Debug)]
pub struct RoutedExecution {
    /// The route that actually executed (equals the plan's decision).
    pub route: Route,
    /// The router's estimate for that route, in rows touched.
    pub estimated_cost: f64,
    /// The result rows — deduplicated, ascending, identical on every route.
    pub rows: Vec<Row>,
    /// Wall-clock execution time (the actual cost).
    pub duration: Duration,
}

impl RoutedExecution {
    /// Number of result rows actually produced.
    pub fn actual_rows(&self) -> usize {
        self.rows.len()
    }
}

/// A router over one relational store and one XML store (see module docs).
pub struct BackendRouter<'a> {
    db: &'a RelationalDatabase,
    xml: &'a XmlStore,
    /// Per-document navigation indexes, built on first use and reused across
    /// executions — the router borrows the store immutably, so they stay
    /// valid for its whole lifetime.
    indexes: RefCell<HashMap<String, DocIndex<'a>>>,
}

impl<'a> BackendRouter<'a> {
    /// A router over the two stores.
    pub fn new(db: &'a RelationalDatabase, xml: &'a XmlStore) -> BackendRouter<'a> {
        BackendRouter { db, xml, indexes: RefCell::new(HashMap::new()) }
    }

    /// Price `query` against every backend and choose the cheapest (auto
    /// routing).
    pub fn plan(&self, query: &ConjunctiveQuery) -> RoutedPlan {
        let decision = route_query(query, self.db, self.xml);
        RoutedPlan { query: query.clone(), decision }
    }

    /// Force a route, clamped to feasibility: forcing XML on a query with
    /// relational atoms degrades to mixed (navigation still runs natively
    /// wherever possible) and to relational when nothing is navigational;
    /// forcing mixed degrades the same way. The decision records the
    /// *effective* route, so ablation results stay honest.
    pub fn plan_forced(&self, query: &ConjunctiveQuery, route: Route) -> RoutedPlan {
        let mut decision = route_query(query, self.db, self.xml);
        decision.route = match route {
            Route::Relational => Route::Relational,
            Route::Xml | Route::Mixed => {
                if route == Route::Xml && decision.costs.xml.is_some() {
                    Route::Xml
                } else if decision.costs.mixed.is_some() {
                    Route::Mixed
                } else if decision.costs.xml.is_some() {
                    Route::Xml
                } else {
                    Route::Relational
                }
            }
        };
        RoutedPlan { query: query.clone(), decision }
    }

    /// Execute a routed plan.
    ///
    /// # Errors
    ///
    /// [`XmlStoreError::MissingDocument`] when an XML or mixed route
    /// references a document that left the store after planning (routing
    /// itself never chooses a route over absent documents).
    pub fn execute(&self, plan: &RoutedPlan) -> Result<RoutedExecution, XmlStoreError> {
        let start = Instant::now();
        let rows = match plan.decision.route {
            Route::Relational => self.db.query(&plan.query),
            Route::Xml => self.execute_native(&plan.query, &plan.query.body)?,
            Route::Mixed => self.execute_mixed(&plan.query)?,
        };
        Ok(RoutedExecution {
            route: plan.decision.route,
            estimated_cost: plan.decision.chosen_cost(),
            rows,
            duration: start.elapsed(),
        })
    }

    /// Run the navigation atoms natively and finish the query (inequalities,
    /// head projection, set semantics). `nav_atoms` must cover every variable
    /// the query needs — for the pure XML route that is the whole body.
    fn execute_native(
        &self,
        q: &ConjunctiveQuery,
        nav_atoms: &[Atom],
    ) -> Result<Vec<Row>, XmlStoreError> {
        let (slot_of, rows) = self.navigate_slots(nav_atoms)?;
        let resolve = |row: &[Option<Term>], t: &Term| match t {
            Term::Const(_) => *t,
            Term::Var(v) => slot_of.get(v).and_then(|&s| row[s]).unwrap_or(Term::Var(*v)),
        };
        let mut out: BTreeSet<Row> = BTreeSet::new();
        for row in &rows {
            if q.inequalities.iter().any(|(a, b)| resolve(row, a) == resolve(row, b)) {
                continue;
            }
            out.insert(q.head.iter().map(|t| resolve(row, t)).collect());
        }
        Ok(out.into_iter().collect())
    }

    /// The mixed route: navigation atoms natively, the rest as a relational
    /// subquery, hash-joined on the shared variables.
    fn execute_mixed(&self, q: &ConjunctiveQuery) -> Result<Vec<Row>, XmlStoreError> {
        let is_nav = |a: &Atom| {
            navigation_parts(a.predicate).is_some_and(|(_, d)| self.xml.document(d).is_some())
        };
        let nav_atoms: Vec<Atom> = q.body.iter().filter(|a| is_nav(a)).cloned().collect();
        let rel_atoms: Vec<Atom> = q.body.iter().filter(|a| !is_nav(a)).cloned().collect();
        let nav_rows = self.navigate(&nav_atoms)?;

        // The relational subquery answers *all* variables of its atoms so the
        // join loses nothing; inequalities are applied once, after the join.
        let mut rel_vars: Vec<Variable> = Vec::new();
        for atom in &rel_atoms {
            for t in &atom.args {
                if let Term::Var(v) = t {
                    if !rel_vars.contains(v) {
                        rel_vars.push(*v);
                    }
                }
            }
        }
        let sub = ConjunctiveQuery::new(&format!("{}__rel", q.name))
            .with_head(rel_vars.iter().map(|v| Term::Var(*v)).collect())
            .with_body(rel_atoms);
        let rel_rows = self.db.query(&sub);

        // Hash the relational side on the shared variables, probe with the
        // navigation bindings. An empty shared set is a cross product.
        let shared: Vec<usize> = rel_vars
            .iter()
            .enumerate()
            .filter(|(_, v)| nav_rows.first().map(|r| r.contains_key(v)).unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        let mut table: HashMap<Vec<Term>, Vec<usize>> = HashMap::new();
        for (i, row) in rel_rows.iter().enumerate() {
            let key: Vec<Term> = shared.iter().map(|&c| row[c]).collect();
            table.entry(key).or_default().push(i);
        }
        let mut joined: Vec<HashMap<Variable, Term>> = Vec::new();
        for nav in &nav_rows {
            let key: Vec<Term> = shared.iter().map(|&c| nav[&rel_vars[c]]).collect();
            let Some(matches) = table.get(&key) else { continue };
            for &i in matches {
                let mut merged = nav.clone();
                for (v, t) in rel_vars.iter().zip(&rel_rows[i]) {
                    merged.insert(*v, *t);
                }
                joined.push(merged);
            }
        }
        Ok(finish(q, joined))
    }

    /// Evaluate a conjunction of GReX navigation atoms over the stored
    /// documents by greedy most-bound-first nested loops. Produces exactly
    /// the bindings joining `encode_document`'s ground facts would.
    fn navigate(&self, atoms: &[Atom]) -> Result<Vec<HashMap<Variable, Term>>, XmlStoreError> {
        let (slot_of, rows) = self.navigate_slots(atoms)?;
        // Name the surviving bindings (cheap: result-sized, not
        // intermediate-sized).
        Ok(rows
            .into_iter()
            .map(|row| slot_of.iter().filter_map(|(v, &s)| row[s].map(|t| (*v, t))).collect())
            .collect())
    }

    /// The slot-indexed core of [`BackendRouter::navigate`]: bindings are
    /// rows of `Option<Term>` columns keyed by the returned variable→slot
    /// map, so extending a row is a short copy, not a map clone.
    fn navigate_slots(&self, atoms: &[Atom]) -> Result<SlotBindings, XmlStoreError> {
        {
            let mut cache = self.indexes.borrow_mut();
            for atom in atoms {
                let (_, document) = navigation_parts(atom.predicate)
                    .expect("navigate is only called on navigation atoms");
                if !cache.contains_key(document) {
                    let doc = self.xml.document(document).ok_or_else(|| {
                        XmlStoreError::MissingDocument { document: document.to_string() }
                    })?;
                    cache.insert(document.to_string(), DocIndex::new(doc));
                }
            }
        }
        let indexes = self.indexes.borrow();
        let parsed: Vec<(&str, &str)> = atoms
            .iter()
            .map(|a| navigation_parts(a.predicate).expect("classified as navigation"))
            .collect();

        let mut slot_of: HashMap<Variable, usize> = HashMap::new();
        for atom in atoms {
            for t in &atom.args {
                if let Term::Var(v) = t {
                    let next = slot_of.len();
                    slot_of.entry(*v).or_insert(next);
                }
            }
        }

        let mut rows: Vec<Vec<Option<Term>>> = vec![vec![None; slot_of.len()]];
        let mut bound: BTreeSet<Variable> = BTreeSet::new();
        let mut remaining: Vec<usize> = (0..atoms.len()).collect();
        while !remaining.is_empty() {
            // Same order the cost model simulates (`greedy_navigation_key`):
            // connected atoms first, fewest unbound variables, most selective
            // base, ties on body position.
            let pos = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &i)| {
                    let key =
                        greedy_navigation_key(&atoms[i], parsed[i].0, !bound.is_empty(), |v| {
                            bound.contains(v)
                        });
                    (key, i)
                })
                .map(|(k, _)| k)
                .expect("remaining is non-empty");
            let i = remaining.remove(pos);
            let atom = &atoms[i];
            let (base, document) = parsed[i];
            let index = &indexes[document];
            let arg_slots: Vec<Option<usize>> = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Some(slot_of[v]),
                    Term::Const(_) => None,
                })
                .collect();
            // Resolve into a fixed stack buffer — GReX arities are ≤ 3.
            let resolve = |row: &[Option<Term>]| -> [Option<Term>; 3] {
                let mut buf = [None; 3];
                for (k, (t, s)) in atom.args.iter().zip(&arg_slots).enumerate() {
                    buf[k] = match s {
                        None => Some(*t),
                        Some(s) => row[*s],
                    };
                }
                buf
            };
            let arity = atom.args.len();

            let fully_bound = atom.args.iter().all(|t| match t {
                Term::Var(v) => bound.contains(v),
                Term::Const(_) => true,
            });
            // Tag pushdown: an unbound variable of this atom that a later
            // `tag(v, "c")` atom over the same document constrains. A
            // candidate binding violating the tag is rejected before the row
            // is cloned — the tag atom itself stays in `remaining` and
            // verifies afterwards, so pushdown only skips candidates the tag
            // filter would drop anyway (the same move the relational planner
            // makes when it joins `tag` before the expanding atom).
            let pending_tag: Vec<Option<Term>> = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) if !bound.contains(v) => remaining.iter().find_map(|&j| {
                        match (navigation_parts(atoms[j].predicate), &atoms[j].args[..]) {
                            (Some(("tag", d)), [Term::Var(tv), c @ Term::Const(_)])
                                if d == document && tv == v =>
                            {
                                Some(*c)
                            }
                            _ => None,
                        }
                    }),
                    _ => None,
                })
                .collect();

            if fully_bound {
                // A pure filter: keep the rows the atom holds on, in place.
                rows.retain(|row| {
                    let resolved = resolve(row);
                    let mut ok = false;
                    index.for_each_tuple(base, &resolved[..arity], &mut |tuple| {
                        ok = ok || match_tuple(&atom.args, &arg_slots, tuple, row).is_some();
                    });
                    ok
                });
            } else {
                let mut next = Vec::new();
                for row in &rows {
                    let resolved = resolve(row);
                    let mut emit = |tuple: &[Term]| {
                        let Some(new_binds) = match_tuple(&atom.args, &arg_slots, tuple, row)
                        else {
                            return;
                        };
                        for (k, c) in pending_tag.iter().enumerate() {
                            let (Some(c), Some(s)) = (c, arg_slots[k]) else { continue };
                            let fresh = new_binds.iter().find(|(bs, _)| *bs == s);
                            if let Some((_, t)) = fresh {
                                if !index.node_has_tag(*t, *c) {
                                    return;
                                }
                            }
                        }
                        let mut r = row.clone();
                        for (s, t) in new_binds {
                            r[s] = Some(t);
                        }
                        next.push(r);
                    };
                    // A text probe by value narrows further through the
                    // fused (tag, text) index: on skewed data the plain
                    // by-text bucket for a hot key holds every pointer
                    // sharing the value.
                    match (base, pending_tag[0], resolved[0], resolved[1]) {
                        ("text", Some(tag), None, Some(value)) => {
                            let nodes = index.by_tag_text.get(&(tag, value));
                            for &e in nodes.map(Vec::as_slice).unwrap_or_default() {
                                emit(&[index.term(e), value]);
                            }
                        }
                        _ => index.for_each_tuple(base, &resolved[..arity], &mut emit),
                    }
                }
                rows = next;
            }
            for t in &atom.args {
                if let Term::Var(v) = t {
                    bound.insert(*v);
                }
            }
            if rows.is_empty() {
                break;
            }
        }

        Ok((slot_of, rows))
    }
}

/// Apply the residual inequalities and the head projection to a binding set,
/// then deduplicate in ascending order — the exact tail the physical executor
/// runs (`Filter`, `Project`, `Distinct`), including the unsafe-head-variable
/// convention (an unbound variable evaluates to itself).
fn finish(q: &ConjunctiveQuery, bindings: Vec<HashMap<Variable, Term>>) -> Vec<Row> {
    let resolve = |row: &HashMap<Variable, Term>, t: &Term| match t {
        Term::Const(_) => *t,
        Term::Var(v) => row.get(v).copied().unwrap_or(Term::Var(*v)),
    };
    let mut out: BTreeSet<Row> = BTreeSet::new();
    for row in &bindings {
        if q.inequalities.iter().any(|(a, b)| resolve(row, a) == resolve(row, b)) {
            continue;
        }
        out.insert(q.head.iter().map(|t| resolve(row, t)).collect());
    }
    out.into_iter().collect()
}

/// Match one candidate tuple against an atom's argument pattern under a
/// partial binding. Returns the new bindings, or `None` on a clash (constants
/// and already-bound or repeated variables must agree).
fn match_tuple(
    args: &[Term],
    arg_slots: &[Option<usize>],
    tuple: &[Term],
    row: &[Option<Term>],
) -> Option<Vec<(usize, Term)>> {
    let mut new_binds: Vec<(usize, Term)> = Vec::new();
    for (k, val) in tuple.iter().enumerate() {
        match arg_slots[k] {
            None => {
                if args[k] != *val {
                    return None;
                }
            }
            Some(s) => {
                let existing =
                    row[s].or_else(|| new_binds.iter().find(|(bs, _)| *bs == s).map(|(_, t)| *t));
                match existing {
                    Some(t) => {
                        if t != *val {
                            return None;
                        }
                    }
                    None => new_binds.push((s, *val)),
                }
            }
        }
    }
    Some(new_binds)
}

/// Per-document lookup structures for the native interpreter: element node
/// constants (the same `"<doc>/n<k>"` identities `encode_document` emits) and
/// the reverse map for bound-argument lookups.
struct DocIndex<'d> {
    doc: &'d Document,
    elements: Vec<NodeId>,
    term: HashMap<NodeId, Term>,
    node_of: HashMap<Term, NodeId>,
    /// Elements by tag term — makes a `tag(X, "c")` seed enumerate its `t`
    /// matches instead of scanning all `n` elements per binding.
    by_tag: HashMap<Term, Vec<NodeId>>,
    /// Elements by text-value term — the value-join lookup that keeps
    /// key/pointer joins (`text(X, v)` with `v` bound) at one probe per
    /// binding instead of a full element scan.
    by_text: HashMap<Term, Vec<NodeId>>,
    /// Elements by (tag term, text-value term) — the fused lookup for a
    /// value probe whose node variable carries a pending constant-tag
    /// constraint. On skewed data the plain by-text bucket for a hot key
    /// holds every pointer sharing the value; narrowing by tag first is the
    /// same move the relational planner makes when it joins `tag` with
    /// `text` before the key join.
    by_tag_text: HashMap<(Term, Term), Vec<NodeId>>,
    /// Tag term of every element — the O(1) check behind tag pushdown.
    tag_of: HashMap<NodeId, Term>,
}

impl<'d> DocIndex<'d> {
    fn new(doc: &'d Document) -> DocIndex<'d> {
        let elements: Vec<NodeId> =
            doc.all_nodes().filter(|id| doc.node(*id).is_element()).collect();
        let term: HashMap<NodeId, Term> = elements
            .iter()
            .map(|id| (*id, Term::constant_str(&format!("{}/n{}", doc.name, id.0))))
            .collect();
        let node_of: HashMap<Term, NodeId> = term.iter().map(|(id, t)| (*t, *id)).collect();
        let mut by_tag: HashMap<Term, Vec<NodeId>> = HashMap::new();
        let mut by_text: HashMap<Term, Vec<NodeId>> = HashMap::new();
        let mut by_tag_text: HashMap<(Term, Term), Vec<NodeId>> = HashMap::new();
        let mut tag_of: HashMap<NodeId, Term> = HashMap::new();
        for &e in &elements {
            let tag = Term::constant_str(doc.node(e).tag().unwrap_or_default());
            by_tag.entry(tag).or_default().push(e);
            tag_of.insert(e, tag);
            let text = doc.text_of(e);
            if !text.is_empty() {
                let value = Term::constant_str(&text);
                by_text.entry(value).or_default().push(e);
                by_tag_text.entry((tag, value)).or_default().push(e);
            }
        }
        DocIndex { doc, elements, term, node_of, by_tag, by_text, by_tag_text, tag_of }
    }

    /// Whether `t` denotes an element of this document carrying `tag`.
    fn node_has_tag(&self, t: Term, tag: Term) -> bool {
        self.node_of.get(&t).is_some_and(|id| self.tag_of[id] == tag)
    }

    fn term(&self, id: NodeId) -> Term {
        self.term[&id]
    }

    /// The element a bound argument denotes, if it is a node constant of
    /// this document.
    fn node(&self, t: Option<Term>) -> Option<NodeId> {
        t.and_then(|t| self.node_of.get(&t).copied())
    }

    fn tag_term(&self, id: NodeId) -> Term {
        Term::constant_str(self.doc.node(id).tag().unwrap_or_default())
    }

    /// Enumerate the candidate ground tuples of `base#doc` narrowed by the
    /// resolved (bound) arguments. Narrowing is an optimization only — the
    /// caller re-checks every position via [`match_tuple`].
    fn for_each_tuple(&self, base: &str, resolved: &[Option<Term>], emit: &mut dyn FnMut(&[Term])) {
        let doc = self.doc;
        match base {
            "root" => {
                if let Some(r) = doc.root() {
                    emit(&[self.term(r)]);
                }
            }
            "el" => match self.node(resolved[0]) {
                Some(n) => emit(&[self.term(n)]),
                None if resolved[0].is_some() => {}
                None => {
                    for &e in &self.elements {
                        emit(&[self.term(e)]);
                    }
                }
            },
            "id" => {
                let emit_one = |n: NodeId, emit: &mut dyn FnMut(&[Term])| {
                    let t = self.term(n);
                    emit(&[t, t]);
                };
                match self.node(resolved[0]).or_else(|| self.node(resolved[1])) {
                    Some(n) => emit_one(n, emit),
                    None if resolved[0].is_some() || resolved[1].is_some() => {}
                    None => {
                        for &e in &self.elements {
                            emit_one(e, emit);
                        }
                    }
                }
            }
            "tag" => match (self.node(resolved[0]), resolved[1]) {
                (Some(n), _) => emit(&[self.term(n), self.tag_term(n)]),
                (None, _) if resolved[0].is_some() => {}
                (None, Some(t)) => {
                    for &e in self.by_tag.get(&t).map(Vec::as_slice).unwrap_or_default() {
                        emit(&[self.term(e), t]);
                    }
                }
                (None, None) => {
                    for &e in &self.elements {
                        emit(&[self.term(e), self.tag_term(e)]);
                    }
                }
            },
            "text" => {
                let emit_text = |n: NodeId, emit: &mut dyn FnMut(&[Term])| {
                    let text = doc.text_of(n);
                    if !text.is_empty() {
                        emit(&[self.term(n), Term::constant_str(&text)]);
                    }
                };
                match (self.node(resolved[0]), resolved[1]) {
                    (Some(n), _) => emit_text(n, emit),
                    (None, _) if resolved[0].is_some() => {}
                    (None, Some(v)) => {
                        for &e in self.by_text.get(&v).map(Vec::as_slice).unwrap_or_default() {
                            emit(&[self.term(e), v]);
                        }
                    }
                    (None, None) => {
                        for &e in &self.elements {
                            emit_text(e, emit);
                        }
                    }
                }
            }
            "attr" => {
                let mut emit_attrs = |n: NodeId| {
                    for (name, value) in &doc.node(n).attributes {
                        emit(&[self.term(n), Term::constant_str(name), Term::constant_str(value)]);
                    }
                };
                match self.node(resolved[0]) {
                    Some(n) => emit_attrs(n),
                    None if resolved[0].is_some() => {}
                    None => {
                        for &e in &self.elements {
                            emit_attrs(e);
                        }
                    }
                }
            }
            "child" => match (self.node(resolved[0]), self.node(resolved[1])) {
                (Some(p), _) => {
                    for c in doc.child_elements(p) {
                        emit(&[self.term(p), self.term(c)]);
                    }
                }
                (None, _) if resolved[0].is_some() => {}
                (None, Some(c)) => {
                    if let Some(p) = doc.node(c).parent {
                        emit(&[self.term(p), self.term(c)]);
                    }
                }
                (None, None) if resolved[1].is_some() => {}
                (None, None) => {
                    for &p in &self.elements {
                        for c in doc.child_elements(p) {
                            emit(&[self.term(p), self.term(c)]);
                        }
                    }
                }
            },
            // desc is descendant-or-self, exactly as encoded.
            "desc" => {
                let not_a_node =
                    |k: usize| resolved[k].is_some() && self.node(resolved[k]).is_none();
                if not_a_node(0) || not_a_node(1) {
                    // A bound argument outside this document matches nothing.
                } else if let Some(d) = self.node(resolved[1]) {
                    // The descendant is bound: walk its ancestors — depth
                    // steps, never a subtree enumeration (match_tuple checks
                    // a bound ancestor argument against the emitted pairs).
                    let mut a = Some(d);
                    while let Some(n) = a {
                        emit(&[self.term(n), self.term(d)]);
                        a = doc.node(n).parent;
                    }
                } else if let Some(a) = self.node(resolved[0]) {
                    for d in doc.descendants_or_self(a) {
                        emit(&[self.term(a), self.term(d)]);
                    }
                } else {
                    for &a in &self.elements {
                        for d in doc.descendants_or_self(a) {
                            emit(&[self.term(a), self.term(d)]);
                        }
                    }
                }
            }
            other => unreachable!("navigation_parts whitelists the bases, got {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_grex::encode_document;
    use mars_xml::parse_document;

    fn sample_doc() -> Document {
        parse_document(
            "shop.xml",
            r#"<shop>
                 <item sku="a1"><name>bolt</name><price>3</price></item>
                 <item sku="b2"><name>nut</name><price>3</price></item>
                 <section><item sku="c3"><name>washer</name></item></section>
               </shop>"#,
        )
        .unwrap()
    }

    fn stores() -> (RelationalDatabase, XmlStore) {
        let doc = sample_doc();
        let mut db = RelationalDatabase::new();
        db.load_facts(&encode_document(&doc));
        let mut xml = XmlStore::new();
        xml.add_document(doc);
        (db, xml)
    }

    fn nav(base: &str, args: Vec<Term>) -> Atom {
        Atom::named(&format!("{base}#shop.xml"), args)
    }

    /// One query per navigation base: the native interpreter must return
    /// exactly what the relational executor returns over the loaded
    /// `encode_document` facts — the byte-identity anchor of routing.
    #[test]
    fn native_interpreter_matches_the_encoded_facts_per_base() {
        let (db, xml) = stores();
        let router = BackendRouter::new(&db, &xml);
        let x = Term::var("x");
        let y = Term::var("y");
        let z = Term::var("z");
        let cases: Vec<(&str, ConjunctiveQuery)> = vec![
            (
                "root",
                ConjunctiveQuery::new("Q").with_head(vec![x]).with_body(vec![nav("root", vec![x])]),
            ),
            (
                "el",
                ConjunctiveQuery::new("Q").with_head(vec![x]).with_body(vec![nav("el", vec![x])]),
            ),
            (
                "id",
                ConjunctiveQuery::new("Q")
                    .with_head(vec![x, y])
                    .with_body(vec![nav("id", vec![x, y])]),
            ),
            (
                "tag",
                ConjunctiveQuery::new("Q")
                    .with_head(vec![x, y])
                    .with_body(vec![nav("tag", vec![x, y])]),
            ),
            (
                "text",
                ConjunctiveQuery::new("Q")
                    .with_head(vec![x, y])
                    .with_body(vec![nav("text", vec![x, y])]),
            ),
            (
                "attr",
                ConjunctiveQuery::new("Q")
                    .with_head(vec![x, y, z])
                    .with_body(vec![nav("attr", vec![x, y, z])]),
            ),
            (
                "child",
                ConjunctiveQuery::new("Q")
                    .with_head(vec![x, y])
                    .with_body(vec![nav("child", vec![x, y])]),
            ),
            (
                "desc",
                ConjunctiveQuery::new("Q")
                    .with_head(vec![x, y])
                    .with_body(vec![nav("desc", vec![x, y])]),
            ),
        ];
        for (label, q) in cases {
            let native = router.execute_native(&q, &q.body).unwrap();
            assert_eq!(native, db.query(&q), "base {label} disagrees with the encoding");
            assert!(!native.is_empty(), "base {label} should match something");
        }
    }

    /// A multi-atom navigation join with a constant and an inequality: both
    /// backends and the forced routes agree.
    #[test]
    fn all_routes_agree_on_a_navigation_join() {
        let (db, xml) = stores();
        let router = BackendRouter::new(&db, &xml);
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("n"), Term::var("t")])
            .with_body(vec![
                nav("root", vec![Term::var("r")]),
                nav("desc", vec![Term::var("r"), Term::var("n")]),
                nav("tag", vec![Term::var("n"), Term::constant_str("item")]),
                nav("desc", vec![Term::var("n"), Term::var("m")]),
                nav("text", vec![Term::var("m"), Term::var("t")]),
            ])
            .with_inequality(Term::var("t"), Term::constant_str("nut"));
        let reference = db.query(&q);
        assert!(!reference.is_empty());
        for route in [Route::Relational, Route::Xml, Route::Mixed] {
            let plan = router.plan_forced(&q, route);
            let exec = router.execute(&plan).unwrap();
            assert_eq!(exec.rows, reference, "forced {route} must agree");
        }
        let auto = router.execute(&router.plan(&q)).unwrap();
        assert_eq!(auto.rows, reference);
        assert_eq!(auto.actual_rows(), reference.len());
    }

    /// The mixed route joins native navigation with a relational subquery on
    /// the shared variables.
    #[test]
    fn mixed_route_joins_navigation_with_relations() {
        let (mut db, xml) = stores();
        // A relational side table keyed by the item name.
        for (name, origin) in [("bolt", "de"), ("nut", "fr")] {
            db.insert_strs("origin", &[name, origin]);
        }
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("n"), Term::var("o")])
            .with_body(vec![
                nav("tag", vec![Term::var("i"), Term::constant_str("name")]),
                nav("text", vec![Term::var("i"), Term::var("n")]),
                Atom::named("origin", vec![Term::var("n"), Term::var("o")]),
            ]);
        let router = BackendRouter::new(&db, &xml);
        let plan = router.plan_forced(&q, Route::Mixed);
        assert_eq!(plan.decision.route, Route::Mixed);
        assert_eq!(plan.decision.navigation_atoms, 2);
        assert_eq!(plan.decision.relational_atoms, 1);
        let exec = router.execute(&plan).unwrap();
        assert_eq!(exec.rows, db.query(&q), "mixed must agree with relational");
        assert_eq!(exec.rows.len(), 2);
    }

    /// Forcing XML on a query with relational atoms degrades to mixed, and
    /// to relational when nothing is navigational — the effective route is
    /// recorded, never silently lied about.
    #[test]
    fn forced_routes_clamp_to_feasibility() {
        let (mut db, xml) = stores();
        db.insert_strs("origin", &["bolt", "de"]);
        let router = BackendRouter::new(&db, &xml);

        let with_rel = ConjunctiveQuery::new("Q").with_head(vec![Term::var("n")]).with_body(vec![
            nav("text", vec![Term::var("i"), Term::var("n")]),
            Atom::named("origin", vec![Term::var("n"), Term::var("o")]),
        ]);
        assert_eq!(router.plan_forced(&with_rel, Route::Xml).decision.route, Route::Mixed);

        let rel_only = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("n")])
            .with_body(vec![Atom::named("origin", vec![Term::var("n"), Term::var("o")])]);
        assert_eq!(router.plan_forced(&rel_only, Route::Xml).decision.route, Route::Relational);
        assert_eq!(router.plan_forced(&rel_only, Route::Mixed).decision.route, Route::Relational);

        let nav_only = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("i")])
            .with_body(vec![nav("el", vec![Term::var("i")])]);
        assert_eq!(router.plan_forced(&nav_only, Route::Xml).decision.route, Route::Xml);
        assert_eq!(
            router.plan_forced(&nav_only, Route::Relational).decision.route,
            Route::Relational
        );
    }

    /// A document that vanishes between planning and execution surfaces the
    /// typed store error, not an empty result.
    #[test]
    fn vanished_documents_error_at_execution() {
        let (db, xml) = stores();
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![nav("el", vec![Term::var("x")])]);
        let plan = BackendRouter::new(&db, &xml).plan_forced(&q, Route::Xml);
        let empty = XmlStore::new();
        let err = BackendRouter::new(&db, &empty).execute(&plan).unwrap_err();
        assert_eq!(err, XmlStoreError::MissingDocument { document: "shop.xml".to_string() });
    }

    /// Unsafe head variables evaluate to themselves on every route, matching
    /// the naive evaluator's convention.
    #[test]
    fn unsafe_head_variables_agree_across_routes() {
        let (db, xml) = stores();
        let router = BackendRouter::new(&db, &xml);
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x"), Term::var("ghost"), Term::constant_str("lit")])
            .with_body(vec![nav("root", vec![Term::var("x")])]);
        let reference = db.query(&q);
        let native = router.execute(&router.plan_forced(&q, Route::Xml)).unwrap();
        assert_eq!(native.rows, reference);
        assert_eq!(native.rows[0][1], Term::var("ghost"));
    }
}
