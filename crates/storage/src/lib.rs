//! # mars-storage — storage substrates and query execution
//!
//! MARS itself is middleware: it reformulates queries and ships them to
//! storage engines. This crate provides the engines the reproduction ships
//! them to:
//!
//! * [`RelationalDatabase`] — an in-memory relational engine executing
//!   conjunctive queries through cost-based physical plans (pruned scans
//!   with constant pushdown, statistics-ordered hash joins — see
//!   [`mars_cost::physical_plan`] and the [`executor`] module; the naive
//!   evaluator survives as the [`QueryExecutor::Naive`] ablation) and
//!   emitting the equivalent SQL text, standing in for the commercial RDBMS
//!   holding the proprietary tables and materialized relational views;
//! * [`XmlStore`] — a set of in-memory XML documents with a deliberately
//!   naive, nested-loop XBind/XQuery evaluator. It plays the role of the
//!   Galax / Enosys engines in the paper's experiments: executing the
//!   *unreformulated* query against the published documents, so that the net
//!   saving of reformulation can be measured;
//! * view [`materialization`](materialize) — running GAV/LAV view bodies over
//!   the stores to populate the redundant storage (tables, cached documents),
//!   and result **tagging** (the sorted-outer-union assembly of the XML result
//!   from decorrelated binding tables);
//! * the [`BackendRouter`] — the statistics-driven dispatcher that prices a
//!   reformulated query block against the relational executor, native XML
//!   navigation and a mixed plan, and executes it through a [`RoutedPlan`]
//!   recording the chosen route and estimated vs actual cost. Every route
//!   returns byte-identical rows (property-tested).

pub mod executor;
pub mod materialize;
pub mod relational;
pub mod router;
pub mod xml_engine;

pub use materialize::{materialize_view, tag_results};
pub use relational::{sql_for_query, QueryExecutor, RelationalDatabase, Row, SqlUnboundVariable};
pub use router::{BackendRouter, Route, RouteCosts, RoutedExecution, RoutedPlan, RoutingDecision};
pub use xml_engine::{Value, XmlStore, XmlStoreError};
