//! Section 4.2: reformulation cost vs execution over redundant storage.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mars::MarsOptions;
use mars_workloads::star::StarConfig;
use std::collections::HashMap;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_savings");
    g.sample_size(10);
    for nc in [3usize, 4] {
        let cfg = StarConfig::figure5(nc);
        let (xml, db) = cfg.populate(5, 4, 17);
        let mars = cfg.mars(MarsOptions::specialized());
        let block = mars.reformulate_xbind(&cfg.client_query());
        let best = block.result.best_or_initial().cloned().expect("reformulation");

        g.bench_with_input(BenchmarkId::new("unreformulated_naive_xml", nc), &nc, |b, _| {
            b.iter(|| xml.eval_xbind(&cfg.client_query(), &HashMap::new()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("reformulated_over_views", nc), &nc, |b, _| {
            b.iter(|| db.query(&best))
        });
        g.bench_with_input(BenchmarkId::new("reformulation_itself", nc), &nc, |b, _| {
            b.iter(|| mars.reformulate_xbind(&cfg.client_query()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
