//! Containment hot-path micro-benchmarks (PR 8).
//!
//! Two groups:
//!
//! - `sibling_sweep`: the backchase inner loop — checking the original query
//!   against K sibling candidates that share a chased seed and differ in one
//!   fresh atom each. `scratch` rebuilds a full [`ContainmentTarget`] per
//!   sibling (the pre-memo behaviour); `memoized_delta` prepares a
//!   [`DeltaTarget`] with the carried atoms below the fresh mark, so the
//!   homomorphism search only explores mappings that use a fresh atom.
//! - `find_all_homomorphisms`: enumeration cost over targets of growing
//!   redundancy (the in-place substitution/trail rewrite vs. the old
//!   clone-per-trial search is visible here as allocation volume).
//!
//! Record before/after numbers in `BENCH_backchase.json` under
//! `containment_pr8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_cq::{
    find_all_homomorphisms, Atom, AtomIndex, ConjunctiveQuery, ContainmentTarget, DeltaTarget,
    Substitution, Term,
};

/// The probe query: a chain R0(x0,x1)..R{m-1}(x{m-1},xm) plus a marker atom
/// S(x0,xm) that only the sibling's fresh atom can satisfy.
fn probe(m: usize) -> ConjunctiveQuery {
    let mut body: Vec<Atom> = (0..m)
        .map(|i| {
            Atom::named(
                &format!("R{i}"),
                vec![Term::var(&format!("x{i}")), Term::var(&format!("x{}", i + 1))],
            )
        })
        .collect();
    body.push(Atom::named("S", vec![Term::var("x0"), Term::var(&format!("x{m}"))]));
    ConjunctiveQuery::new("probe")
        .with_head(vec![Term::var("x0"), Term::var(&format!("x{m}"))])
        .with_body(body)
}

/// The shared carried atoms of every sibling: `dup` parallel copies of the
/// chain (redundant storage), head anchored on copy 0's endpoints.
fn carried(m: usize, dup: usize) -> (Vec<Term>, Vec<Atom>) {
    let mut atoms = Vec::new();
    for j in 0..dup {
        for i in 0..m {
            atoms.push(Atom::named(
                &format!("R{i}"),
                vec![Term::var(&format!("y{j}_{i}")), Term::var(&format!("y{j}_{}", i + 1))],
            ));
        }
    }
    (vec![Term::var("y0_0"), Term::var(&format!("y0_{m}"))], atoms)
}

/// One fresh atom per sibling: the satisfying S plus k decoy copies of R0.
fn fresh_atoms(m: usize, k: usize) -> Vec<Atom> {
    let mut fresh = vec![Atom::named("S", vec![Term::var("y0_0"), Term::var(&format!("y0_{m}"))])];
    for d in 0..k % 3 {
        fresh.push(Atom::named(
            "R0",
            vec![Term::var(&format!("f{k}_{d}")), Term::var(&format!("g{k}_{d}"))],
        ));
    }
    fresh
}

fn bench_sibling_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("containment/sibling_sweep");
    let (m, dup, siblings) = (5usize, 4usize, 24usize);
    let q = probe(m);
    let (head, base) = carried(m, dup);

    g.bench_function(&format!("scratch/{siblings}"), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for k in 0..siblings {
                let mut body = base.clone();
                body.extend(fresh_atoms(m, k));
                let target = ConjunctiveQuery::new("sib").with_head(head.clone()).with_body(body);
                found += ContainmentTarget::new(&target).mapping_from(&q).is_some() as usize;
            }
            assert_eq!(found, siblings);
        })
    });
    g.bench_function(&format!("memoized_delta/{siblings}"), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for k in 0..siblings {
                let mut atoms = base.clone();
                atoms.extend(fresh_atoms(m, k));
                let target = DeltaTarget::with_fresh_mark(head.clone(), atoms, base.len());
                found += target.mapping_from(&q).is_some() as usize;
            }
            assert_eq!(found, siblings);
        })
    });
    g.finish();
}

fn bench_find_all(c: &mut Criterion) {
    let mut g = c.benchmark_group("containment/find_all_homomorphisms");
    let m = 4usize;
    let source: Vec<Atom> = (0..m)
        .map(|i| {
            Atom::named(
                &format!("R{i}"),
                vec![Term::var(&format!("x{i}")), Term::var(&format!("x{}", i + 1))],
            )
        })
        .collect();
    for dup in [2usize, 8, 32] {
        let (_, atoms) = carried(m, dup);
        let index = AtomIndex::from_atoms(atoms);
        g.bench_with_input(BenchmarkId::new("dup", dup), &dup, |b, &dup| {
            b.iter(|| {
                let all = find_all_homomorphisms(&source, &index, &Substitution::new(), None);
                assert_eq!(all.len(), dup);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sibling_sweep, bench_find_all);
criterion_main!(benches);
