//! Naive evaluator vs cost-based physical executor at growing table sizes.
//!
//! Both executors are byte-identical on results (property-tested in
//! `tests/property_based.rs`); this bench measures what the physical plan
//! layer buys — pushed-down constants, pruned scan columns and
//! statistics-ordered hash joins versus the chase's general binding
//! enumeration — on a skewed fact/dimension join at 1k, 10k and 100k fact
//! tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_cq::{Atom, ConjunctiveQuery, Term};
use mars_storage::RelationalDatabase;

/// `fact(k, v, tag, day)` with `n` rows (10% tagged `hot`) joined to
/// `dim(k, w)` with `n/10` rows; the query asks for the hot `(v, w)` pairs
/// and never touches `day`, so the planner gets a pushdown, a pruned column
/// and a genuinely smaller build side to find.
fn workload(n: usize) -> (RelationalDatabase, ConjunctiveQuery) {
    let mut db = RelationalDatabase::new();
    let dims = (n / 10).max(1);
    for i in 0..n {
        let tag = if i % 10 == 0 { "hot" } else { "cold" };
        db.insert_strs(
            "fact",
            &[&format!("k{}", i % dims), &format!("v{i}"), tag, &format!("d{}", i % 7)],
        );
    }
    for k in 0..dims {
        db.insert_strs("dim", &[&format!("k{k}"), &format!("w{}", k % 50)]);
    }
    let q = ConjunctiveQuery::new("hot_pairs")
        .with_head(vec![Term::var("v"), Term::var("w")])
        .with_body(vec![
            Atom::named(
                "fact",
                vec![Term::var("k"), Term::var("v"), Term::constant_str("hot"), Term::var("day")],
            ),
            Atom::named("dim", vec![Term::var("k"), Term::var("w")]),
        ]);
    (db, q)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor");
    g.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let (db, q) = workload(n);
        assert_eq!(db.query(&q), db.query_naive(&q), "executors must agree before timing");
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| b.iter(|| db.query_naive(&q)));
        g.bench_with_input(BenchmarkId::new("physical", n), &n, |b, _| b.iter(|| db.query(&q)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
