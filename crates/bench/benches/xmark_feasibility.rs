//! Section 4.2: reformulation of realistic XMark-style queries.
use criterion::{criterion_group, criterion_main, Criterion};
use mars_workloads::xmark;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("xmark_feasibility");
    g.sample_size(10);
    let system = xmark::mars(true);
    for q in xmark::query_suite() {
        g.bench_function(&q.name, |b| b.iter(|| system.reformulate_xbind(&q)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
