//! Old (naive, per-homomorphism) vs new (set-oriented) chase implementation.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_chase::{chase_to_universal_plan, ChaseOptions};
use mars_cq::{naive_chase, ChaseBudget};
use mars_workloads::stress;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cb_old_vs_new");
    g.sample_size(10);
    for depth in [4usize, 6] {
        let q = stress::compiled_stress_query(depth);
        let tix = stress::stress_constraints();
        g.bench_with_input(BenchmarkId::new("old_naive", depth), &depth, |b, _| {
            b.iter(|| {
                naive_chase(&q, &tix, &ChaseBudget::default().with_timeout(Duration::from_secs(2)))
            })
        });
        g.bench_with_input(BenchmarkId::new("new_set_oriented", depth), &depth, |b, _| {
            b.iter(|| chase_to_universal_plan(&q, &tix, &ChaseOptions::default()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
