//! Figure 8: reformulation with vs without schema specialization.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mars::MarsOptions;
use mars_workloads::star::StarConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_specialization");
    g.sample_size(10);
    for nc in [3usize, 4] {
        let cfg = StarConfig::figure8(nc);
        g.bench_with_input(BenchmarkId::new("without_specialization", nc), &cfg, |b, cfg| {
            b.iter(|| {
                let m = cfg.mars(MarsOptions::default());
                m.reformulate_xbind(&cfg.client_query())
            })
        });
        g.bench_with_input(BenchmarkId::new("with_specialization", nc), &cfg, |b, cfg| {
            b.iter(|| {
                let m = cfg.mars(MarsOptions::specialized());
                m.reformulate_xbind(&cfg.client_query())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
