//! Section 3 stress test: chase of //a/b/.../j with TIX, with and without the
//! closure shortcut.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_chase::{chase_to_universal_plan, ChaseOptions};
use mars_workloads::stress;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stress_chase");
    g.sample_size(10);
    for depth in [6usize, 8, 10] {
        let q = stress::compiled_stress_query(depth);
        let tix = stress::stress_constraints();
        g.bench_with_input(BenchmarkId::new("join_tree", depth), &depth, |b, _| {
            b.iter(|| chase_to_universal_plan(&q, &tix, &ChaseOptions::without_shortcut()))
        });
        g.bench_with_input(BenchmarkId::new("join_tree_plus_shortcut", depth), &depth, |b, _| {
            b.iter(|| chase_to_universal_plan(&q, &tix, &ChaseOptions::default()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
