//! Join-level micro-benchmark: full premise joins vs semi-naive
//! (delta-seeded) joins over a growing symbolic instance.
//!
//! Isolates `evaluate_bindings` / `evaluate_bindings_delta` from the
//! end-to-end fig5 numbers so join-level regressions are visible on their
//! own. The scenario mirrors the chase's hot path: a premise of a few atoms
//! evaluated over an instance of `n` tuples after a single-tuple insert —
//! the full join re-derives every homomorphism, the delta join only those
//! touching the new tuple.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_chase::{evaluate_bindings, evaluate_bindings_delta, SymbolicInstance};
use mars_cq::{Atom, Substitution, Term};

fn t(n: &str) -> Term {
    Term::var(n)
}

/// A branchy instance: `n` R-edges forming chains of length 4 plus a unary
/// L-label per node, then one extra edge appended (the delta).
fn instance(n: usize) -> (SymbolicInstance, Vec<usize>) {
    let mut inst = SymbolicInstance::new();
    for i in 0..n {
        let group = i / 4;
        let a = format!("n{}_{}", group, i % 4);
        let b = format!("n{}_{}", group, i % 4 + 1);
        inst.insert_atom(&Atom::named("R", vec![t(&a), t(&b)]));
        inst.insert_atom(&Atom::named("L", vec![t(&a)]));
    }
    let premise = premise();
    // Watermarks taken before the delta insert.
    let marks: Vec<usize> = premise.iter().map(|a| inst.relation_len(a.predicate)).collect();
    inst.insert_atom(&Atom::named("R", vec![t("n0_1"), t("fresh")]));
    (inst, marks)
}

fn premise() -> Vec<Atom> {
    vec![
        Atom::named("R", vec![t("x"), t("y")]),
        Atom::named("R", vec![t("y"), t("z")]),
        Atom::named("L", vec![t("x")]),
    ]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("evaluate_bindings");
    g.sample_size(20);
    for n in [64usize, 256, 1024] {
        let (inst, marks) = instance(n);
        let p = premise();
        g.bench_with_input(BenchmarkId::new("full_join", n), &n, |b, _| {
            b.iter(|| black_box(evaluate_bindings(&p, &[], &inst, &Substitution::new())))
        });
        g.bench_with_input(BenchmarkId::new("delta_seeded", n), &n, |b, _| {
            b.iter(|| {
                black_box(evaluate_bindings_delta(&p, &[], &inst, &Substitution::new(), &marks))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
