//! Figure 5: time to initial reformulation and delta to best minimal
//! reformulation as the star size NC grows.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_bench::measure_fig5;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_scalability");
    g.sample_size(10);
    for nc in [3usize, 4, 5] {
        g.bench_with_input(BenchmarkId::new("reformulate_star", nc), &nc, |b, &nc| {
            b.iter(|| measure_fig5(nc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
