//! # mars-bench — experiment harness
//!
//! Shared helpers for the Criterion benchmarks (`benches/`) and the
//! `experiments` binary, which regenerates every table and figure of the
//! paper's evaluation (see `EXPERIMENTS.md` at the workspace root for the
//! mapping and the paper-vs-measured record).

use mars::MarsOptions;
use mars_workloads::star::StarConfig;
use std::time::{Duration, Instant};

/// Measurement of one Figure 5 point: time to the initial reformulation and
/// the additional time to the best minimal reformulation, for a star of NC
/// corners.
#[derive(Clone, Copy, Debug)]
pub struct Fig5Point {
    /// Star size (number of corners).
    pub nc: usize,
    /// Time to the initial reformulation.
    pub initial: Duration,
    /// Additional time to the best minimal reformulation.
    pub delta_to_best: Duration,
    /// Number of minimal reformulations discovered.
    pub minimal_count: usize,
    /// Whether the backchase hit its candidate budget (the minimal count is
    /// then a lower bound, not the exact enumeration).
    pub truncated: bool,
    /// Wall time the backchase spent chasing candidate subqueries.
    pub chase_phase: Duration,
    /// Wall time the backchase spent in containment checks (homomorphism
    /// searches plus the containment memo bookkeeping).
    pub containment_phase: Duration,
}

/// Run one Figure 5 measurement (specialized compilation, cost-pruned
/// backchase — see EXPERIMENTS.md for the substitutions) on one backchase
/// worker thread.
pub fn measure_fig5(nc: usize) -> Fig5Point {
    measure_fig5_threads(nc, 1)
}

/// [`measure_fig5`] with an explicit backchase worker-thread count. The
/// reformulation results are byte-identical for any `threads`; only the wall
/// clock changes.
pub fn measure_fig5_threads(nc: usize, threads: usize) -> Fig5Point {
    measure_fig5_opts(nc, MarsOptions::specialized().with_threads(threads))
}

/// The Figure 5 measurement with fully explicit [`MarsOptions`] — the hook
/// behind the `experiments` binary's ablation flags (`--fixed-scan-threshold
/// N`, `--naive-joins`). The options change join strategy, never results.
pub fn measure_fig5_opts(nc: usize, options: MarsOptions) -> Fig5Point {
    let cfg = StarConfig::figure5(nc);
    let mars = cfg.mars(options);
    let block = mars.reformulate_xbind(&cfg.client_query());
    let initial = block.result.stats.time_to_initial;
    let delta = block.result.stats.backchase_duration;
    Fig5Point {
        nc,
        initial,
        delta_to_best: delta,
        minimal_count: block.result.minimal.len(),
        truncated: block.result.stats.backchase_truncated,
        chase_phase: block.result.stats.backchase_chase_phase,
        containment_phase: block.result.stats.backchase_containment_phase,
    }
}

/// Measurement of one Figure 8 point: total reformulation time without and
/// with schema specialization (views-only proprietary schema).
#[derive(Clone, Copy, Debug)]
pub struct Fig8Point {
    /// Star size.
    pub nc: usize,
    /// Reformulation time without specialization.
    pub without: Duration,
    /// Reformulation time with specialization.
    pub with: Duration,
}

impl Fig8Point {
    /// The ratio plotted in Figure 8.
    pub fn ratio(&self) -> f64 {
        self.without.as_secs_f64() / self.with.as_secs_f64().max(1e-9)
    }
}

/// Run one Figure 8 measurement on one backchase worker thread.
pub fn measure_fig8(nc: usize) -> Fig8Point {
    measure_fig8_threads(nc, 1)
}

/// [`measure_fig8`] with an explicit backchase worker-thread count.
pub fn measure_fig8_threads(nc: usize, threads: usize) -> Fig8Point {
    let cfg = StarConfig::figure8(nc);
    let start = Instant::now();
    let plain = cfg.mars(MarsOptions::default().with_threads(threads));
    let _ = plain.reformulate_xbind(&cfg.client_query());
    let without = start.elapsed();

    let start = Instant::now();
    let spec = cfg.mars(MarsOptions::specialized().with_threads(threads));
    let _ = spec.reformulate_xbind(&cfg.client_query());
    let with = start.elapsed();
    Fig8Point { nc, without, with }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_point_is_measurable_for_small_stars() {
        let p = measure_fig5(3);
        assert_eq!(p.nc, 3);
        assert!(p.minimal_count >= 1);
    }

    #[test]
    fn fig8_ratio_is_positive() {
        let p = measure_fig8(3);
        assert!(p.ratio() > 0.0);
    }

    /// Thread count must not change what the measurement reports, only how
    /// long it takes.
    #[test]
    fn fig5_threads_do_not_change_results() {
        let seq = measure_fig5_threads(3, 1);
        let par = measure_fig5_threads(3, 2);
        assert_eq!(seq.minimal_count, par.minimal_count);
        assert_eq!(seq.truncated, par.truncated);
    }
}
