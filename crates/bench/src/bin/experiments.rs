//! Regenerate the paper's tables and figures.
//!
//! Usage: `cargo run -p mars-bench --release --bin experiments -- [--fig5] [--fig8]
//! [--stress] [--oldnew] [--savings] [--xmark] [--all] [--max-nc N]`
//!
//! Each experiment prints the same rows/series the paper reports (absolute
//! numbers differ — different hardware and substitute engines — but the shape
//! should match; see EXPERIMENTS.md).

use mars::{MarsError, MarsOptions, MarsService, ReformulationBudget};
use mars_bench::{measure_fig5_opts, measure_fig8_threads};
use mars_chase::{chase_to_universal_plan, ChaseOptions};
use mars_cq::{naive_chase, ChaseBudget};
use mars_storage::{BackendRouter, QueryExecutor, Route};
use mars_workloads::chaos::{adversarial_request, FaultInjector};
use mars_workloads::scenarios::Scenario;
use mars_workloads::{example11, star::StarConfig, stress, xmark};
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "Usage: experiments [--fig5] [--fig8] [--stress] [--oldnew] [--savings] \
[--xmark] [--serve] [--chaos] [--all] [--route MODE] [--max-nc N] [--threads N] \
[--serve-batch N] [--serve-requests N] \
[--fixed-scan-threshold N] [--naive-joins] [--scratch-containment] [--naive-executor]

Regenerates the paper's tables and figures (see EXPERIMENTS.md). With no
experiment flags, --all is assumed. --max-nc N (default 6) bounds the star
size of the fig5/fig8 sweeps; --threads N (default 1) sets the backchase
worker-thread count (results are byte-identical for any thread count).
--serve runs the resident reformulation service on the star workload at
NC = max-nc: batches of requests (--serve-batch N per batch, default 8;
--serve-requests N in total, default 48) are driven over --threads N worker
threads cold (no cache) and warm (shape-keyed plan cache), reporting
reformulations/sec and end-to-end publishes/sec for both; the process exits
non-zero if warm throughput does not beat cold. --serve is not part of
--all (it reuses the fig5 workload and is gated separately in CI).
--chaos (serve-scoped) replaces the throughput benchmark with a
fault-injection run: adversarial cache-defeating arrivals, injected panics
and stalls, zero-deadline budgets. Every arrival must be accounted as
served, degraded, shed or panicked (0 lost) with at least one panic, one
stall and one degradation exercised, or the process exits 1. Counters and
per-request latency tails land in experiments_results.json.
Ablations (results are byte-identical; only join cost changes):
--fixed-scan-threshold N replaces the adaptive statistics-driven join
planning with the historical fixed scan threshold, --naive-joins
disables the semi-naive delta-seeded joins, and --scratch-containment
disables the cross-candidate containment memo (every candidate's
containment check runs from scratch), across the fig5 sweep.
--naive-executor runs the savings/xmark reformulated executions through the
naive relational evaluator instead of the cost-based physical plans (the
executor ablation; rows are byte-identical either way).
--route MODE (auto | relational | xml) runs the backend-routing phase over
the 12-point scenario matrix (chain/snowflake x uniform/skewed x redundancy
0-2): every scenario's best reformulation is priced and executed on the
auto-chosen route and on both forced routes (min-of-3 each), rows are
byte-compared across routes, and per-route counters land in
experiments_results.json. MODE picks which decision the counters follow;
auto additionally gates the exit code: the router must pick the XML backend
on at least one navigation-heavy (redundancy 0) scenario and the relational
backend on at least one view-backed one, or the process exits 1. The
routing phase is part of --all (in auto mode).";

/// The parsed command line.
struct Args {
    selected: Vec<String>,
    max_nc: usize,
    threads: usize,
    /// Requests per serve-mode batch (a worker thread claims whole batches).
    serve_batch: usize,
    /// Total number of serve-mode requests per phase.
    serve_requests: usize,
    /// Run the serve-mode chaos harness instead of the throughput benchmark.
    chaos: bool,
    /// `Some(n)` runs the fig5 sweep with the fixed-threshold planner
    /// ablation instead of adaptive planning.
    fixed_scan_threshold: Option<usize>,
    /// Run the fig5 sweep with naive (full-join) premise evaluation.
    naive_joins: bool,
    /// Run the fig5 sweep with the containment memo disabled (every
    /// candidate's containment check from scratch).
    scratch_containment: bool,
    /// Execute the savings/xmark reformulated queries with the naive
    /// relational evaluator instead of the physical plans (the executor
    /// ablation).
    naive_executor: bool,
    /// Which routing decision the scenario-matrix counters follow
    /// (`auto` | `relational` | `xml`; `auto` also arms the exit gate).
    route: RouteMode,
}

/// The `--route` ablation mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RouteMode {
    Auto,
    Relational,
    Xml,
}

impl RouteMode {
    fn label(self) -> &'static str {
        match self {
            RouteMode::Auto => "auto",
            RouteMode::Relational => "relational",
            RouteMode::Xml => "xml",
        }
    }
}

/// Parse the command line strictly: unknown flags and malformed values are
/// errors, not silently ignored (a typo must not produce an empty results
/// file with exit code 0).
fn parse_args(args: &[String]) -> Result<Args, String> {
    const FLAGS: [&str; 8] =
        ["--fig5", "--fig8", "--stress", "--oldnew", "--savings", "--xmark", "--serve", "--all"];
    let mut parsed = Args {
        selected: Vec::new(),
        max_nc: 6,
        threads: 1,
        serve_batch: 8,
        serve_requests: 48,
        chaos: false,
        fixed_scan_threshold: None,
        naive_joins: false,
        scratch_containment: false,
        naive_executor: false,
        route: RouteMode::Auto,
    };
    let mut serve_flag_seen = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-nc" {
            let value = it.next().ok_or("--max-nc requires a value".to_string())?;
            parsed.max_nc = value
                .parse()
                .map_err(|_| format!("invalid --max-nc value: {value:?} (expected a number)"))?;
            if parsed.max_nc < 3 {
                return Err(format!("--max-nc must be at least 3, got {}", parsed.max_nc));
            }
        } else if arg == "--threads" {
            let value = it.next().ok_or("--threads requires a value".to_string())?;
            parsed.threads = value
                .parse()
                .map_err(|_| format!("invalid --threads value: {value:?} (expected a number)"))?;
            if parsed.threads < 1 {
                return Err(format!("--threads must be at least 1, got {}", parsed.threads));
            }
        } else if arg == "--serve-batch" {
            let value = it.next().ok_or("--serve-batch requires a value".to_string())?;
            parsed.serve_batch = value.parse().map_err(|_| {
                format!("invalid --serve-batch value: {value:?} (expected a number)")
            })?;
            if parsed.serve_batch < 1 {
                return Err(format!(
                    "--serve-batch must be at least 1, got {}",
                    parsed.serve_batch
                ));
            }
            serve_flag_seen = true;
        } else if arg == "--serve-requests" {
            let value = it.next().ok_or("--serve-requests requires a value".to_string())?;
            parsed.serve_requests = value.parse().map_err(|_| {
                format!("invalid --serve-requests value: {value:?} (expected a number)")
            })?;
            if parsed.serve_requests < 1 {
                return Err(format!(
                    "--serve-requests must be at least 1, got {}",
                    parsed.serve_requests
                ));
            }
            serve_flag_seen = true;
        } else if arg == "--chaos" {
            parsed.chaos = true;
            serve_flag_seen = true;
        } else if arg == "--fixed-scan-threshold" {
            let value = it.next().ok_or("--fixed-scan-threshold requires a value".to_string())?;
            parsed.fixed_scan_threshold = Some(value.parse().map_err(|_| {
                format!("invalid --fixed-scan-threshold value: {value:?} (expected a number)")
            })?);
        } else if arg == "--naive-joins" {
            parsed.naive_joins = true;
        } else if arg == "--scratch-containment" {
            parsed.scratch_containment = true;
        } else if arg == "--naive-executor" {
            parsed.naive_executor = true;
        } else if arg == "--route" {
            let value = it.next().ok_or("--route requires a value".to_string())?;
            parsed.route = match value.as_str() {
                "auto" => RouteMode::Auto,
                "relational" => RouteMode::Relational,
                "xml" => RouteMode::Xml,
                other => {
                    return Err(format!(
                        "invalid --route value: {other:?} (expected auto, relational or xml)"
                    ))
                }
            };
            parsed.selected.push(arg.clone());
        } else if FLAGS.contains(&arg.as_str()) {
            parsed.selected.push(arg.clone());
        } else {
            return Err(format!("unknown argument: {arg:?}"));
        }
    }
    // The join-strategy ablations apply to the fig5 sweep only; accepting
    // them for a run that skips fig5 would silently do nothing.
    let runs_fig5 =
        parsed.selected.is_empty() || parsed.selected.iter().any(|a| a == "--all" || a == "--fig5");
    if (parsed.fixed_scan_threshold.is_some() || parsed.naive_joins || parsed.scratch_containment)
        && !runs_fig5
    {
        return Err("--fixed-scan-threshold / --naive-joins / --scratch-containment are fig5 \
                    ablations; add --fig5 or --all"
            .to_string());
    }
    // The executor ablation applies to the savings/xmark executions only.
    let runs_executions = parsed.selected.is_empty()
        || parsed.selected.iter().any(|a| a == "--all" || a == "--savings" || a == "--xmark");
    if parsed.naive_executor && !runs_executions {
        return Err(
            "--naive-executor is a savings/xmark ablation; add --savings, --xmark or --all"
                .to_string(),
        );
    }
    // Same scoping rule for the serve knobs: accepting them for a run that
    // never serves would silently do nothing.
    if serve_flag_seen && !parsed.selected.iter().any(|a| a == "--serve") {
        return Err(
            "--serve-batch / --serve-requests / --chaos only apply to --serve; add --serve"
                .to_string(),
        );
    }
    Ok(parsed)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&raw) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let Args {
        selected: args,
        max_nc,
        threads,
        serve_batch,
        serve_requests,
        chaos,
        fixed_scan_threshold,
        naive_joins,
        scratch_containment,
        naive_executor,
        route,
    } = parsed;
    let executor = if naive_executor { QueryExecutor::Naive } else { QueryExecutor::Physical };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let all = args.is_empty() || has("--all");
    // The fig5 options, with the requested join-strategy ablations applied.
    let fig5_options = move || {
        let mut o = MarsOptions::specialized().with_threads(threads);
        if let Some(t) = fixed_scan_threshold {
            o = o.with_fixed_scan_threshold(t);
        }
        if naive_joins {
            o = o.with_naive_joins();
        }
        if scratch_containment {
            o = o.with_scratch_containment();
        }
        o
    };

    let mut results: HashMap<String, serde_json::Value> = HashMap::new();
    // Per-phase wall-clock times, recorded alongside the thread count so a
    // results file is self-describing about how it was produced.
    let mut phase_wall_ms: Vec<(&str, f64)> = Vec::new();
    let mut timed =
        |name: &'static str,
         results: &mut HashMap<String, serde_json::Value>,
         f: &mut dyn FnMut(&mut HashMap<String, serde_json::Value>)| {
            let start = Instant::now();
            f(results);
            phase_wall_ms.push((name, ms(start.elapsed())));
        };

    // Summed backchase phase times across the fig5 sweep (None when fig5
    // did not run), recorded in the run metadata below.
    let mut fig5_phases: Option<(Duration, Duration)> = None;
    if all || has("--fig5") {
        timed("fig5", &mut results, &mut |r| {
            fig5_phases = Some(fig5(max_nc, threads, &fig5_options, r));
        });
    }
    if all || has("--fig8") {
        timed("fig8", &mut results, &mut |r| fig8(max_nc, threads, r));
    }
    if all || has("--stress") {
        timed("stress", &mut results, &mut stress_experiment);
    }
    if all || has("--oldnew") {
        timed("old_vs_new", &mut results, &mut old_vs_new);
    }
    if all || has("--savings") {
        timed("net_savings", &mut results, &mut |r| net_savings(executor, r));
    }
    if all || has("--xmark") {
        timed("xmark", &mut results, &mut |r| xmark_feasibility(executor, r));
    }
    // Backend routing over the scenario matrix. Auto mode arms the exit
    // gate: the router must actually route (XML on at least one
    // navigation-heavy scenario, relational on at least one view-backed
    // one), or the statistics plumbing has regressed.
    let mut routing_ok = true;
    if all || has("--route") {
        timed("routing", &mut results, &mut |r| {
            routing_ok = routing_experiment(route, r);
        });
    }
    // Serve mode is opt-in only (it reuses the fig5 workload): run it when
    // requested and gate the exit code on warm beating cold. --chaos
    // replaces the throughput benchmark with the fault-injection harness,
    // gated on full request accounting instead.
    let mut warm_beats_cold = true;
    let mut serve_summary: Option<ServeSummary> = None;
    let mut chaos_ok = true;
    let mut chaos_summary: Option<serde_json::Value> = None;
    if has("--serve") && chaos {
        timed("chaos", &mut results, &mut |r| {
            let (ok, summary) = chaos_experiment(max_nc, threads, serve_batch, serve_requests, r);
            chaos_ok = ok;
            chaos_summary = Some(summary);
        });
    } else if has("--serve") {
        timed("serve", &mut results, &mut |r| {
            serve_summary = Some(serve_experiment(max_nc, threads, serve_batch, serve_requests, r));
        });
        warm_beats_cold = serve_summary.as_ref().map(|s| s.warm_beats_cold).unwrap_or(true);
    }

    let phases: std::collections::BTreeMap<String, serde_json::Value> = phase_wall_ms
        .iter()
        .map(|(name, t)| (name.to_string(), serde_json::Value::from(*t)))
        .collect();
    // Environment metadata: multi-core re-benchmarks must be comparable to
    // the 1-core container numbers, so record what produced this file.
    results.insert(
        "run".to_string(),
        serde_json::json!({
            "threads": threads,
            "max_nc": max_nc,
            "fig5_join_planner": match fixed_scan_threshold {
                Some(t) => format!("fixed({t})"),
                None => "adaptive".to_string(),
            },
            "fig5_semi_naive": !naive_joins,
            "fig5_containment_memo": !scratch_containment,
            "fig5_backchase_chase_phase_ms":
                fig5_phases.map(|(c, _)| ms(c)).map(serde_json::Value::from)
                    .unwrap_or(serde_json::Value::Null),
            "fig5_backchase_containment_phase_ms":
                fig5_phases.map(|(_, c)| ms(c)).map(serde_json::Value::from)
                    .unwrap_or(serde_json::Value::Null),
            "relational_executor": match executor {
                QueryExecutor::Physical => "physical",
                QueryExecutor::Naive => "naive",
            },
            "route_mode": route.label(),
            "cpu_cores": detected_cpu_cores(),
            "rustc": rustc_version(),
            "phase_wall_ms": serde_json::Value::Object(phases),
            // Degradation accounting: a degraded or truncated answer is a
            // recorded fact of the run, not a guess (null when the phase
            // did not run).
            "serve_degraded": serve_summary.as_ref().map(|s| s.degraded)
                .map(serde_json::Value::from).unwrap_or(serde_json::Value::Null),
            "serve_truncated": serve_summary.as_ref().map(|s| s.truncated)
                .map(serde_json::Value::from).unwrap_or(serde_json::Value::Null),
            "chaos": chaos_summary.clone().unwrap_or(serde_json::Value::Null),
        }),
    );

    if let Ok(json) = serde_json::to_string_pretty(&results) {
        let _ = std::fs::write("experiments_results.json", json);
        println!("\n(results also written to experiments_results.json)");
    }
    if !warm_beats_cold {
        eprintln!(
            "error: serve mode measured warm throughput at or below cold — the plan cache \
             is not paying for itself"
        );
        std::process::exit(1);
    }
    if !chaos_ok {
        eprintln!(
            "error: chaos serve run failed its gate — requests were lost, or no fault \
             (panic / stall / degradation) was actually exercised"
        );
        std::process::exit(1);
    }
    if !routing_ok {
        eprintln!(
            "error: the auto router failed its smoke gate — it must pick the XML backend \
             on at least one navigation-heavy scenario and the relational backend on at \
             least one view-backed scenario (see the routing entry in \
             experiments_results.json)"
        );
        std::process::exit(1);
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// CPU cores visible to this process (0 when undetectable).
fn detected_cpu_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0)
}

/// The `rustc --version` line of the toolchain on PATH ("unknown" when rustc
/// is not invokable — e.g. a stripped runtime container).
fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Figure 5: scalability of reformulation. Returns the backchase chase and
/// containment phase times summed across the sweep (for the run metadata).
fn fig5(
    max_nc: usize,
    threads: usize,
    options: &dyn Fn() -> MarsOptions,
    results: &mut HashMap<String, serde_json::Value>,
) -> (Duration, Duration) {
    println!(
        "== Figure 5: scalability of reformulation (XML star, NV = NC-1, {threads} thread(s)) =="
    );
    println!("{:>4} {:>18} {:>22} {:>10}", "NC", "initial (ms)", "delta to best (ms)", "#minimal");
    let mut rows = Vec::new();
    let (mut chase_total, mut containment_total) = (Duration::ZERO, Duration::ZERO);
    for nc in 3..=max_nc {
        let p = measure_fig5_opts(nc, options());
        chase_total += p.chase_phase;
        containment_total += p.containment_phase;
        println!(
            "{:>4} {:>18.2} {:>22.2} {:>10}{}",
            p.nc,
            ms(p.initial),
            ms(p.delta_to_best),
            p.minimal_count,
            if p.truncated { "  (TRUNCATED)" } else { "" }
        );
        if p.truncated {
            eprintln!(
                "WARNING: NC={nc} backchase truncated at max_candidates — \
                 the minimal count is a lower bound, not the enumeration"
            );
        }
        rows.push(serde_json::json!({
            "nc": p.nc,
            "initial_ms": ms(p.initial),
            "delta_to_best_ms": ms(p.delta_to_best),
            "minimal": p.minimal_count,
            "truncated": p.truncated,
            "chase_phase_ms": ms(p.chase_phase),
            "containment_phase_ms": ms(p.containment_phase),
        }));
    }
    results.insert("fig5".to_string(), serde_json::Value::Array(rows));
    (chase_total, containment_total)
}

/// Figure 8: effect of schema specialization (ratio without/with).
fn fig8(max_nc: usize, threads: usize, results: &mut HashMap<String, serde_json::Value>) {
    println!("\n== Figure 8: effect of schema specialization (views-only storage) ==");
    println!("{:>4} {:>16} {:>14} {:>10}", "NC", "without (ms)", "with (ms)", "ratio");
    let mut rows = Vec::new();
    for nc in 3..=max_nc {
        let p = measure_fig8_threads(nc, threads);
        println!("{:>4} {:>16.2} {:>14.2} {:>10.1}", p.nc, ms(p.without), ms(p.with), p.ratio());
        rows.push(serde_json::json!({
            "nc": p.nc,
            "without_ms": ms(p.without),
            "with_ms": ms(p.with),
            "ratio": p.ratio(),
        }));
    }
    results.insert("fig8".to_string(), serde_json::Value::Array(rows));
}

/// Section 3 stress test: //a/b/.../j chased with TIX.
fn stress_experiment(results: &mut HashMap<String, serde_json::Value>) {
    println!("\n== Section 3 stress test: chase of //a/b/.../j with TIX ==");
    let depth = 10;
    let q = stress::compiled_stress_query(depth);
    let tix = stress::stress_constraints();

    // Old implementation (naive chase), capped at 10 s instead of >12 h.
    let cap = Duration::from_secs(10);
    let start = Instant::now();
    let naive = naive_chase(&q, &tix, &ChaseBudget::default().with_timeout(cap));
    let naive_time = start.elapsed();
    let naive_label = if naive.terminated() {
        format!("{:.0} ms", ms(naive_time))
    } else {
        format!(">{:.0} ms (timed out)", ms(cap))
    };

    let start = Instant::now();
    let no_shortcut = chase_to_universal_plan(&q, &tix, &ChaseOptions::without_shortcut());
    let no_shortcut_time = start.elapsed();

    let start = Instant::now();
    let with_shortcut = chase_to_universal_plan(&q, &tix, &ChaseOptions::default());
    let with_shortcut_time = start.elapsed();

    // Join-strategy ablation: the closure-shortcut chase with semi-naive
    // delta-seeded joins (the default measured above) vs naive full joins.
    // Results are byte-identical; only the premise-join volume differs.
    let start = Instant::now();
    let naive_joins =
        chase_to_universal_plan(&q, &tix, &ChaseOptions::default().with_naive_joins());
    let naive_joins_time = start.elapsed();
    assert_eq!(
        with_shortcut.primary().body.len(),
        naive_joins.primary().body.len(),
        "join strategy must not change the universal plan"
    );

    println!("input atoms:                 {}", q.body.len());
    println!("universal plan atoms:        {}", with_shortcut.primary().body.len());
    println!("old (naive) implementation:  {naive_label}   (paper: >12 h)");
    println!("new join-tree implementation: {:.1} ms   (paper: 2.6 s)", ms(no_shortcut_time));
    println!("new + closure shortcut:       {:.1} ms   (paper: 640 ms)", ms(with_shortcut_time));
    println!(
        "  with naive full joins:      {:.1} ms   (semi-naive ablation)",
        ms(naive_joins_time)
    );

    // Depth sweep with both join strategies, so chase-side perf is tracked
    // over growing inputs (not just the paper's depth-10 point).
    println!("{:>6} {:>18} {:>18}", "depth", "semi-naive (ms)", "naive joins (ms)");
    let mut sweep = Vec::new();
    for d in [6usize, 8, 10, 12] {
        let q = stress::compiled_stress_query(d);
        let start = Instant::now();
        let semi = chase_to_universal_plan(&q, &tix, &ChaseOptions::default());
        let semi_time = start.elapsed();
        let start = Instant::now();
        let full = chase_to_universal_plan(&q, &tix, &ChaseOptions::default().with_naive_joins());
        let full_time = start.elapsed();
        assert_eq!(semi.primary().body.len(), full.primary().body.len());
        println!("{:>6} {:>18.1} {:>18.1}", d, ms(semi_time), ms(full_time));
        sweep.push(serde_json::json!({
            "depth": d,
            "seminaive_ms": ms(semi_time),
            "naive_joins_ms": ms(full_time),
            "universal_plan_atoms": semi.primary().body.len(),
        }));
    }

    results.insert(
        "stress".to_string(),
        serde_json::json!({
            "universal_plan_atoms": with_shortcut.primary().body.len(),
            "naive_ms": ms(naive_time),
            "naive_terminated": naive.terminated(),
            "join_tree_ms": ms(no_shortcut_time),
            "shortcut_ms": ms(with_shortcut_time),
            "shortcut_naive_joins_ms": ms(naive_joins_time),
            "depth_sweep": serde_json::Value::Array(sweep),
        }),
    );
    let _ = no_shortcut;
}

/// Old vs new C&B implementation on path queries of growing depth.
fn old_vs_new(results: &mut HashMap<String, serde_json::Value>) {
    println!("\n== Old vs new C&B implementation (chase to universal plan) ==");
    println!("{:>6} {:>14} {:>14} {:>10}", "depth", "old (ms)", "new (ms)", "speedup");
    let mut rows = Vec::new();
    for depth in [4usize, 6, 8] {
        let q = stress::compiled_stress_query(depth);
        let tix = stress::stress_constraints();
        let cap = Duration::from_secs(5);
        let start = Instant::now();
        let old = naive_chase(&q, &tix, &ChaseBudget::default().with_timeout(cap));
        let old_time = start.elapsed();
        let start = Instant::now();
        let _ = chase_to_universal_plan(&q, &tix, &ChaseOptions::default());
        let new_time = start.elapsed();
        let speedup = old_time.as_secs_f64() / new_time.as_secs_f64().max(1e-9);
        println!(
            "{:>6} {:>14.1}{} {:>14.2} {:>9.0}x",
            depth,
            ms(old_time),
            if old.terminated() { " " } else { "+" },
            ms(new_time),
            speedup
        );
        rows.push(serde_json::json!({
            "depth": depth,
            "old_ms": ms(old_time),
            "old_terminated": old.terminated(),
            "new_ms": ms(new_time),
            "speedup": speedup,
        }));
    }
    println!("(+ = the old implementation hit its timeout; speedup is a lower bound)");
    results.insert("old_vs_new".to_string(), serde_json::Value::Array(rows));
}

/// Section 4.2: reformulation time vs execution-time saving.
fn net_savings(executor: QueryExecutor, results: &mut HashMap<String, serde_json::Value>) {
    println!("\n== Section 4.2: net saving of reformulation (star, small document) ==");
    println!(
        "{:>4} {:>16} {:>20} {:>18} {:>16}",
        "NC", "reformulate (ms)", "unreformulated (ms)", "reformulated (ms)", "net saving (ms)"
    );
    let mut rows = Vec::new();
    for nc in [3usize, 4, 5] {
        let cfg = StarConfig::figure5(nc);
        let (xml, db) = cfg.populate(5, 4, 17);
        let mars = cfg.mars(MarsOptions::specialized());

        let start = Instant::now();
        let block = mars.reformulate_xbind(&cfg.client_query());
        let reform_time = start.elapsed();

        // Unreformulated execution on the naive XML engine (the Galax stand-in).
        let start = Instant::now();
        let unref = xml
            .eval_xbind(&cfg.client_query(), &HashMap::new())
            .expect("star documents are stored");
        let unref_time = start.elapsed();

        // Reformulated execution: the best reformulation runs on the relational
        // engine over the materialized views.
        let best = block.result.best_or_initial().cloned();
        let start = Instant::now();
        let reformulated_rows =
            best.as_ref().map(|q| db.query_with(q, executor).len()).unwrap_or(0);
        let ref_time = start.elapsed();

        let saving = unref_time.as_secs_f64() - (reform_time + ref_time).as_secs_f64();
        println!(
            "{:>4} {:>16.2} {:>20.2} {:>18.2} {:>16.2}",
            nc,
            ms(reform_time),
            ms(unref_time),
            ms(ref_time),
            saving * 1000.0
        );
        rows.push(serde_json::json!({
            "nc": nc,
            "reformulation_ms": ms(reform_time),
            "unreformulated_exec_ms": ms(unref_time),
            "reformulated_exec_ms": ms(ref_time),
            "net_saving_ms": saving * 1000.0,
            "unreformulated_rows": unref.len(),
            "reformulated_rows": reformulated_rows,
        }));
    }
    results.insert("net_savings".to_string(), serde_json::Value::Array(rows));
    executor_scale_sweep(results);
}

/// Naive vs physical execution of the star's best reformulation at growing
/// scale factors (NC fixed at 3; hubs × corner size grow the materialized
/// views). Both executors must return byte-identical rows — the sweep aborts
/// otherwise — so the ratio isolates what the plan layer buys.
fn executor_scale_sweep(results: &mut HashMap<String, serde_json::Value>) {
    println!("\n-- executor scale sweep (star NC=3, naive vs physical relational execution) --");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>14} {:>9}",
        "hubs", "corner", "tuples", "naive (ms)", "physical (ms)", "speedup"
    );
    let cfg = StarConfig::figure5(3);
    let mars = cfg.mars(MarsOptions::specialized());
    let block = mars.reformulate_xbind(&cfg.client_query());
    let best = block.result.best_or_initial().expect("star query must reformulate");
    let mut rows = Vec::new();
    for (hubs, corner) in [(40usize, 30usize), (160, 120), (640, 480), (1600, 1200), (4000, 3000)] {
        let (_xml, db) = cfg.populate(hubs, corner, 17);

        // Min of 3 per executor: single-shot ms-scale timings jitter ±20 %
        // on the 1-core container (same protocol as the fig5 record).
        let mut naive = Vec::new();
        let mut naive_time = Duration::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            naive = db.query_naive(best);
            naive_time = naive_time.min(start.elapsed());
        }
        let mut physical = Vec::new();
        let mut physical_time = Duration::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            physical = db.query(best);
            physical_time = physical_time.min(start.elapsed());
        }

        assert_eq!(naive, physical, "executors diverged at scale ({hubs}, {corner})");
        let speedup = naive_time.as_secs_f64() / physical_time.as_secs_f64().max(1e-9);
        println!(
            "{:>6} {:>8} {:>8} {:>12.2} {:>14.2} {:>8.2}x",
            hubs,
            corner,
            db.len(),
            ms(naive_time),
            ms(physical_time),
            speedup
        );
        rows.push(serde_json::json!({
            "hubs": hubs,
            "corner_size": corner,
            "tuples": db.len(),
            "rows": physical.len(),
            "naive_exec_ms": ms(naive_time),
            "physical_exec_ms": ms(physical_time),
            "speedup": speedup,
        }));
    }
    results.insert("executor_scale_sweep".to_string(), serde_json::Value::Array(rows));
}

/// Section 4.2: XMark-based feasibility (average reformulation time), plus
/// real execution of each reformulation over a populated store with the
/// selected relational executor (both executors are run and must agree;
/// `executor` picks which time is the headline `exec_ms`).
fn xmark_feasibility(executor: QueryExecutor, results: &mut HashMap<String, serde_json::Value>) {
    println!("\n== Section 4.2: XMark-based scenario (reformulation feasibility) ==");
    let system = xmark::mars(true);
    let (_xml, db) = xmark::populate(300, 120, 200);
    let mut total = Duration::default();
    let mut rows = Vec::new();
    for q in xmark::query_suite() {
        let start = Instant::now();
        let block = system.reformulate_xbind(&q);
        let t = start.elapsed();
        total += t;

        // Execute the chosen reformulation over the materialized views with
        // both executors; the ablation flag only picks the headline number.
        let best = block.result.best_or_initial();
        let (result_rows, naive_ms, physical_ms) = match best {
            Some(best) => {
                let start = Instant::now();
                let naive = db.query_naive(best);
                let naive_time = start.elapsed();
                let start = Instant::now();
                let physical = db.query(best);
                let physical_time = start.elapsed();
                assert_eq!(naive, physical, "executors diverged on {}", q.name);
                (physical.len(), ms(naive_time), ms(physical_time))
            }
            None => (0, 0.0, 0.0),
        };
        let exec_ms = match executor {
            QueryExecutor::Naive => naive_ms,
            QueryExecutor::Physical => physical_ms,
        };
        println!(
            "{:<32} {:>10.2} ms   reformulated: {}   minimal: {}   exec: {:>8.2} ms ({} rows)",
            q.name,
            ms(t),
            block.result.has_reformulation(),
            block.result.minimal.len(),
            exec_ms,
            result_rows,
        );
        rows.push(serde_json::json!({
            "query": q.name,
            "ms": ms(t),
            "reformulated": block.result.has_reformulation(),
            "exec_ms": exec_ms,
            "naive_exec_ms": naive_ms,
            "physical_exec_ms": physical_ms,
            "result_rows": result_rows,
        }));
    }
    let avg = total / xmark::query_suite().len() as u32;
    println!("average reformulation time: {:.2} ms   (paper: ~350 ms)", ms(avg));
    results
        .insert("xmark".to_string(), serde_json::json!({"queries": rows, "average_ms": ms(avg)}));

    // Example 1.1 sanity row (qualitative — which storage the best plan uses).
    let system = example11::mars();
    let block = system.reformulate_xbind(&example11::client_query());
    println!(
        "Example 1.1 client query: reformulated={}  minimal={}",
        block.result.has_reformulation(),
        block.result.minimal.len()
    );
}

/// The backend-routing phase: reformulate every scenario of the 12-point
/// matrix, price the best reformulation against both backends, execute it on
/// the auto-chosen route and on both forced routes (min-of-3 each), and
/// byte-compare the row sets across routes. Returns whether the auto-mode
/// smoke gate holds (always `true` for forced modes, which only shift the
/// counters).
fn routing_experiment(mode: RouteMode, results: &mut HashMap<String, serde_json::Value>) -> bool {
    const SCALE: usize = 192;
    const SEED: u64 = 11;
    println!("\n=== Backend routing over the scenario matrix (mode: {}) ===", mode.label());
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>9} {:>9} {:>9} {:>6}",
        "scenario", "route", "est(rel)", "est(xml)", "auto ms", "rel ms", "xml ms", "rows"
    );

    let min_of_3 = |router: &BackendRouter<'_>, plan: &mars_storage::RoutedPlan| {
        let mut best: Option<mars_storage::RoutedExecution> = None;
        for _ in 0..3 {
            let exec = router.execute(plan).expect("scenario documents are stored");
            if best.as_ref().map(|b| exec.duration < b.duration).unwrap_or(true) {
                best = Some(exec);
            }
        }
        best.expect("three runs produce a minimum")
    };

    let mut rows_json = Vec::new();
    let mut counters: HashMap<&'static str, usize> = HashMap::new();
    let mut xml_on_navigation_heavy = false;
    let mut relational_on_view_backed = false;
    let mut totals = (0.0f64, 0.0f64, 0.0f64); // auto, forced-relational, forced-xml
    let mut auto_never_worst = true;
    for scenario in Scenario::matrix() {
        let mars = scenario.mars();
        let block = mars
            .try_reformulate_xbind(&scenario.client_query())
            .expect("scenario queries are well-formed");
        let best = block.result.best_or_initial().expect("every scenario has an executable query");
        let (xml, db) = scenario.populate(SCALE, SEED);
        let router = BackendRouter::new(&db, &xml);

        let auto = router.plan(best);
        let forced_rel = router.plan_forced(best, Route::Relational);
        // The forced-XML policy means "run on the XML store natively". When
        // the best reformulation is XML-infeasible (view-backed scenarios
        // reformulate onto pure relations), the honest ablation executes the
        // compiled navigation form of the client query instead of silently
        // clamping to the relational backend.
        let mut forced_xml = router.plan_forced(best, Route::Xml);
        if forced_xml.decision.route != Route::Xml {
            forced_xml = router.plan_forced(&scenario.navigation_query(), Route::Xml);
        }
        let auto_exec = min_of_3(&router, &auto);
        let rel_exec = min_of_3(&router, &forced_rel);
        let xml_exec = min_of_3(&router, &forced_xml);

        // The differential contract, enforced in-run: every route returns
        // the same rows, byte for byte.
        assert_eq!(
            auto_exec.rows,
            rel_exec.rows,
            "{}: auto and forced-relational rows differ",
            scenario.name()
        );
        assert_eq!(
            auto_exec.rows,
            xml_exec.rows,
            "{}: auto and forced-xml rows differ",
            scenario.name()
        );

        let followed = match mode {
            RouteMode::Auto => &auto,
            RouteMode::Relational => &forced_rel,
            RouteMode::Xml => &forced_xml,
        };
        let route_label = match followed.decision.route {
            Route::Relational => "relational",
            Route::Xml => "xml",
            Route::Mixed => "mixed",
        };
        *counters.entry(route_label).or_insert(0) += 1;
        if auto.decision.route == Route::Xml && !scenario.view_backed() {
            xml_on_navigation_heavy = true;
        }
        if auto.decision.route == Route::Relational && scenario.view_backed() {
            relational_on_view_backed = true;
        }

        let (auto_ms, rel_ms, xml_ms) =
            (ms(auto_exec.duration), ms(rel_exec.duration), ms(xml_exec.duration));
        totals = (totals.0 + auto_ms, totals.1 + rel_ms, totals.2 + xml_ms);
        // Timing acceptance is *recorded*, not asserted: micro-timings on a
        // shared CI core are too noisy to gate on, the route choices above
        // are not.
        if auto_ms > rel_ms.max(xml_ms) * 1.5 {
            auto_never_worst = false;
        }
        println!(
            "{:<22} {:>10} {:>12.1} {:>10} {:>9.3} {:>9.3} {:>9.3} {:>6}",
            scenario.name(),
            route_label,
            auto.decision.costs.relational,
            auto.decision.costs.xml.map(|c| format!("{c:.1}")).unwrap_or_else(|| "inf".to_string()),
            auto_ms,
            rel_ms,
            xml_ms,
            auto_exec.rows.len(),
        );
        rows_json.push(serde_json::json!({
            "scenario": scenario.name(),
            "redundancy": scenario.redundancy,
            "view_backed": scenario.view_backed(),
            "route": route_label,
            "auto_route": format!("{}", auto.decision.route),
            "estimated_cost_relational": auto.decision.costs.relational,
            "estimated_cost_xml": auto.decision.costs.xml
                .map(serde_json::Value::from).unwrap_or(serde_json::Value::Null),
            "estimated_cost_mixed": auto.decision.costs.mixed
                .map(serde_json::Value::from).unwrap_or(serde_json::Value::Null),
            "auto_ms": auto_ms,
            "forced_relational_ms": rel_ms,
            "forced_xml_ms": xml_ms,
            "forced_xml_effective_route": format!("{}", forced_xml.decision.route),
            "rows": auto_exec.rows.len(),
        }));
    }

    let auto_beats_best_single_backend = totals.0 < totals.1.min(totals.2);
    let gate_ok = mode != RouteMode::Auto || (xml_on_navigation_heavy && relational_on_view_backed);
    println!(
        "totals: auto {:.3} ms, all-relational {:.3} ms, all-xml {:.3} ms",
        totals.0, totals.1, totals.2
    );
    results.insert(
        "routing".to_string(),
        serde_json::json!({
            "mode": mode.label(),
            "scenarios": rows_json,
            "counters": serde_json::json!({
                "relational": counters.get("relational").copied().unwrap_or(0),
                "xml": counters.get("xml").copied().unwrap_or(0),
                "mixed": counters.get("mixed").copied().unwrap_or(0),
            }),
            "total_auto_ms": totals.0,
            "total_forced_relational_ms": totals.1,
            "total_forced_xml_ms": totals.2,
            "acceptance": serde_json::json!({
                "xml_on_navigation_heavy": xml_on_navigation_heavy,
                "relational_on_view_backed": relational_on_view_backed,
                "auto_never_worst_than_forced": auto_never_worst,
                "auto_beats_best_single_backend": auto_beats_best_single_backend,
            }),
        }),
    );
    gate_ok
}

/// Drain `reqs` in batches of `batch` across `threads` worker threads
/// (workers claim whole batches from a shared counter) and return the
/// wall-clock time for the whole drain.
fn run_batched<F: Fn(&XBindQuery) + Sync>(
    reqs: &[XBindQuery],
    batch: usize,
    threads: usize,
    f: F,
) -> Duration {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let lo = next.fetch_add(1, Ordering::SeqCst) * batch;
                if lo >= reqs.len() {
                    break;
                }
                for q in &reqs[lo..(lo + batch).min(reqs.len())] {
                    f(q);
                }
            });
        }
    });
    start.elapsed()
}

/// What the serve phase reported (for the gate and the run metadata).
struct ServeSummary {
    /// Warm reformulation throughput beat cold (the serve gate).
    warm_beats_cold: bool,
    /// Requests answered degraded ([`mars::ServiceStats::degraded`]).
    degraded: u64,
    /// Served blocks whose backchase was truncated (the long-standing
    /// silent flag, now propagated into the results file).
    truncated: u64,
}

/// Serve mode: the resident reformulation service on the star workload.
///
/// Every request is the fig5 client query at NC = `max_nc` plus a
/// per-request key constant — the arrival pattern a resident service sees:
/// one template, many constants. The cold phases reformulate each request
/// from scratch on a shared `Mars`; the warm phases answer from the
/// shape-keyed plan cache of a shared `MarsService` (primed with one
/// request). "Publish" is the end-to-end unit: reformulate, then execute the
/// best plan on the materialized relational views. Cold and warm drain the
/// same batches with the same thread count (publish phases sequentially, on
/// the single-connection relational engine), so each reported gap isolates
/// the cache. Returns whether warm reformulation throughput beat cold.
fn serve_experiment(
    max_nc: usize,
    threads: usize,
    batch: usize,
    requests: usize,
    results: &mut HashMap<String, serde_json::Value>,
) -> ServeSummary {
    println!(
        "\n== Serve mode: resident reformulation service \
         (star NC={max_nc}, {requests} requests, batch {batch}, {threads} thread(s)) =="
    );
    let cfg = StarConfig::figure5(max_nc);
    let mars = cfg.mars(MarsOptions::specialized());
    let (_xml, db) = cfg.populate(5, 4, 17);
    let reqs: Vec<XBindQuery> = (0..requests)
        .map(|i| {
            cfg.client_query().with_atom(XBindAtom::Eq(
                XBindTerm::var("k"),
                XBindTerm::str(&format!("servekey{i}")),
            ))
        })
        .collect();

    // Sanity: the workload must actually reformulate, or throughput is noise.
    let probe = mars.reformulate_xbind(&reqs[0]);
    assert!(probe.result.has_reformulation(), "star serve request failed to reformulate");

    let served = AtomicUsize::new(0);
    let cold_reform = run_batched(&reqs, batch, threads, |q| {
        let block = mars.reformulate_xbind(q);
        assert!(block.result.has_reformulation());
        served.fetch_add(1, Ordering::SeqCst);
    });
    // The in-memory relational engine keeps per-relation index caches behind
    // RefCell (single connection) — publish phases therefore drain
    // sequentially; the cold/warm comparison still isolates the plan cache.
    let start = Instant::now();
    for q in &reqs {
        let block = mars.reformulate_xbind(q);
        if let Some(best) = block.result.best_or_initial() {
            let _ = db.query(best);
        }
    }
    let cold_publish = start.elapsed();

    let service = MarsService::new(cfg.mars(MarsOptions::specialized()));
    // Prime the cache so the warm phases measure steady-state service.
    let primer = cfg
        .client_query()
        .with_atom(XBindAtom::Eq(XBindTerm::var("k"), XBindTerm::str("servekey_warmup")));
    service.reformulate_xbind(&primer).expect("priming request reformulates");
    let truncated = AtomicU64::new(0);
    let warm_reform = run_batched(&reqs, batch, threads, |q| {
        let block = service.reformulate_xbind(q).expect("warm request reformulates");
        assert!(block.result.has_reformulation());
        if block.result.stats.backchase_truncated {
            truncated.fetch_add(1, Ordering::SeqCst);
        }
        served.fetch_add(1, Ordering::SeqCst);
    });
    let start = Instant::now();
    for q in &reqs {
        let block = service.reformulate_xbind(q).expect("warm request reformulates");
        if let Some(best) = block.result.best_or_initial() {
            let _ = db.query(best);
        }
    }
    let warm_publish = start.elapsed();
    assert_eq!(served.load(Ordering::SeqCst), 2 * requests, "every request must be served");

    let rps = |d: Duration| requests as f64 / d.as_secs_f64().max(1e-9);
    let stats = service.cache_stats();
    let service_stats = service.service_stats();
    let truncated = truncated.load(Ordering::SeqCst);
    println!("{:>22} {:>14} {:>14} {:>10}", "", "cold", "warm", "speedup");
    println!(
        "{:>22} {:>14.1} {:>14.1} {:>9.1}x",
        "reformulations/sec",
        rps(cold_reform),
        rps(warm_reform),
        rps(warm_reform) / rps(cold_reform)
    );
    println!(
        "{:>22} {:>14.1} {:>14.1} {:>9.1}x",
        "publishes/sec",
        rps(cold_publish),
        rps(warm_publish),
        rps(warm_publish) / rps(cold_publish)
    );
    println!("cache: {} hits, {} misses, {} entries", stats.hits, stats.misses, stats.entries);

    results.insert(
        "serve".to_string(),
        serde_json::json!({
            "nc": max_nc,
            "requests": requests,
            "batch": batch,
            "threads": threads,
            "cold_reformulations_per_sec": rps(cold_reform),
            "warm_reformulations_per_sec": rps(warm_reform),
            "reform_speedup": rps(warm_reform) / rps(cold_reform),
            "cold_publishes_per_sec": rps(cold_publish),
            "warm_publishes_per_sec": rps(warm_publish),
            "publish_speedup": rps(warm_publish) / rps(cold_publish),
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            // Degradation accounting (satellite of the degradation ladder):
            // a truncated or degraded answer is recorded, not guessed.
            "served": service_stats.served,
            "degraded": service_stats.degraded,
            "shed": service_stats.shed,
            "panicked": service_stats.panicked,
            "degraded_uncached": stats.degraded_uncached,
            "truncated_results": truncated,
        }),
    );
    ServeSummary {
        warm_beats_cold: rps(warm_reform) > rps(cold_reform),
        degraded: service_stats.degraded,
        truncated,
    }
}

/// `p`-th percentile of an ascending-sorted latency list (nearest rank).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Chaos serve mode: drive the degradation ladder end to end and verify that
/// no request is ever lost.
///
/// The arrival stream is adversarial ([`adversarial_request`]): shapes
/// diverge so the plan cache cannot absorb them. A [`FaultInjector`] panics
/// on every 5th cold reformulation and stalls on every 3rd lookup; every 4th
/// request carries a zero deadline so it must degrade; admission is bounded
/// below the worker count so overlap sheds. Workers model a well-behaved
/// client: an [`MarsError::Overloaded`] rejection is retried with backoff a
/// bounded number of times, and only a request that stays rejected counts as
/// finally shed. The gate: every arrival's *final* outcome is accounted as
/// served, degraded, shed or panicked (0 lost), every worker thread survives
/// to the end (a panic escaping the service's isolation would abort the
/// scoped drain), and at least one panic, one stall and one degradation were
/// actually exercised. Returns `(gate_ok, run summary)`.
fn chaos_experiment(
    max_nc: usize,
    threads: usize,
    batch: usize,
    requests: usize,
    results: &mut HashMap<String, serde_json::Value>,
) -> (bool, serde_json::Value) {
    println!(
        "\n== Chaos serve mode: fault-injected resident service \
         (star NC={max_nc}, {requests} requests, batch {batch}, {threads} thread(s)) =="
    );
    let cfg = StarConfig::figure5(max_nc);
    let injector = Arc::new(FaultInjector::new(5, 3, Duration::from_millis(2)));
    let service = MarsService::new(cfg.mars(MarsOptions::specialized()))
        .with_admission_limit(threads.saturating_sub(1).max(1))
        .with_fault_hook(injector.hook());
    let reqs: Vec<(XBindQuery, ReformulationBudget)> = (0..requests)
        .map(|i| {
            let budget = if i % 4 == 3 {
                // A hopeless deadline: this arrival must degrade (and must
                // not poison the cache for its shape).
                ReformulationBudget::unbounded().with_deadline(Duration::ZERO)
            } else {
                ReformulationBudget::unbounded().with_deadline(Duration::from_secs(30))
            };
            (adversarial_request(&cfg, i), budget)
        })
        .collect();

    // Injected panics are expected here: silence the default hook's
    // backtrace spew for the drain (the service's catch_unwind still sees
    // every unwind), then restore it.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(requests));
    // Final per-arrival outcomes, harness-side. The service's own counters
    // count every *attempt* (each retried rejection bumps `shed` again), so
    // the zero-lost gate is stated over these finals.
    let (f_served, f_degraded, f_shed, f_panicked) =
        (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let lo = next.fetch_add(1, Ordering::SeqCst) * batch;
                if lo >= reqs.len() {
                    break;
                }
                for (q, budget) in &reqs[lo..(lo + batch).min(reqs.len())] {
                    let arrived = Instant::now();
                    let mut backoffs = 0u32;
                    let outcome = loop {
                        match service.reformulate_xbind_with(q, budget) {
                            Err(MarsError::Overloaded { .. }) if backoffs < 250 => {
                                backoffs += 1;
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            other => break other,
                        }
                    };
                    latencies.lock().unwrap().push(ms(arrived.elapsed()));
                    match outcome {
                        Ok(b) if b.is_degraded() => f_degraded.fetch_add(1, Ordering::SeqCst),
                        Ok(_) => f_served.fetch_add(1, Ordering::SeqCst),
                        Err(MarsError::Overloaded { .. }) => f_shed.fetch_add(1, Ordering::SeqCst),
                        Err(MarsError::ReformulationPanicked { .. }) => {
                            f_panicked.fetch_add(1, Ordering::SeqCst)
                        }
                        // Any other error is a hole in the ladder: the
                        // arrival stays unaccounted and fails the gate.
                        Err(_) => 0,
                    };
                }
            });
        }
    });
    let wall = start.elapsed();
    std::panic::set_hook(prev_hook);

    let stats = service.service_stats();
    let cache = service.cache_stats();
    let (served, degraded, shed, panicked) = (
        f_served.load(Ordering::SeqCst),
        f_degraded.load(Ordering::SeqCst),
        f_shed.load(Ordering::SeqCst),
        f_panicked.load(Ordering::SeqCst),
    );
    let lost = (requests as u64).saturating_sub(served + degraded + shed + panicked);
    let panics = injector.injected_panics();
    let stalls = injector.injected_stalls();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p95, p99) = (percentile(&lat, 0.50), percentile(&lat, 0.95), percentile(&lat, 0.99));
    let max_ms = lat.last().copied().unwrap_or(0.0);

    println!(
        "arrivals: {requests}   served: {served}   degraded: {degraded}   shed: {shed}   \
         panicked: {panicked}   lost: {lost}"
    );
    println!(
        "injected: {panics} panic(s), {stalls} stall(s); service counters: \
         {} served, {} degraded, {} rejections (retried rejections included), {} panicked",
        stats.served, stats.degraded, stats.shed, stats.panicked
    );
    println!(
        "latency ms: p50 {p50:.2}   p95 {p95:.2}   p99 {p99:.2}   max {max_ms:.2}   \
         (wall {:.1} ms)",
        ms(wall)
    );
    println!(
        "cache: {} entries, {} hits, {} degraded results withheld",
        cache.entries, cache.hits, cache.degraded_uncached
    );

    let gate_ok = lost == 0 && panics >= 1 && stalls >= 1 && degraded >= 1;
    let summary = serde_json::json!({
        "lost": lost,
        "injected_panics": panics,
        "injected_stalls": stalls,
    });
    results.insert(
        "chaos".to_string(),
        serde_json::json!({
            "nc": max_nc,
            "requests": requests,
            "batch": batch,
            "threads": threads,
            "served": served,
            "degraded": degraded,
            "shed": shed,
            "panicked": panicked,
            "lost": lost,
            "service_rejections": stats.shed,
            "injected_panics": panics,
            "injected_stalls": stalls,
            "degraded_uncached": cache.degraded_uncached,
            "cache_hits": cache.hits,
            "latency_ms": serde_json::json!({
                "p50": p50, "p95": p95, "p99": p99, "max": max_ms,
            }),
            "wall_ms": ms(wall),
            "gate_ok": gate_ok,
        }),
    );
    (gate_ok, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// Regression: degenerate numeric flag values must be rejected at parse
    /// time (main exits 2 on any parse error), never run sequentially or
    /// divide by zero mid-experiment.
    #[test]
    fn zero_and_malformed_values_are_rejected() {
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--serve", "--serve-batch", "0"]).is_err());
        assert!(parse(&["--serve", "--serve-requests", "0"]).is_err());
        assert!(parse(&["--max-nc", "2"]).is_err());
        assert!(parse(&["--threads", "two"]).is_err());
        assert!(parse(&["--serve", "--serve-batch"]).is_err(), "missing value");
        assert!(parse(&["--frobnicate"]).is_err(), "unknown flag");
    }

    /// The serve knobs only make sense with --serve; accepting them without
    /// it would silently do nothing.
    #[test]
    fn serve_knobs_require_serve() {
        assert!(parse(&["--serve-batch", "4"]).is_err());
        assert!(parse(&["--fig5", "--serve-requests", "16"]).is_err());
        assert!(parse(&["--serve", "--serve-batch", "4", "--serve-requests", "16"]).is_ok());
    }

    /// --chaos is serve-scoped like the other serve knobs, and strict-parsed
    /// (garbage around it still exits 2 with usage).
    #[test]
    fn chaos_is_serve_scoped_and_strict() {
        assert!(parse(&["--chaos"]).is_err(), "--chaos without --serve is rejected");
        assert!(parse(&["--fig5", "--chaos"]).is_err());
        assert!(parse(&["--serve", "--chaos"]).unwrap().chaos);
        assert!(!parse(&["--serve"]).unwrap().chaos);
        assert!(parse(&["--serve", "--chaos", "--frobnicate"]).is_err(), "unknown flag");
        assert!(parse(&["--serve", "--chaos", "--threads", "zero"]).is_err());
        let args =
            parse(&["--serve", "--chaos", "--serve-requests", "24", "--serve-batch", "1"]).unwrap();
        assert!(args.chaos);
        assert_eq!((args.serve_requests, args.serve_batch), (24, 1));
    }

    #[test]
    fn defaults_and_valid_flags_parse() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.threads, 1);
        assert_eq!(args.serve_batch, 8);
        assert_eq!(args.serve_requests, 48);
        assert!(args.selected.is_empty());

        let args =
            parse(&["--serve", "--threads", "4", "--serve-batch", "2", "--serve-requests", "16"])
                .unwrap();
        assert_eq!(args.selected, vec!["--serve"]);
        assert_eq!((args.threads, args.serve_batch, args.serve_requests), (4, 2, 16));
    }

    /// --serve is deliberately not part of --all.
    #[test]
    fn serve_is_not_selected_by_all() {
        let args = parse(&["--all"]).unwrap();
        assert_eq!(args.selected, vec!["--all"]);
    }

    /// The containment ablation is fig5-scoped like the join-strategy
    /// ablations; accepting it elsewhere would silently do nothing.
    #[test]
    fn scratch_containment_requires_fig5() {
        assert!(parse(&["--serve", "--scratch-containment"]).is_err());
        assert!(parse(&["--fig8", "--scratch-containment"]).is_err());
        assert!(parse(&["--fig5", "--scratch-containment"]).unwrap().scratch_containment);
        assert!(parse(&["--all", "--scratch-containment"]).unwrap().scratch_containment);
        assert!(parse(&["--scratch-containment"]).unwrap().scratch_containment);
        assert!(!parse(&["--fig5"]).unwrap().scratch_containment);
    }

    /// The executor ablation only applies to runs that execute reformulations
    /// (savings/xmark); accepting it elsewhere would silently do nothing.
    #[test]
    fn naive_executor_requires_an_execution_phase() {
        assert!(parse(&["--fig5", "--naive-executor"]).is_err());
        assert!(parse(&["--serve", "--naive-executor"]).is_err());
        assert!(parse(&["--savings", "--naive-executor"]).unwrap().naive_executor);
        assert!(parse(&["--xmark", "--naive-executor"]).unwrap().naive_executor);
        assert!(parse(&["--all", "--naive-executor"]).unwrap().naive_executor);
        assert!(parse(&["--naive-executor"]).unwrap().naive_executor, "bare run implies --all");
        assert!(!parse(&["--savings"]).unwrap().naive_executor);
    }

    /// --route is value-carrying, strictly validated, and selects the
    /// routing phase; the default mode is auto (what --all runs).
    #[test]
    fn route_parses_strictly_and_selects_the_phase() {
        assert!(parse(&["--route"]).is_err(), "missing value");
        assert!(parse(&["--route", "fastest"]).is_err(), "unknown mode");
        assert!(parse(&["--route", "auto", "--frobnicate"]).is_err(), "unknown flag");
        let args = parse(&["--route", "auto"]).unwrap();
        assert_eq!(args.route, RouteMode::Auto);
        assert_eq!(args.selected, vec!["--route"]);
        assert_eq!(parse(&["--route", "relational"]).unwrap().route, RouteMode::Relational);
        assert_eq!(parse(&["--route", "xml"]).unwrap().route, RouteMode::Xml);
        assert_eq!(parse(&["--all"]).unwrap().route, RouteMode::Auto, "--all routes in auto");
        // --route composes with other phases without implying --all.
        let args = parse(&["--fig5", "--route", "xml"]).unwrap();
        assert_eq!(args.selected, vec!["--fig5", "--route"]);
    }
}
