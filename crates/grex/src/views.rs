//! Compilation of view definitions to DEDs (Sections 2.3 and 2.4).
//!
//! Views are the "direction-neutral" representation of the schema
//! correspondence: both GAV views (proprietary → public) and LAV views
//! (public → proprietary) are XBind-bodied queries whose output is either a
//! stored relation or a (virtual or materialized) XML document. Each view
//! compiles to a pair of inclusion DEDs (`cV`, `bV`); views that construct
//! XML additionally get the Skolem-function constraints of Section 2.4
//! (injectivity, functionality, and the structural constraints describing the
//! invented elements).

use crate::compile::{compile_xbind, CompileContext};
use crate::schema::GrexSchema;
use mars_cq::{Atom, Ded, Predicate, Term, Variable};
use mars_xquery::XBindQuery;
use std::collections::HashSet;

/// What a view materializes.
#[derive(Clone, Debug, PartialEq)]
pub enum ViewOutput {
    /// A stored relation; its columns are the view body's head variables.
    Relation {
        /// Relation name (this becomes a proprietary-schema predicate).
        name: String,
    },
    /// A (flat) XML document: one `row_tag` element per binding, with one leaf
    /// child per head variable carrying its value as text. This covers the
    /// XML dumps of relational data that the paper notes are the common case
    /// in XML publishing.
    XmlFlat {
        /// Name of the produced document.
        document: String,
        /// Tag of the per-binding element.
        row_tag: String,
        /// Tags of the per-column leaf elements (same arity as the view head).
        field_tags: Vec<String>,
    },
}

/// A view definition: a named XBind body plus an output description.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewDef {
    /// View name (used to name the generated constraints and Skolem graphs).
    pub name: String,
    /// The view body (navigation over the schema the view reads from).
    pub body: XBindQuery,
    /// What the view materializes.
    pub output: ViewOutput,
}

impl ViewDef {
    /// A view materializing a relation with the same name as the view.
    pub fn relational(name: &str, body: XBindQuery) -> ViewDef {
        ViewDef {
            name: name.to_string(),
            body,
            output: ViewOutput::Relation { name: name.to_string() },
        }
    }

    /// A view materializing a flat XML document.
    pub fn xml_flat(
        name: &str,
        body: XBindQuery,
        document: &str,
        row_tag: &str,
        field_tags: &[&str],
    ) -> ViewDef {
        ViewDef {
            name: name.to_string(),
            body,
            output: ViewOutput::XmlFlat {
                document: document.to_string(),
                row_tag: row_tag.to_string(),
                field_tags: field_tags.iter().map(|s| s.to_string()).collect(),
            },
        }
    }

    /// The proprietary predicates this view contributes (what reformulations
    /// over it will mention).
    pub fn output_predicates(&self) -> Vec<Predicate> {
        match &self.output {
            ViewOutput::Relation { name } => vec![Predicate::new(name)],
            ViewOutput::XmlFlat { document, .. } => GrexSchema::new(document).all_predicates(),
        }
    }
}

/// Compile a view into its DEDs.
pub fn compile_view(ctx: &mut CompileContext, view: &ViewDef) -> Vec<Ded> {
    let body = compile_xbind(ctx, &view.body);
    let body_exists = |head: &[Term]| -> Vec<Variable> {
        let head_vars: HashSet<Variable> = head.iter().filter_map(|t| t.as_var()).collect();
        let mut out = Vec::new();
        for a in &body.body {
            for v in a.variables() {
                if !head_vars.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    };

    match &view.output {
        ViewOutput::Relation { name } => {
            let head_atom = Atom::new(Predicate::new(name), body.head.clone());
            let c_v = Ded::tgd(
                &format!("c{}", view.name),
                body.body.clone(),
                Vec::new(),
                vec![head_atom.clone()],
            );
            let b_v = Ded::tgd(
                &format!("b{}", view.name),
                vec![head_atom],
                body_exists(&body.head),
                body.body.clone(),
            );
            vec![c_v, b_v]
        }
        ViewOutput::XmlFlat { document, row_tag, field_tags } => {
            assert_eq!(
                field_tags.len(),
                body.head.len(),
                "view {} output arity mismatch",
                view.name
            );
            let out_schema = GrexSchema::new(document);
            let skolem = Predicate::new(&format!("G_{}_{row_tag}", view.name));
            let row = Term::var("_row");
            let mut skolem_args = body.head.clone();
            skolem_args.push(row);
            let skolem_atom = Atom::new(skolem, skolem_args.clone());

            let mut deds = Vec::new();

            // cV: every binding of the body has an (invented) row element.
            deds.push(Ded::tgd(
                &format!("c{}", view.name),
                body.body.clone(),
                vec![Variable::named("_row")],
                vec![skolem_atom.clone()],
            ));

            // Structure of the invented elements: the row is a child of the
            // output root, tagged row_tag, with one leaf child per field whose
            // text is the bound value (constraints (8)/(9) of the paper).
            let mut structure_atoms = vec![
                out_schema.root_atom(Term::var("_root")),
                out_schema.child_atom(Term::var("_root"), row),
                out_schema.tag_atom(row, row_tag),
                out_schema.el_atom(row),
            ];
            let mut structure_exists = vec![Variable::named("_root")];
            for (i, tag) in field_tags.iter().enumerate() {
                let field = Term::var(&format!("_f{i}"));
                structure_exists.push(Variable::named(&format!("_f{i}")));
                structure_atoms.push(out_schema.child_atom(row, field));
                structure_atoms.push(out_schema.tag_atom(field, tag));
                structure_atoms.push(out_schema.text_atom(field, body.head[i]));
            }
            deds.push(Ded::tgd(
                &format!("{}_structure", view.name),
                vec![skolem_atom.clone()],
                structure_exists,
                structure_atoms,
            ));

            // Functionality: one row element per binding (constraint (6)).
            deds.push(Ded::egd(
                &format!("{}_functional", view.name),
                vec![
                    Atom::new(skolem, skolem_args.clone()),
                    Atom::new(skolem, {
                        let mut other = body.head.clone();
                        other.push(Term::var("_row2"));
                        other
                    }),
                ],
                row,
                Term::var("_row2"),
            ));

            // Injectivity: distinct bindings produce distinct rows
            // (constraint (5)) — expressed per column.
            for (i, _) in body.head.iter().enumerate() {
                if let Term::Var(v) = body.head[i] {
                    let mut other_head: Vec<Term> = body
                        .head
                        .iter()
                        .enumerate()
                        .map(|(j, t)| {
                            if j == i {
                                Term::Var(Variable::with_index(&format!("_o{j}"), 900))
                            } else {
                                *t
                            }
                        })
                        .collect();
                    other_head.push(row);
                    deds.push(Ded::egd(
                        &format!("{}_injective_{i}", view.name),
                        vec![
                            Atom::new(skolem, skolem_args.clone()),
                            Atom::new(skolem, other_head.clone()),
                        ],
                        Term::Var(v),
                        other_head[i],
                    ));
                }
            }

            // bV: every row element of the output document comes from a
            // binding of the body (the LAV direction used when answering
            // public-schema queries from the materialized document). The
            // premise navigates with `desc` so that client queries using the
            // descendant axis (`//row_tag`) match it directly; TIX's (base)
            // makes this equivalent to the child-based structure constraint.
            let mut row_premise = vec![
                out_schema.root_atom(Term::var("_root")),
                out_schema.desc_atom(Term::var("_root"), row),
                out_schema.tag_atom(row, row_tag),
            ];
            for (i, tag) in field_tags.iter().enumerate() {
                let field = Term::var(&format!("_f{i}"));
                row_premise.push(out_schema.child_atom(row, field));
                row_premise.push(out_schema.tag_atom(field, tag));
                row_premise.push(out_schema.text_atom(field, body.head[i]));
            }
            deds.push(Ded::tgd(
                &format!("b{}", view.name),
                row_premise,
                body_exists(&body.head),
                body.body.clone(),
            ));

            deds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_path;
    use mars_xquery::XBindAtom;

    /// DrugPriceMap from Example 1.1: relational view of catalog.xml.
    fn drug_price_view() -> ViewDef {
        let body = XBindQuery::new("DrugPriceMap")
            .with_head(&["n", "p"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "catalog.xml".to_string(),
                path: parse_path("//drug").unwrap(),
                var: "d".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./name/text()").unwrap(),
                source: "d".to_string(),
                var: "n".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./price/text()").unwrap(),
                source: "d".to_string(),
                var: "p".to_string(),
            });
        ViewDef::relational("drugPrice", body)
    }

    #[test]
    fn relational_view_compiles_to_cv_bv_pair() {
        let view = drug_price_view();
        let mut ctx = CompileContext::new();
        let deds = compile_view(&mut ctx, &view);
        assert_eq!(deds.len(), 2);
        let c_v = &deds[0];
        let b_v = &deds[1];
        // cV: navigation atoms → drugPrice(n,p)
        assert!(c_v.premise.len() >= 7);
        assert_eq!(c_v.conclusions[0].atoms[0].predicate, Predicate::new("drugPrice"));
        // bV: drugPrice(n,p) → ∃ (navigation)
        assert_eq!(b_v.premise.len(), 1);
        assert!(!b_v.conclusions[0].exists.is_empty());
        assert_eq!(view.output_predicates(), vec![Predicate::new("drugPrice")]);
    }

    #[test]
    fn xml_flat_view_generates_skolem_constraints() {
        let body = XBindQuery::new("CacheMap").with_head(&["diag", "drug"]).with_atom(
            XBindAtom::Relational {
                relation: "caseAssoc".to_string(),
                args: vec![
                    mars_xquery::XBindTerm::var("diag"),
                    mars_xquery::XBindTerm::var("drug"),
                ],
            },
        );
        let view = ViewDef::xml_flat(
            "CacheEntry",
            body,
            "cacheEntry.xml",
            "entry",
            &["diagnosis", "drug"],
        );
        let mut ctx = CompileContext::new();
        let deds = compile_view(&mut ctx, &view);
        // cV + structure + functional + 2 injectivity + bV = 6
        assert_eq!(deds.len(), 6);
        let names: Vec<&str> = deds.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"cCacheEntry"));
        assert!(names.contains(&"CacheEntry_structure"));
        assert!(names.contains(&"CacheEntry_functional"));
        assert!(names.contains(&"bCacheEntry"));
        // The structure constraint mentions the output document's GReX schema.
        let out_schema = GrexSchema::new("cacheEntry.xml");
        let structure = deds.iter().find(|d| d.name == "CacheEntry_structure").unwrap();
        assert!(structure.conclusions[0].atoms.iter().any(|a| a.predicate == out_schema.text()));
        // The output predicates of an XML view are the document's GReX relations.
        assert_eq!(view.output_predicates().len(), 8);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn xml_flat_view_checks_field_arity() {
        let body = XBindQuery::new("V").with_head(&["a", "b"]).with_atom(XBindAtom::Relational {
            relation: "R".to_string(),
            args: vec![mars_xquery::XBindTerm::var("a"), mars_xquery::XBindTerm::var("b")],
        });
        let view = ViewDef::xml_flat("V", body, "v.xml", "row", &["only_one"]);
        let mut ctx = CompileContext::new();
        let _ = compile_view(&mut ctx, &view);
    }

    #[test]
    fn identity_gav_view_over_a_document() {
        // IdMap from Example 1.1: catalog.xml is published as itself. We model
        // it as an XmlFlat view over the drug/name/price rows for test purposes.
        let view = ViewDef::xml_flat(
            "IdMap",
            drug_price_view().body,
            "public_catalog.xml",
            "drug",
            &["name", "price"],
        );
        let mut ctx = CompileContext::new();
        let deds = compile_view(&mut ctx, &view);
        assert!(deds.len() >= 5);
        // The bV direction reads the published document and re-derives
        // proprietary navigation facts.
        let b_v = deds.iter().find(|d| d.name == "bIdMap").unwrap();
        let pub_schema = GrexSchema::new("public_catalog.xml");
        assert!(b_v.premise.iter().any(|a| a.predicate == pub_schema.child()));
        let prop_schema = GrexSchema::new("catalog.xml");
        assert!(b_v.conclusions[0].atoms.iter().any(|a| a.predicate == prop_schema.child()));
    }
}
