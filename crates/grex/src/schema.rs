//! The GReX schema of one document.
//!
//! Several documents (public and proprietary) take part in one reformulation
//! problem; the paper writes `GReX1`, `GReX2`, … for their encodings. Here the
//! GReX predicates are suffixed with the document name (`child#catalog.xml`),
//! which keeps the encodings disjoint while remaining recognizable to the
//! XML-specific optimizations in `mars-chase` (which match on the base name
//! before the `#`).

use mars_cq::{Atom, Predicate, Term};

/// The GReX relational schema of one document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrexSchema {
    /// Document name, e.g. `case.xml`.
    pub document: String,
}

impl GrexSchema {
    /// The schema of the given document.
    pub fn new(document: &str) -> GrexSchema {
        GrexSchema { document: document.to_string() }
    }

    fn pred(&self, base: &str) -> Predicate {
        Predicate::new(&format!("{base}#{}", self.document))
    }

    /// `root(x)` — x is the document's root element.
    pub fn root(&self) -> Predicate {
        self.pred("root")
    }
    /// `el(x)` — x is an element node.
    pub fn el(&self) -> Predicate {
        self.pred("el")
    }
    /// `child(x, y)` — y is a child of x.
    pub fn child(&self) -> Predicate {
        self.pred("child")
    }
    /// `desc(x, y)` — y is a descendant-or-self of x.
    pub fn desc(&self) -> Predicate {
        self.pred("desc")
    }
    /// `tag(x, t)` — element x has tag t.
    pub fn tag(&self) -> Predicate {
        self.pred("tag")
    }
    /// `attr(x, n, v)` — element x has attribute n with value v.
    pub fn attr(&self) -> Predicate {
        self.pred("attr")
    }
    /// `id(x, i)` — element x has node identity i.
    pub fn id(&self) -> Predicate {
        self.pred("id")
    }
    /// `text(x, v)` — element x has text content v.
    pub fn text(&self) -> Predicate {
        self.pred("text")
    }

    /// All eight GReX predicates of this document.
    pub fn all_predicates(&self) -> Vec<Predicate> {
        vec![
            self.root(),
            self.el(),
            self.child(),
            self.desc(),
            self.tag(),
            self.attr(),
            self.id(),
            self.text(),
        ]
    }

    /// Convenience atom builders.
    pub fn root_atom(&self, x: Term) -> Atom {
        Atom::new(self.root(), vec![x])
    }
    /// `el(x)` atom.
    pub fn el_atom(&self, x: Term) -> Atom {
        Atom::new(self.el(), vec![x])
    }
    /// `child(x,y)` atom.
    pub fn child_atom(&self, x: Term, y: Term) -> Atom {
        Atom::new(self.child(), vec![x, y])
    }
    /// `desc(x,y)` atom.
    pub fn desc_atom(&self, x: Term, y: Term) -> Atom {
        Atom::new(self.desc(), vec![x, y])
    }
    /// `tag(x,"t")` atom.
    pub fn tag_atom(&self, x: Term, tag: &str) -> Atom {
        Atom::new(self.tag(), vec![x, Term::constant_str(tag)])
    }
    /// `text(x,v)` atom.
    pub fn text_atom(&self, x: Term, v: Term) -> Atom {
        Atom::new(self.text(), vec![x, v])
    }
    /// `attr(x,"n",v)` atom.
    pub fn attr_atom(&self, x: Term, name: &str, v: Term) -> Atom {
        Atom::new(self.attr(), vec![x, Term::constant_str(name), v])
    }
    /// `id(x,i)` atom.
    pub fn id_atom(&self, x: Term, i: Term) -> Atom {
        Atom::new(self.id(), vec![x, i])
    }

    /// Does the predicate belong to this document's GReX encoding?
    pub fn owns(&self, p: Predicate) -> bool {
        self.all_predicates().contains(&p)
    }

    /// The base name (e.g. `child`) of a GReX predicate of any document, or
    /// `None` for non-GReX predicates.
    pub fn base_name(p: Predicate) -> Option<String> {
        let name = p.name();
        let (base, _) = name.split_once('#')?;
        match base {
            "root" | "el" | "child" | "desc" | "tag" | "attr" | "id" | "text" => {
                Some(base.to_string())
            }
            _ => None,
        }
    }

    /// The document a GReX predicate refers to, if any.
    pub fn document_of(p: Predicate) -> Option<String> {
        let name = p.name();
        let (base, doc) = name.split_once('#')?;
        match base {
            "root" | "el" | "child" | "desc" | "tag" | "attr" | "id" | "text" => {
                Some(doc.to_string())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_document_scoped() {
        let a = GrexSchema::new("case.xml");
        let b = GrexSchema::new("catalog.xml");
        assert_ne!(a.child(), b.child());
        assert_eq!(a.all_predicates().len(), 8);
        assert!(a.owns(a.desc()));
        assert!(!a.owns(b.desc()));
    }

    #[test]
    fn base_name_and_document_extraction() {
        let s = GrexSchema::new("case.xml");
        assert_eq!(GrexSchema::base_name(s.child()), Some("child".to_string()));
        assert_eq!(GrexSchema::document_of(s.tag()), Some("case.xml".to_string()));
        assert_eq!(GrexSchema::base_name(Predicate::new("drugPrice")), None);
        assert_eq!(GrexSchema::base_name(Predicate::new("V1#star")), None);
    }

    #[test]
    fn atom_builders() {
        let s = GrexSchema::new("d.xml");
        let a = s.tag_atom(Term::var("x"), "author");
        assert_eq!(a.predicate, s.tag());
        assert_eq!(a.args[1], Term::constant_str("author"));
        assert_eq!(s.attr_atom(Term::var("x"), "year", Term::var("v")).arity(), 3);
        assert_eq!(s.child_atom(Term::var("x"), Term::var("y")).arity(), 2);
        assert_eq!(s.root_atom(Term::var("r")).arity(), 1);
        assert_eq!(s.el_atom(Term::var("r")).arity(), 1);
        assert_eq!(s.id_atom(Term::var("r"), Term::var("i")).arity(), 2);
        assert_eq!(s.desc_atom(Term::var("r"), Term::var("d")).arity(), 2);
        assert_eq!(s.text_atom(Term::var("r"), Term::var("t")).arity(), 2);
    }
}
