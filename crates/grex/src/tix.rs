//! TIX — the built-in constraints that are True In XML (Section 2.2).
//!
//! The GReX relations are not independent: `desc` is the reflexive-transitive
//! closure of `child`, every element has at most one tag, all ancestors of an
//! element lie on one root-leaf path, and so on. TIX captures these facts as
//! DEDs; they are added to every reformulation problem, once per document.

use crate::schema::GrexSchema;
use mars_cq::{Conjunct, Ded, Term, Variable};

fn t(n: &str) -> Term {
    Term::var(n)
}
fn v(n: &str) -> Variable {
    Variable::named(n)
}

/// The TIX constraints for one document's GReX encoding (13 constraints, as in
/// the paper).
pub fn tix_constraints(schema: &GrexSchema) -> Vec<Ded> {
    let d = &schema.document;
    let name = |base: &str| format!("TIX.{base}#{d}");
    vec![
        // (base)  child ⊆ desc
        Ded::tgd(
            &name("base"),
            vec![schema.child_atom(t("x"), t("y"))],
            vec![],
            vec![schema.desc_atom(t("x"), t("y"))],
        ),
        // (trans) desc is transitive
        Ded::tgd(
            &name("trans"),
            vec![schema.desc_atom(t("x"), t("y")), schema.desc_atom(t("y"), t("z"))],
            vec![],
            vec![schema.desc_atom(t("x"), t("z"))],
        ),
        // (refl)  desc is reflexive on element nodes
        Ded::tgd(
            &name("refl"),
            vec![schema.el_atom(t("x"))],
            vec![],
            vec![schema.desc_atom(t("x"), t("x"))],
        ),
        // (line)  all ancestors of an element are on the same root-leaf path
        Ded::disjunctive(
            &name("line"),
            vec![schema.desc_atom(t("x"), t("u")), schema.desc_atom(t("y"), t("u"))],
            vec![
                Conjunct::equalities(vec![(t("x"), t("y"))]),
                Conjunct::atoms(vec![schema.desc_atom(t("x"), t("y"))]),
                Conjunct::atoms(vec![schema.desc_atom(t("y"), t("x"))]),
            ],
        ),
        // Keys: an element has at most one tag / text / identity, and at most
        // one value per attribute name.
        Ded::egd(
            &name("tag_key"),
            vec![schema.tag_atom_var(t("x"), t("t1")), schema.tag_atom_var(t("x"), t("t2"))],
            t("t1"),
            t("t2"),
        ),
        Ded::egd(
            &name("text_key"),
            vec![schema.text_atom(t("x"), t("t1")), schema.text_atom(t("x"), t("t2"))],
            t("t1"),
            t("t2"),
        ),
        Ded::egd(
            &name("id_key"),
            vec![schema.id_atom(t("x"), t("i1")), schema.id_atom(t("x"), t("i2"))],
            t("i1"),
            t("i2"),
        ),
        Ded::egd(
            &name("attr_key"),
            vec![
                mars_cq::Atom::new(schema.attr(), vec![t("x"), t("n"), t("v1")]),
                mars_cq::Atom::new(schema.attr(), vec![t("x"), t("n"), t("v2")]),
            ],
            t("v1"),
            t("v2"),
        ),
        // Node identity is injective: two elements with the same id are equal.
        Ded::egd(
            &name("id_injective"),
            vec![schema.id_atom(t("x"), t("i")), schema.id_atom(t("y"), t("i"))],
            t("x"),
            t("y"),
        ),
        // The root is unique.
        Ded::egd(
            &name("root_unique"),
            vec![schema.root_atom(t("x")), schema.root_atom(t("y"))],
            t("x"),
            t("y"),
        ),
        // Every element has at most one parent.
        Ded::egd(
            &name("parent_unique"),
            vec![schema.child_atom(t("x"), t("z")), schema.child_atom(t("y"), t("z"))],
            t("x"),
            t("y"),
        ),
        // child and root relate element nodes.
        Ded::tgd(
            &name("child_el"),
            vec![schema.child_atom(t("x"), t("y"))],
            vec![],
            vec![schema.el_atom(t("x")), schema.el_atom(t("y"))],
        ),
        // Every element has an identity.
        Ded::tgd(
            &name("el_id"),
            vec![schema.el_atom(t("x"))],
            vec![v("i")],
            vec![schema.id_atom(t("x"), t("i"))],
        ),
    ]
}

/// TIX without the disjunctive `(line)` constraint. `(line)` never fires on
/// the tree-shaped canonical instances produced by compiling path queries
/// (one of its disjuncts is always already satisfied), but evaluating its
/// premise is quadratic in the `desc` relation; the MARS facade therefore
/// chases with this core set by default and keeps the full set available for
/// callers that need it.
pub fn tix_constraints_core(schema: &GrexSchema) -> Vec<Ded> {
    tix_constraints(schema).into_iter().filter(|d| !d.name.starts_with("TIX.line")).collect()
}

impl GrexSchema {
    /// `tag(x, t)` atom with a variable tag (only used inside TIX).
    fn tag_atom_var(&self, x: Term, tag_var: Term) -> mars_cq::Atom {
        mars_cq::Atom::new(self.tag(), vec![x, tag_var])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_chase::{chase_to_universal_plan, detect_closure_constraints, ChaseOptions};
    use mars_cq::ConjunctiveQuery;

    #[test]
    fn thirteen_constraints_per_document() {
        let schema = GrexSchema::new("case.xml");
        let tix = tix_constraints(&schema);
        assert_eq!(tix.len(), 13);
        // All constraints mention only this document's predicates.
        for d in &tix {
            for p in d.premise_predicates().iter().chain(d.conclusion_predicates().iter()) {
                assert!(schema.owns(*p), "{p:?} not owned by {}", schema.document);
            }
        }
    }

    #[test]
    fn closure_constraints_are_detected_in_tix() {
        let schema = GrexSchema::new("case.xml");
        let tix = tix_constraints(&schema);
        let closure = detect_closure_constraints(&tix);
        assert!(closure.any());
        assert_eq!(closure.indices().len(), 3);
        assert_eq!(closure.groups[0].document.as_deref(), Some("case.xml"));
    }

    #[test]
    fn chasing_a_path_query_with_tix_terminates() {
        // //a/b : root(r), desc(r,n1), tag(n1,a), child(n1,n2), tag(n2,b)
        let s = GrexSchema::new("doc.xml");
        let q = ConjunctiveQuery::new("path").with_head(vec![Term::var("n2")]).with_body(vec![
            s.root_atom(Term::var("r")),
            s.desc_atom(Term::var("r"), Term::var("n1")),
            s.tag_atom(Term::var("n1"), "a"),
            s.child_atom(Term::var("n1"), Term::var("n2")),
            s.tag_atom(Term::var("n2"), "b"),
        ]);
        let up = chase_to_universal_plan(&q, &tix_constraints(&s), &ChaseOptions::default());
        assert!(up.stats.completed, "TIX chase must terminate");
        assert!(!up.branches.is_empty());
        let plan = up.primary();
        // The chase derived el facts, ids, reflexive/transitive desc facts.
        assert!(plan.body.len() > q.body.len());
        assert!(plan.body.iter().any(|a| a.predicate == s.el()));
        assert!(plan.body.iter().any(|a| a.predicate == s.id()));
    }
}
