//! # mars-grex — the generic relational encoding of XML
//!
//! MARS reduces XML query reformulation to relational query minimization under
//! constraints by compiling everything — XBind queries, XICs, XQuery views —
//! into the relational framework `GReX = [root, el, child, desc, tag, attr,
//! id, text]` together with the built-in constraint set `TIX` (Section 2.2).
//! The XML data is *not* stored this way; GReX is a logical representation
//! used for reasoning.
//!
//! This crate provides:
//!
//! * [`GrexSchema`] — the GReX predicates of one document (predicates are
//!   suffixed with the document name so several documents coexist in one
//!   reformulation problem),
//! * [`tix`] — the built-in TIX constraints,
//! * [`compile`] — syntax-directed compilation of XBind queries and XICs to
//!   conjunctive queries / DEDs over GReX,
//! * [`views`] — compilation of view definitions (GAV and LAV alike) into
//!   "direction-neutral" DED pairs, including the Skolem-function constraints
//!   of Section 2.4 for views that construct new XML elements,
//! * [`encode`] — encoding of concrete documents into ground GReX facts, used
//!   by the storage substrate and by semantics tests.

pub mod compile;
pub mod encode;
pub mod schema;
pub mod tix;
pub mod views;

pub use compile::{compile_xbind, compile_xic, CompileContext};
pub use encode::encode_document;
pub use schema::GrexSchema;
pub use tix::{tix_constraints, tix_constraints_core};
pub use views::{compile_view, ViewDef, ViewOutput};
