//! Syntax-directed compilation of XBind queries and XICs into the relational
//! framework (Section 2.2, items (i) and (ii)).
//!
//! Path atoms are expanded step by step into GReX atoms; for instance
//! `[//author/text()](a)` over document `d` compiles to
//! `root#d(r), desc#d(r,n), tag#d(n,"author"), text#d(n,a)` — exactly the
//! shape of equation (3) in the paper (modulo the reflexive `desc` convention:
//! descendant-or-self, which TIX's `(refl)` makes equivalent).

use crate::schema::GrexSchema;
use mars_cq::{Atom, Conjunct, ConjunctiveQuery, Ded, Predicate, Substitution, Term, Variable};
use mars_xml::{Path, Step};
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm, Xic, XicConjunct};

/// Compilation context: generates fresh intermediate variables so that the
/// atoms produced for different path atoms never collide.
#[derive(Debug, Default)]
pub struct CompileContext {
    counter: u32,
}

impl CompileContext {
    /// A fresh context.
    pub fn new() -> CompileContext {
        CompileContext::default()
    }

    fn fresh(&mut self, hint: &str) -> Variable {
        self.counter += 1;
        Variable::with_index(&format!("_{hint}"), self.counter)
    }
}

fn xterm(t: &XBindTerm) -> Term {
    match t {
        XBindTerm::Var(v) => Term::var(v),
        XBindTerm::Str(s) => Term::constant_str(s),
    }
}

/// Compile one path into GReX atoms. `start` is the context node term (for
/// relative paths) or a fresh root variable (for absolute paths). `target` is
/// the term the final step binds. Returns the produced atoms.
pub fn compile_path(
    ctx: &mut CompileContext,
    schema: &GrexSchema,
    path: &Path,
    start: Option<Term>,
    target: Term,
) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut current = match start {
        Some(s) => s,
        None => {
            let r = Term::Var(ctx.fresh("r"));
            atoms.push(schema.root_atom(r));
            r
        }
    };
    let n = path.steps.len();
    for (i, step) in path.steps.iter().enumerate() {
        let last = i + 1 == n;
        // The node/value produced by this step.
        let produced = if last { target } else { Term::Var(ctx.fresh("n")) };
        match step {
            Step::Child(name) => {
                atoms.push(schema.child_atom(current, produced));
                atoms.push(schema.tag_atom(produced, name));
            }
            Step::Descendant(name) => {
                atoms.push(schema.desc_atom(current, produced));
                atoms.push(schema.tag_atom(produced, name));
            }
            Step::ChildAny => atoms.push(schema.child_atom(current, produced)),
            Step::DescendantAny => atoms.push(schema.desc_atom(current, produced)),
            Step::Text => atoms.push(schema.text_atom(current, produced)),
            Step::Attribute(name) => atoms.push(schema.attr_atom(current, name, produced)),
        }
        current = produced;
    }
    if n == 0 {
        // The empty relative path `.` binds the target to the start node.
        // Represented by a desc self-step which TIX makes reflexive.
        atoms.push(schema.desc_atom(current, target));
    }
    atoms
}

/// Result of compiling a set of XBind atoms: GReX/relational atoms plus
/// equality substitution and inequalities.
struct CompiledAtoms {
    atoms: Vec<Atom>,
    equalities: Vec<(Term, Term)>,
    inequalities: Vec<(Term, Term)>,
}

fn compile_atoms(ctx: &mut CompileContext, xatoms: &[XBindAtom]) -> CompiledAtoms {
    let mut out =
        CompiledAtoms { atoms: Vec::new(), equalities: Vec::new(), inequalities: Vec::new() };
    for a in xatoms {
        match a {
            XBindAtom::AbsolutePath { document, path, var } => {
                let schema = GrexSchema::new(document);
                out.atoms.extend(compile_path(ctx, &schema, path, None, Term::var(var)));
            }
            XBindAtom::RelativePath { path, source, var } => {
                // The document of a relative path is that of its source
                // variable; since GReX node identities are document-scoped the
                // schema only matters for predicate naming, and we recover it
                // from the first absolute atom that bound the source. For
                // robustness we default to the last absolute document seen.
                let schema = GrexSchema::new(&ctx_document(xatoms, source));
                out.atoms.extend(compile_path(
                    ctx,
                    &schema,
                    path,
                    Some(Term::var(source)),
                    Term::var(var),
                ));
            }
            XBindAtom::QueryRef { name, vars } => {
                out.atoms.push(Atom::new(
                    Predicate::new(name),
                    vars.iter().map(|v| Term::var(v)).collect(),
                ));
            }
            XBindAtom::Relational { relation, args } => {
                out.atoms
                    .push(Atom::new(Predicate::new(relation), args.iter().map(xterm).collect()));
            }
            XBindAtom::Eq(x, y) => out.equalities.push((xterm(x), xterm(y))),
            XBindAtom::Neq(x, y) => out.inequalities.push((xterm(x), xterm(y))),
        }
    }
    out
}

/// Find the document in which `var` was bound (for resolving relative paths).
fn ctx_document(atoms: &[XBindAtom], var: &str) -> String {
    // Direct binding by an absolute path.
    for a in atoms {
        if let XBindAtom::AbsolutePath { document, var: v, .. } = a {
            if v == var {
                return document.clone();
            }
        }
    }
    // Transitive binding through relative paths.
    for a in atoms {
        if let XBindAtom::RelativePath { source, var: v, .. } = a {
            if v == var {
                return ctx_document(atoms, source);
            }
        }
    }
    // Fall back to the first absolute document mentioned anywhere.
    for a in atoms {
        if let XBindAtom::AbsolutePath { document, .. } = a {
            return document.clone();
        }
    }
    "default.xml".to_string()
}

/// Turn compile-time equalities into a substitution (variables are unified,
/// variable = constant binds the variable).
fn equalities_to_substitution(equalities: &[(Term, Term)]) -> Substitution {
    let mut s = Substitution::new();
    for (a, b) in equalities {
        let ia = s.apply_term_deep(*a);
        let ib = s.apply_term_deep(*b);
        if ia == ib {
            continue;
        }
        match (ia, ib) {
            (Term::Var(v), t) | (t, Term::Var(v)) => s.set(v, t),
            // Two distinct constants: leave as-is (the query is unsatisfiable;
            // callers detect this via `has_contradictory_inequality` or empty
            // evaluation).
            _ => {}
        }
    }
    s
}

/// Compile an XBind query into a conjunctive query over the GReX schema(s) of
/// the documents it navigates (item (i) of Section 2.2).
pub fn compile_xbind(ctx: &mut CompileContext, xbind: &XBindQuery) -> ConjunctiveQuery {
    let compiled = compile_atoms(ctx, &xbind.atoms);
    let sub = equalities_to_substitution(&compiled.equalities);
    let head: Vec<Term> = xbind.head.iter().map(|v| sub.apply_term_deep(Term::var(v))).collect();
    let body: Vec<Atom> = compiled.atoms.iter().map(|a| sub.apply_atom_deep(a)).collect();
    let inequalities = compiled
        .inequalities
        .iter()
        .map(|(a, b)| (sub.apply_term_deep(*a), sub.apply_term_deep(*b)))
        .collect();
    ConjunctiveQuery { name: xbind.name.clone(), head, body, inequalities }
}

/// Compile an XIC into a relational DED over GReX (item (ii) of Section 2.2).
pub fn compile_xic(ctx: &mut CompileContext, xic: &Xic) -> Ded {
    let premise = compile_atoms(ctx, &xic.premise);
    let premise_sub = equalities_to_substitution(&premise.equalities);
    let premise_atoms: Vec<Atom> =
        premise.atoms.iter().map(|a| premise_sub.apply_atom_deep(a)).collect();
    let premise_vars: std::collections::HashSet<Variable> =
        premise_atoms.iter().flat_map(|a| a.variables()).collect();

    let mut conclusions = Vec::new();
    for conj in &xic.conclusions {
        conclusions.push(compile_conjunct(ctx, conj, &premise_sub, &premise_vars));
    }
    Ded {
        name: xic.name.clone(),
        premise: premise_atoms,
        premise_inequalities: premise
            .inequalities
            .iter()
            .map(|(a, b)| (premise_sub.apply_term_deep(*a), premise_sub.apply_term_deep(*b)))
            .collect(),
        conclusions,
    }
}

fn compile_conjunct(
    ctx: &mut CompileContext,
    conj: &XicConjunct,
    premise_sub: &Substitution,
    premise_vars: &std::collections::HashSet<Variable>,
) -> Conjunct {
    let compiled = compile_atoms(ctx, &conj.atoms);
    let atoms: Vec<Atom> = compiled.atoms.iter().map(|a| premise_sub.apply_atom_deep(a)).collect();
    let mut equalities: Vec<(Term, Term)> = conj
        .equalities
        .iter()
        .map(|(a, b)| {
            (premise_sub.apply_term_deep(xterm(a)), premise_sub.apply_term_deep(xterm(b)))
        })
        .collect();
    equalities.extend(
        compiled
            .equalities
            .iter()
            .map(|(a, b)| (premise_sub.apply_term_deep(*a), premise_sub.apply_term_deep(*b))),
    );
    // Every conclusion variable not bound by the premise is existential
    // (declared ones plus the fresh intermediate navigation variables).
    let mut exists: Vec<Variable> = Vec::new();
    for a in &atoms {
        for v in a.variables() {
            if !premise_vars.contains(&v) && !exists.contains(&v) {
                exists.push(v);
            }
        }
    }
    Conjunct { exists, atoms, equalities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_path;
    use mars_xquery::xbind::example_2_1;

    #[test]
    fn equation_3_shape_for_xbo() {
        // Xbo(a) :- [//author/text()](a) compiles to
        // root(r), desc(r,n), tag(n,"author"), text(n,a)   over books.xml.
        let (xbo, _) = example_2_1();
        let mut ctx = CompileContext::new();
        let q = compile_xbind(&mut ctx, &xbo);
        assert_eq!(q.head, vec![Term::var("a")]);
        assert_eq!(q.body.len(), 4);
        let s = GrexSchema::new("books.xml");
        let preds: Vec<Predicate> = q.body.iter().map(|a| a.predicate).collect();
        assert!(preds.contains(&s.root()));
        assert!(preds.contains(&s.desc()));
        assert!(preds.contains(&s.tag()));
        assert!(preds.contains(&s.text()));
        // The text atom binds the head variable.
        let text_atom = q.body.iter().find(|a| a.predicate == s.text()).unwrap();
        assert_eq!(text_atom.args[1], Term::var("a"));
    }

    #[test]
    fn xbi_compiles_with_correlation_and_equality_substitution() {
        let (_, xbi) = example_2_1();
        let mut ctx = CompileContext::new();
        let q = compile_xbind(&mut ctx, &xbi);
        // The equality a = a1 is compiled away by unification: the head
        // repeats the same term in positions 0 and 2.
        assert_eq!(q.head.len(), 4);
        assert_eq!(q.head[0], q.head[2]);
        // The correlation atom Xbo(a) is a plain relational atom.
        assert!(q.body.iter().any(|a| a.predicate == Predicate::new("Xbo")));
        // All navigation is over books.xml.
        let s = GrexSchema::new("books.xml");
        assert!(q.body.iter().any(|a| a.predicate == s.child()));
        assert!(q.is_safe());
    }

    #[test]
    fn relative_paths_follow_their_source_document() {
        let xb = XBindQuery::new("Q")
            .with_head(&["p"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "catalog.xml".to_string(),
                path: parse_path("//drug").unwrap(),
                var: "d".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./price/text()").unwrap(),
                source: "d".to_string(),
                var: "p".to_string(),
            });
        let mut ctx = CompileContext::new();
        let q = compile_xbind(&mut ctx, &xb);
        let s = GrexSchema::new("catalog.xml");
        assert!(q.body.iter().all(|a| s.owns(a.predicate)));
        assert_eq!(q.body.len(), 3 + 3); // root,desc,tag + child,tag,text
    }

    #[test]
    fn attribute_and_wildcard_steps() {
        let xb = XBindQuery::new("Q").with_head(&["y"]).with_atom(XBindAtom::AbsolutePath {
            document: "bib.xml".to_string(),
            path: parse_path("//book/@year").unwrap(),
            var: "y".to_string(),
        });
        let mut ctx = CompileContext::new();
        let q = compile_xbind(&mut ctx, &xb);
        let s = GrexSchema::new("bib.xml");
        assert!(q.body.iter().any(|a| a.predicate == s.attr()));
        // attr atom: (node, "year", y)
        let attr = q.body.iter().find(|a| a.predicate == s.attr()).unwrap();
        assert_eq!(attr.args[1], Term::constant_str("year"));
        assert_eq!(attr.args[2], Term::var("y"));
    }

    #[test]
    fn inequalities_survive_compilation() {
        let xb = XBindQuery::new("Q")
            .with_head(&["v"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "d.xml".to_string(),
                path: parse_path("//item/text()").unwrap(),
                var: "v".to_string(),
            })
            .with_atom(XBindAtom::Neq(XBindTerm::var("v"), XBindTerm::str("0")));
        let mut ctx = CompileContext::new();
        let q = compile_xbind(&mut ctx, &xb);
        assert_eq!(q.inequalities, vec![(Term::var("v"), Term::constant_str("0"))]);
    }

    #[test]
    fn xic_constraint_2_compiles_like_the_paper() {
        // ∀p //person(p) → ∃s ./ssn(p,s)
        let xic = Xic::exists_child("person_has_ssn", "people.xml", "//person", "./ssn").unwrap();
        let mut ctx = CompileContext::new();
        let ded = compile_xic(&mut ctx, &xic);
        let s = GrexSchema::new("people.xml");
        // premise: root(r), desc(r,p), tag(p,"person")
        assert_eq!(ded.premise.len(), 3);
        assert!(ded.premise.iter().any(|a| a.predicate == s.tag()));
        // conclusion: ∃s child(p,s) ∧ tag(s,"ssn")
        assert_eq!(ded.conclusions.len(), 1);
        let c = &ded.conclusions[0];
        assert_eq!(c.atoms.len(), 2);
        assert!(c.exists.contains(&Variable::named("s")));
        assert!(c.equalities.is_empty());
    }

    #[test]
    fn xic_key_compiles_to_an_egd() {
        let xic = Xic::key("ssn_key", "people.xml", "//person", "./ssn").unwrap();
        let mut ctx = CompileContext::new();
        let ded = compile_xic(&mut ctx, &xic);
        assert!(ded.is_egd());
        // premise: two //person navigations + two ./ssn navigations sharing s.
        assert!(ded.premise.len() >= 8);
        assert_eq!(ded.conclusions[0].equalities, vec![(Term::var("p"), Term::var("q"))]);
    }

    #[test]
    fn empty_relative_path_binds_via_reflexive_desc() {
        let xb = XBindQuery::new("Q")
            .with_head(&["y"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "d.xml".to_string(),
                path: parse_path("//a").unwrap(),
                var: "x".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path(".").unwrap(),
                source: "x".to_string(),
                var: "y".to_string(),
            });
        let mut ctx = CompileContext::new();
        let q = compile_xbind(&mut ctx, &xb);
        let s = GrexSchema::new("d.xml");
        assert!(q
            .body
            .iter()
            .any(|a| a.predicate == s.desc() && a.args == vec![Term::var("x"), Term::var("y")]));
    }
}
