//! Encoding of concrete documents as ground GReX facts.
//!
//! MARS never stores data this way (GReX is purely logical), but the
//! reproduction uses ground encodings in two places: the storage substrate
//! executes relational reformulations that mention GReX predicates of
//! proprietary XML documents, and the test suite checks that reformulations
//! return the same answers as the original queries.

use crate::schema::GrexSchema;
use mars_cq::{Atom, Term};
use mars_xml::Document;

/// Encode a document into ground GReX atoms. Node identities are string
/// constants `"<document>/n<k>"`.
pub fn encode_document(doc: &Document) -> Vec<Atom> {
    let schema = GrexSchema::new(&doc.name);
    let mut out = Vec::new();
    let node_const = |id: mars_xml::NodeId| Term::constant_str(&format!("{}/n{}", doc.name, id.0));

    let Some(root) = doc.root() else {
        return out;
    };
    out.push(schema.root_atom(node_const(root)));

    for id in doc.all_nodes() {
        let node = doc.node(id);
        if !node.is_element() {
            continue;
        }
        let me = node_const(id);
        out.push(schema.el_atom(me));
        out.push(schema.id_atom(me, me));
        if let Some(tag) = node.tag() {
            out.push(schema.tag_atom(me, tag));
        }
        let text = doc.text_of(id);
        if !text.is_empty() {
            out.push(schema.text_atom(me, Term::constant_str(&text)));
        }
        for (name, value) in &node.attributes {
            out.push(schema.attr_atom(me, name, Term::constant_str(value)));
        }
        for c in doc.child_elements(id) {
            out.push(schema.child_atom(me, node_const(c)));
        }
        // desc is reflexive-transitive (descendant-or-self).
        out.push(schema.desc_atom(me, me));
        for d in doc.descendants(id) {
            out.push(schema.desc_atom(me, node_const(d)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::Predicate;
    use mars_xml::parse_document;

    fn sample() -> Document {
        parse_document(
            "catalog.xml",
            r#"<catalog>
                 <drug id="d1"><name>aspirin</name><price>3</price></drug>
                 <drug id="d2"><name>ibuprofen</name><price>5</price></drug>
               </catalog>"#,
        )
        .unwrap()
    }

    fn count(atoms: &[Atom], p: Predicate) -> usize {
        atoms.iter().filter(|a| a.predicate == p).count()
    }

    #[test]
    fn encoding_counts_match_document_structure() {
        let doc = sample();
        let atoms = encode_document(&doc);
        let s = GrexSchema::new("catalog.xml");
        assert_eq!(count(&atoms, s.root()), 1);
        assert_eq!(count(&atoms, s.el()), 7);
        assert_eq!(count(&atoms, s.tag()), 7);
        assert_eq!(count(&atoms, s.child()), 6);
        // desc: per node, self + descendants: 7 + 6 (root) + 2*2 (drugs) + 0 = 17
        assert_eq!(count(&atoms, s.desc()), 17);
        assert_eq!(count(&atoms, s.text()), 4);
        assert_eq!(count(&atoms, s.attr()), 2);
        assert_eq!(count(&atoms, s.id()), 7);
    }

    #[test]
    fn encoding_is_ground() {
        let atoms = encode_document(&sample());
        assert!(atoms.iter().all(|a| a.is_ground()));
    }

    #[test]
    fn empty_document_encodes_to_nothing() {
        let doc = Document::new("empty.xml");
        assert!(encode_document(&doc).is_empty());
    }

    #[test]
    fn text_values_appear_as_constants() {
        let atoms = encode_document(&sample());
        let s = GrexSchema::new("catalog.xml");
        assert!(atoms
            .iter()
            .any(|a| a.predicate == s.text() && a.args[1] == Term::constant_str("aspirin")));
        assert!(atoms
            .iter()
            .any(|a| a.predicate == s.attr() && a.args[2] == Term::constant_str("d1")));
    }
}
