//! Offline shim for `serde_json`.
//!
//! Implements exactly the surface the workspace uses: the [`Value`] tree, the
//! [`json!`] macro for object/array literals with expression values, and
//! [`to_string_pretty`] over values and string-keyed maps.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Error type matching the real crate's `serde_json::Error` position in
/// signatures. Serialization of in-memory values cannot fail here.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json error")
    }
}

impl std::error::Error for Error {}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

macro_rules! impl_from_number {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(v as f64)
            }
        })*
    };
}

impl_from_number!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Build a [`Value`] from a JSON-shaped literal. Object values and array
/// elements are arbitrary expressions convertible into [`Value`] via `From`
/// (nest further `json!` calls explicitly for deeper literals).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert($key.to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Types this shim can pretty-print at the top level.
pub trait JsonSerialize {
    fn to_value(&self) -> Value;
}

impl JsonSerialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl JsonSerialize for HashMap<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
    }
}

impl JsonSerialize for BTreeMap<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

/// Pretty-print with two-space indentation, keys sorted (objects are ordered
/// maps), matching the real crate's output shape closely enough for files
/// meant for human inspection.
pub fn to_string_pretty<T: JsonSerialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if !n.is_finite() {
                // JSON has no NaN/Infinity; real serde_json cannot represent
                // non-finite f64 either and emits null.
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let rows = vec![json!({"a": 1, "b": true})];
        let v = json!({"rows": rows, "label": "x"});
        match &v {
            Value::Object(map) => {
                assert!(matches!(map["label"], Value::String(_)));
                assert!(matches!(map["rows"], Value::Array(_)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let v = json!({"inf": f64::INFINITY, "nan": f64::NAN, "neg": f64::NEG_INFINITY});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"inf\": null"));
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"neg\": null"));
    }

    #[test]
    fn pretty_printer_round_trips_simple_shapes() {
        let v = json!({"n": 2.5, "i": 3, "s": "he\"llo", "e": json!([]), "l": json!([1, 2])});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"n\": 2.5"));
        assert!(s.contains("\"i\": 3"));
        assert!(s.contains("\\\"llo"));
        assert!(s.contains("\"e\": []"));
    }
}
