//! Offline shim for `serde_derive`.
//!
//! The build environment has no crates.io access, so this crate provides
//! no-op `Serialize` / `Deserialize` derives. The workspace only uses the
//! derives as annotations (nothing serializes the core types through serde),
//! so expanding to nothing is sufficient and keeps every `#[derive(...)]`
//! in the source compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
