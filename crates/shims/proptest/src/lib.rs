//! Offline shim for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) expanding each property into a `#[test]` that samples its
//!   strategies `cases` times,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * integer-range strategies (`1usize..6`) and [`bool::ANY`].
//!
//! Sampling is deterministic (a fixed-seed xorshift generator, advanced per
//! case) so failures are reproducible across runs. There is no shrinking:
//! a failing case panics with the sampled inputs in the message instead.

pub mod strategy {
    /// Minimal deterministic RNG (xorshift64*), one per test function.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            // Only the all-zero state is degenerate; remap it alone instead
            // of masking bits (which would collapse adjacent seeds).
            TestRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// A source of random values of one type. The associated value must be
    /// `Debug` so failing cases can be reported.
    pub trait Strategy {
        type Value: std::fmt::Debug;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            })*
        };
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i32, i64);
}

pub mod bool {
    use super::strategy::{Strategy, TestRng};

    /// Strategy producing `true` / `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical `proptest::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Per-property configuration. Only `cases` is consulted by the shim.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Strategy, TestRng};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Expand properties into `#[test]` functions that sample each strategy
/// `cases` times. On failure the sampled inputs are printed via the panic
/// message of an outer assertion.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Seed differs per property so distinct tests explore
                // different parts of the space, but is fixed across runs.
                let seed = {
                    let name = stringify!($name);
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    h
                };
                let mut rng = $crate::strategy::TestRng::new(seed);
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case} failed with inputs: {:?}",
                            ($(&$pat,)*)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}
