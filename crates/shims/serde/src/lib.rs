//! Offline shim for `serde`.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` compile without crates.io access.
//! Marker traits of the same names live alongside the macros (macros and
//! traits occupy different namespaces, exactly as in real serde).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
