//! Offline shim for `rand`.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over half-open integer ranges — the only surface the
//! workload generators use. The generator is xorshift64*, which is more than
//! adequate for deterministic test-data synthesis.

/// Construct a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample values from a generator.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open integer range.
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

/// Integer types `gen_range` can sample.
pub trait RangeSample: Sized {
    fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {
        $(impl RangeSample for $t {
            fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        })*
    };
}

impl_range_sample!(usize, u8, u16, u32, u64, i32, i64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xorshift64* generator standing in for rand's `StdRng`.
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Injective in the seed (avoids collapsing adjacent seeds), with
            // a single remap away from the all-zero fixed point.
            let state = seed ^ 0x9E37_79B9_7F4A_7C15;
            StdRng { state: if state == 0 { 0x9E37_79B9_7F4A_7C15 } else { state } }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn adjacent_seeds_produce_distinct_streams() {
        let mut firsts: Vec<u64> = (0..8)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(s);
                rng.next_u64()
            })
            .collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8, "adjacent seeds must not collapse to one state");
    }

    #[test]
    fn seeded_generators_are_deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(3usize..17);
            assert_eq!(x, b.gen_range(3usize..17));
            assert!((3..17).contains(&x));
        }
    }
}
