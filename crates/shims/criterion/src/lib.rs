//! Offline shim for `criterion`.
//!
//! Implements the subset of the Criterion API the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` and `black_box` —
//! with a simple wall-clock harness: each benchmark is warmed up once and
//! then timed over `sample_size` batches, reporting the per-iteration mean
//! and minimum. No statistics, plotting or CLI beyond ignoring Cargo's
//! `--bench` flag.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the timed region.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &P),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, id: String, f: F) {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        if bencher.samples.is_empty() {
            println!("{full_id:<56} (no samples)");
            return;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{full_id:<56} mean {:>12.3?}   min {:>12.3?}   ({} samples)",
            mean,
            min,
            bencher.samples.len()
        );
        self.criterion.benchmarks_run += 1;
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- {name} --");
        BenchmarkGroup { name: name.to_string(), criterion: self, sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut g = BenchmarkGroup { name: String::new(), criterion: self, sample_size: 10 };
        g.run(id.to_string(), f);
        self
    }
}

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filter arguments); this
            // harness runs everything unconditionally.
            $( $group(); )+
        }
    };
}
