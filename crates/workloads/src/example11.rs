//! The running healthcare scenario of Example 1.1.
//!
//! Proprietary storage: two relational tables `patientDiag(name, diag)` and
//! `patientDrug(name, drug, usage)`, a native XML document `catalog.xml`
//! (drug → price, notes), plus redundant tuning storage: the `drugPrice`
//! table (LAV view of catalog.xml) and the cached document `cacheEntry.xml`
//! (result of a previously answered query over the published data).
//!
//! Published (public) schema: `case.xml` (the CaseMap GAV view joining the
//! patient tables and hiding the patient name) and `catalog.xml` itself
//! (identity IdMap).

use mars::{Mars, MarsOptions, SchemaCorrespondence};
use mars_grex::ViewDef;
use mars_storage::{materialize_view, RelationalDatabase, XmlStore};
use mars_xml::{parse_document, parse_path};
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm};

/// Names of the documents/tables of the scenario.
pub mod names {
    /// Published case document (virtual, GAV).
    pub const CASE: &str = "case.xml";
    /// Drug catalog (both proprietary and published through IdMap).
    pub const CATALOG: &str = "catalog.xml";
    /// Cached query result (LAV).
    pub const CACHE: &str = "cacheEntry.xml";
    /// Redundant relational price table (LAV).
    pub const DRUG_PRICE: &str = "drugPrice";
    /// Proprietary diagnosis table.
    pub const PATIENT_DIAG: &str = "patientDiag";
    /// Proprietary drug-usage table.
    pub const PATIENT_DRUG: &str = "patientDrug";
}

/// CaseMap: publish the join of the patient tables (projecting the name away)
/// as `case.xml` with one `case` element per (diagnosis, drug, usage) triple.
pub fn case_map() -> ViewDef {
    let body = XBindQuery::new("CaseMapBody")
        .with_head(&["diag", "drug", "usage"])
        .with_atom(XBindAtom::Relational {
            relation: names::PATIENT_DIAG.to_string(),
            args: vec![XBindTerm::var("name"), XBindTerm::var("diag")],
        })
        .with_atom(XBindAtom::Relational {
            relation: names::PATIENT_DRUG.to_string(),
            args: vec![XBindTerm::var("name"), XBindTerm::var("drug"), XBindTerm::var("usage")],
        });
    ViewDef::xml_flat("CaseMap", body, names::CASE, "case", &["diagnosis", "drug", "usage"])
}

/// DrugPriceMap: store the drug → price association of catalog.xml
/// redundantly in the relational table `drugPrice` (LAV, STORED-style).
pub fn drug_price_map() -> ViewDef {
    let body = XBindQuery::new("DrugPriceBody")
        .with_head(&["drug", "price"])
        .with_atom(XBindAtom::AbsolutePath {
            document: names::CATALOG.to_string(),
            path: parse_path("//drug").unwrap(),
            var: "d".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./name/text()").unwrap(),
            source: "d".to_string(),
            var: "drug".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./price/text()").unwrap(),
            source: "d".to_string(),
            var: "price".to_string(),
        });
    ViewDef::relational(names::DRUG_PRICE, body)
}

/// PrevQ / cacheEntry.xml: a previously answered query caching the
/// diagnosis → drug association from case.xml (LAV view of the public data).
pub fn cache_map() -> ViewDef {
    let body = XBindQuery::new("PrevQBody")
        .with_head(&["diag", "drug"])
        .with_atom(XBindAtom::AbsolutePath {
            document: names::CASE.to_string(),
            path: parse_path("//case").unwrap(),
            var: "c".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./diagnosis/text()").unwrap(),
            source: "c".to_string(),
            var: "diag".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./drug/text()").unwrap(),
            source: "c".to_string(),
            var: "drug".to_string(),
        });
    ViewDef::xml_flat("PrevQ", body, names::CACHE, "entry", &["diagnosis", "drug"])
}

/// The full schema correspondence of Example 1.1 (two GAV + two LAV views).
pub fn correspondence() -> SchemaCorrespondence {
    SchemaCorrespondence {
        public_documents: vec![names::CASE.to_string(), names::CATALOG.to_string()],
        gav_views: vec![case_map()],
        lav_views: vec![drug_price_map(), cache_map()],
        xics: Vec::new(),
        relational_constraints: Vec::new(),
        proprietary_relations: vec![
            names::PATIENT_DIAG.to_string(),
            names::PATIENT_DRUG.to_string(),
        ],
        proprietary_documents: vec![names::CATALOG.to_string()],
        specializations: Vec::new(),
    }
}

/// The client query of Example 1.1: the association between each diagnosis
/// and the corresponding drug's price, posed against the published documents.
pub fn client_query() -> XBindQuery {
    XBindQuery::new("DiagPrice")
        .with_head(&["diag", "price"])
        .with_atom(XBindAtom::AbsolutePath {
            document: names::CASE.to_string(),
            path: parse_path("//case").unwrap(),
            var: "c".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./diagnosis/text()").unwrap(),
            source: "c".to_string(),
            var: "diag".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./drug/text()").unwrap(),
            source: "c".to_string(),
            var: "drug".to_string(),
        })
        .with_atom(XBindAtom::AbsolutePath {
            document: names::CATALOG.to_string(),
            path: parse_path("//drug").unwrap(),
            var: "d".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./name/text()").unwrap(),
            source: "d".to_string(),
            var: "drug2".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./price/text()").unwrap(),
            source: "d".to_string(),
            var: "price".to_string(),
        })
        .with_atom(XBindAtom::Eq(XBindTerm::var("drug"), XBindTerm::var("drug2")))
}

/// The MARS system for the scenario.
pub fn mars() -> Mars {
    Mars::with_options(correspondence(), MarsOptions::default())
}

/// Populate concrete storage: patient tables, catalog.xml, and the redundant
/// views (drugPrice table, case.xml and cacheEntry.xml documents).
pub fn populate(patients: usize) -> (XmlStore, RelationalDatabase) {
    let mut db = RelationalDatabase::new();
    let drugs = ["aspirin", "inhaler", "insulin", "statin"];
    let diags = ["flu", "asthma", "diabetes", "cholesterol"];
    for p in 0..patients {
        let name = format!("patient{p}");
        db.insert_strs(names::PATIENT_DIAG, &[&name, diags[p % diags.len()]]);
        db.insert_strs(names::PATIENT_DRUG, &[&name, drugs[p % drugs.len()], "daily"]);
    }
    let mut catalog = String::from("<catalog>");
    for (i, d) in drugs.iter().enumerate() {
        catalog.push_str(&format!(
            "<drug><name>{d}</name><price>{}</price><notes><note>generic ok</note></notes></drug>",
            3 + i
        ));
    }
    catalog.push_str("</catalog>");
    let mut xml = XmlStore::new();
    xml.add_document(parse_document(names::CATALOG, &catalog).unwrap());

    // Materialize CaseMap (publishing) by joining the tables directly.
    let mut case_doc = mars_xml::Document::new(names::CASE);
    let root = case_doc.create_root("cases");
    let q = mars_cq::ConjunctiveQuery::new("casejoin")
        .with_head(vec![
            mars_cq::Term::var("diag"),
            mars_cq::Term::var("drug"),
            mars_cq::Term::var("usage"),
        ])
        .with_body(vec![
            mars_cq::Atom::named(
                names::PATIENT_DIAG,
                vec![mars_cq::Term::var("n"), mars_cq::Term::var("diag")],
            ),
            mars_cq::Atom::named(
                names::PATIENT_DRUG,
                vec![
                    mars_cq::Term::var("n"),
                    mars_cq::Term::var("drug"),
                    mars_cq::Term::var("usage"),
                ],
            ),
        ]);
    for row in db.query_strings(&q) {
        let case = case_doc.add_element(root, "case");
        case_doc.add_leaf(case, "diagnosis", &row[0]);
        case_doc.add_leaf(case, "drug", &row[1]);
        case_doc.add_leaf(case, "usage", &row[2]);
    }
    xml.add_document(case_doc);

    // Materialize the LAV tuning views.
    materialize_view(&drug_price_map(), &mut xml, &mut db)
        .expect("DrugPriceMap navigates the freshly added catalog");
    materialize_view(&cache_map(), &mut xml, &mut db)
        .expect("cacheEntry view navigates the freshly added documents");
    // Ground GReX encodings of the proprietary catalog and the cached
    // document: reformulations navigate them with `tag#`/`child#`/... atoms,
    // which the relational executor can only satisfy from loaded facts.
    for name in [names::CATALOG, names::CACHE] {
        if let Some(doc) = xml.document(name) {
            db.load_facts(&mars_grex::encode_document(doc));
        }
    }
    (xml, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::Predicate;

    #[test]
    fn storage_is_mixed_and_redundant() {
        let (xml, db) = populate(8);
        assert!(xml.document(names::CATALOG).is_some());
        assert!(xml.document(names::CASE).is_some());
        assert!(xml.document(names::CACHE).is_some());
        assert_eq!(db.cardinality(names::PATIENT_DIAG), 8);
        assert_eq!(db.cardinality(names::DRUG_PRICE), 4);
    }

    #[test]
    fn client_query_is_reformulated_to_proprietary_storage() {
        let system = mars();
        let block = system.reformulate_xbind(&client_query());
        assert!(block.result.has_reformulation(), "Example 1.1 must be reformulable");
        let best = block.result.best_or_initial().unwrap();
        // The reformulation must avoid the virtual public document case.xml:
        // every atom is over proprietary storage.
        let public_case = mars_grex::GrexSchema::new(names::CASE);
        assert!(best.body.iter().all(|a| !public_case.owns(a.predicate)));
        // It accesses proprietary storage only: the cached diagnosis-drug
        // association (cacheEntry.xml), the drugPrice table / catalog.xml, or
        // the patient tables themselves — the three alternatives Example 1.1
        // lists. (Which one wins depends on the cost model.)
        let cache = mars_grex::GrexSchema::new(names::CACHE);
        let catalog = mars_grex::GrexSchema::new(names::CATALOG);
        let uses_proprietary = best.body.iter().any(|a| {
            a.predicate == Predicate::new(names::PATIENT_DIAG)
                || a.predicate == Predicate::new(names::PATIENT_DRUG)
                || a.predicate == Predicate::new(names::DRUG_PRICE)
                || cache.owns(a.predicate)
                || catalog.owns(a.predicate)
        });
        assert!(uses_proprietary, "reformulation must access proprietary storage: {best}");
    }

    #[test]
    fn multiple_reformulations_exist_due_to_redundancy() {
        let system = Mars::with_options(correspondence(), MarsOptions::default().exhaustive());
        let block = system.reformulate_xbind(&client_query());
        // Redundant storage admits several alternatives (catalog.xml vs the
        // drugPrice table vs the cacheEntry cache); the exhaustive backchase
        // must surface at least one minimal reformulation and record the
        // redundancy in the universal plan.
        assert!(!block.result.minimal.is_empty());
        assert!(
            block.result.stats.universal_plan_atoms > block.compiled.body.len(),
            "the chase must have brought redundant storage into the universal plan"
        );
    }
}
