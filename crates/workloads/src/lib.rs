//! # mars-workloads — workload and configuration generators
//!
//! Generators for every configuration used in the paper's evaluation:
//!
//! * [`star`] — the synthetic **XML star queries** of Section 4.1 (public
//!   schema with a hub `R` and `NC` corners `S_i`, `NV` redundantly
//!   materialized star views, key/foreign-key constraints), used by the
//!   Figure 5 scalability experiment and the Figure 8 specialization
//!   experiment;
//! * [`stress`] — the Section 3 chase stress test (`//a/b/c/d/e/f/g/h/i/j`
//!   against TIX);
//! * [`example11`] — the running healthcare scenario of Example 1.1
//!   (patient tables, catalog.xml, CaseMap/IdMap GAV views, DrugPriceMap and
//!   cacheEntry LAV views);
//! * [`xmark`] — a scaled-down XMark-like auction scenario with realistic
//!   queries and redundant views (Section 4.2's feasibility experiment).
//!
//! For robustness testing, [`chaos`] provides a deterministic fault
//! injector and an adversarial (cache-defeating) arrival stream used by the
//! `experiments --serve --chaos` harness.
//!
//! For the backend router, [`scenarios`] provides the 12-point scenario
//! matrix (chain/snowflake schema × uniform/skewed data × redundancy 0–2)
//! behind the cross-backend differential suite and the
//! `experiments --route` ablation.

pub mod chaos;
pub mod example11;
pub mod scenarios;
pub mod star;
pub mod stress;
pub mod xmark;
