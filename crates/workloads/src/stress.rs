//! The Section 3 chase stress test: `//a/b/c/d/e/f/g/h/i/j`.
//!
//! The XPath compiles to a conjunctive query with 20 atoms (1 `desc`,
//! 9 `child`, 10 `tag`); chasing it with TIX produced >12 h of work in the
//! original C&B prototype, 2.6 s with the join-tree implementation and 640 ms
//! with the closure shortcut. The generator is parametric in the path length
//! so the benches can sweep it.

use mars_cq::{ConjunctiveQuery, Ded, Term};
use mars_grex::{compile_xbind, tix_constraints, CompileContext, GrexSchema};
use mars_xml::parse_path;
use mars_xquery::{XBindAtom, XBindQuery};

/// The document the stress path navigates.
pub const STRESS_DOC: &str = "stress.xml";

/// The stress XPath of length `depth` (depth = 10 reproduces the paper's
/// `//a/b/c/d/e/f/g/h/i/j`).
pub fn stress_path(depth: usize) -> String {
    let mut s = String::new();
    for i in 0..depth {
        let tag = (b'a' + (i % 26) as u8) as char;
        if i == 0 {
            s.push_str(&format!("//{tag}"));
        } else {
            s.push_str(&format!("/{tag}"));
        }
    }
    s
}

/// The stress XBind query.
pub fn stress_query(depth: usize) -> XBindQuery {
    XBindQuery::new("Stress").with_head(&["x"]).with_atom(XBindAtom::AbsolutePath {
        document: STRESS_DOC.to_string(),
        path: parse_path(&stress_path(depth)).unwrap(),
        var: "x".to_string(),
    })
}

/// The compiled stress query (the 20-atom conjunctive query for depth 10).
pub fn compiled_stress_query(depth: usize) -> ConjunctiveQuery {
    let mut ctx = CompileContext::new();
    compile_xbind(&mut ctx, &stress_query(depth))
}

/// The TIX constraints the stress query is chased with.
pub fn stress_constraints() -> Vec<Ded> {
    tix_constraints(&GrexSchema::new(STRESS_DOC))
}

/// Sanity helper: the expected atom count of the compiled query
/// (1 root + 1 desc + (depth−1) child + depth tag).
pub fn expected_compiled_atoms(depth: usize) -> usize {
    1 + 1 + (depth - 1) + depth
}

#[allow(unused)]
fn _t(n: &str) -> Term {
    Term::var(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_chase::{chase_to_universal_plan, ChaseOptions};

    #[test]
    fn compiled_query_has_the_papers_shape() {
        // Depth 10: 20 atoms in the paper's counting (9 child, 1 desc, 10 tag)
        // plus the explicit root atom of our encoding.
        let q = compiled_stress_query(10);
        assert_eq!(q.body.len(), expected_compiled_atoms(10));
        let s = GrexSchema::new(STRESS_DOC);
        assert_eq!(q.body.iter().filter(|a| a.predicate == s.child()).count(), 9);
        assert_eq!(q.body.iter().filter(|a| a.predicate == s.desc()).count(), 1);
        assert_eq!(q.body.iter().filter(|a| a.predicate == s.tag()).count(), 10);
        assert_eq!(stress_path(3), "//a/b/c");
    }

    #[test]
    fn chase_with_and_without_shortcut_agree_on_small_depths() {
        let q = compiled_stress_query(5);
        let tix = stress_constraints();
        let with = chase_to_universal_plan(&q, &tix, &ChaseOptions::default());
        let without = chase_to_universal_plan(&q, &tix, &ChaseOptions::without_shortcut());
        assert!(with.stats.completed && without.stats.completed);
        assert_eq!(with.primary().body.len(), without.primary().body.len());
        // The universal plan is much larger than the input (closure + el/id facts).
        assert!(with.primary().body.len() > 3 * q.body.len());
    }
}
