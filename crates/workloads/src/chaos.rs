//! Fault injection and adversarial arrivals for chaos-testing the resident
//! service (`experiments --serve --chaos`).
//!
//! Two ingredients:
//!
//! * [`FaultInjector`] — a deterministic [`FaultHook`] implementation that
//!   injects a panic every `panic_period`-th cold reformulation and an
//!   artificial stall every `stall_period`-th cache lookup, counting what it
//!   injected so a harness can assert the faults were actually exercised;
//! * [`adversarial_request`] — a stream of *divergent* star-query shapes
//!   (varying corner subsets and duplicated navigation) that defeats the
//!   shape-keyed plan cache on purpose, forcing the service down the cold
//!   chase & backchase path where budgets and panics bite.

use crate::star::StarConfig;
use mars::FaultHook;
use mars_xml::parse_path;
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic fault injection at the service's named pipeline points
/// (see the module docs). Periods of `0` disable that fault class.
#[derive(Debug)]
pub struct FaultInjector {
    /// Panic on every `panic_period`-th `"reformulate"` firing (0 = never).
    pub panic_period: usize,
    /// Stall on every `stall_period`-th `"lookup"` firing (0 = never).
    pub stall_period: usize,
    /// Duration of one injected stall.
    pub stall: Duration,
    lookups: AtomicUsize,
    reformulations: AtomicUsize,
    panics: AtomicUsize,
    stalls: AtomicUsize,
}

impl FaultInjector {
    /// A new injector with the given periods and stall length.
    pub fn new(panic_period: usize, stall_period: usize, stall: Duration) -> FaultInjector {
        FaultInjector {
            panic_period,
            stall_period,
            stall,
            lookups: AtomicUsize::new(0),
            reformulations: AtomicUsize::new(0),
            panics: AtomicUsize::new(0),
            stalls: AtomicUsize::new(0),
        }
    }

    /// The pipeline-point callback: count the firing and inject the fault
    /// when its period divides the count. Panics escape from here on
    /// purpose — the service's `catch_unwind` is what is under test.
    pub fn fire(&self, point: &str) {
        match point {
            "lookup" => {
                let n = self.lookups.fetch_add(1, Ordering::SeqCst) + 1;
                if self.stall_period > 0 && n.is_multiple_of(self.stall_period) {
                    self.stalls.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(self.stall);
                }
            }
            "reformulate" => {
                let n = self.reformulations.fetch_add(1, Ordering::SeqCst) + 1;
                if self.panic_period > 0 && n.is_multiple_of(self.panic_period) {
                    self.panics.fetch_add(1, Ordering::SeqCst);
                    panic!("injected chaos panic (reformulation #{n})");
                }
            }
            _ => {}
        }
    }

    /// Package the injector as a [`FaultHook`] for
    /// `MarsService::with_fault_hook`.
    pub fn hook(self: &Arc<Self>) -> FaultHook {
        let inj = Arc::clone(self);
        Arc::new(move |point: &str| inj.fire(point))
    }

    /// Panics injected so far.
    pub fn injected_panics(&self) -> usize {
        self.panics.load(Ordering::SeqCst)
    }

    /// Stalls injected so far.
    pub fn injected_stalls(&self) -> usize {
        self.stalls.load(Ordering::SeqCst)
    }
}

/// The `i`-th adversarial arrival against a star configuration: a star query
/// over a *varying subset* of the corners (width cycles `1..=NC`), with a
/// unique key constant, and — on every third request — a duplicated hub
/// navigation that widens the universal plan. Consecutive widths differ, so
/// consecutive arrivals have different shape keys and the plan cache cannot
/// absorb the stream.
pub fn adversarial_request(cfg: &StarConfig, i: usize) -> XBindQuery {
    let doc = cfg.document();
    let width = 1 + (i % cfg.nc.max(1));
    let mut head: Vec<String> = vec!["k".to_string()];
    // One fixed name: the shape key covers the query name, and the stream
    // should diverge on *structure* (width, duplication), not on labels —
    // recurrences of a structure are legitimate warm hits.
    let mut q = XBindQuery::new("Chaos")
        .with_atom(XBindAtom::AbsolutePath {
            document: doc.clone(),
            path: parse_path("//R").unwrap(),
            var: "r".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./K/text()").unwrap(),
            source: "r".to_string(),
            var: "k".to_string(),
        });
    for c in 1..=width {
        q = q
            .with_atom(XBindAtom::RelativePath {
                path: parse_path(&format!("./A{c}/text()")).unwrap(),
                source: "r".to_string(),
                var: format!("a{c}"),
            })
            .with_atom(XBindAtom::AbsolutePath {
                document: doc.clone(),
                path: parse_path(&format!("//S{c}")).unwrap(),
                var: format!("s{c}"),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./A/text()").unwrap(),
                source: format!("s{c}"),
                var: format!("sa{c}"),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./B/text()").unwrap(),
                source: format!("s{c}"),
                var: format!("b{c}"),
            })
            .with_atom(XBindAtom::Eq(
                XBindTerm::var(&format!("a{c}")),
                XBindTerm::var(&format!("sa{c}")),
            ));
        head.push(format!("b{c}"));
    }
    if i.is_multiple_of(3) {
        // Duplicated hub navigation: sound (joins the same K), but widens
        // the universal plan the backchase has to minimize.
        q = q
            .with_atom(XBindAtom::AbsolutePath {
                document: doc,
                path: parse_path("//R").unwrap(),
                var: "r2".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./K/text()").unwrap(),
                source: "r2".to_string(),
                var: "k".to_string(),
            });
    }
    // A unique key constant per arrival: parameterized out of the shape,
    // so it exercises re-substitution, not the cache key.
    q = q.with_atom(XBindAtom::Eq(XBindTerm::var("k"), XBindTerm::str(&format!("key{i}"))));
    q.head = head;
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xquery::shape_of;
    use std::collections::HashSet;

    #[test]
    fn injector_fires_on_its_periods() {
        let inj = Arc::new(FaultInjector::new(3, 2, Duration::from_millis(1)));
        let hook = inj.hook();
        for _ in 0..4 {
            hook("lookup");
        }
        assert_eq!(inj.injected_stalls(), 2, "every 2nd lookup stalls");
        hook("reformulate");
        hook("reformulate");
        assert_eq!(inj.injected_panics(), 0);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook("reformulate")));
        assert!(boom.is_err(), "every 3rd reformulation panics");
        assert_eq!(inj.injected_panics(), 1);
        hook("unknown-point"); // ignored, not a fault site
    }

    #[test]
    fn adversarial_requests_are_safe_and_shape_divergent() {
        let cfg = StarConfig::figure5(3);
        let reserved = HashSet::new();
        let mut keys = HashSet::new();
        for i in 0..6 {
            let q = adversarial_request(&cfg, i);
            assert!(q.is_safe(), "request {i} must be reformulable");
            keys.insert(shape_of(&q, &reserved).key);
        }
        assert!(keys.len() >= 3, "the stream must defeat the shape cache, got {keys:?}");
        // Constants are parameterized out: same width + same duplication
        // phase = same shape, different key constant.
        let a = shape_of(&adversarial_request(&cfg, 0), &reserved);
        let b = shape_of(&adversarial_request(&cfg, 6), &reserved);
        assert_eq!(a.key, b.key);
        assert_ne!(a.constants, b.constants);
    }
}
