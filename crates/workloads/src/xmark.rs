//! A scaled-down XMark-like publishing scenario (Section 4.2).
//!
//! The public document `auction.xml` describes an auction site (people,
//! open auctions with bids, items). The proprietary storage adds redundant
//! relational views (people's names, item/category pairs, bid summaries) in
//! the spirit of the paper's XMark-based configuration. A small suite of
//! queries exercising different XQuery features (descendant navigation,
//! joins across entities, value predicates) is reformulated by MARS; the
//! experiment reports the average reformulation time (≈350 ms in the paper).

use mars::{Mars, MarsOptions, SchemaCorrespondence};
use mars_grex::ViewDef;
use mars_specialize::SpecializationMapping;
use mars_storage::{materialize_view, RelationalDatabase, XmlStore};
use mars_xml::{parse_path, Document};
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Name of the published auction document.
pub const AUCTION: &str = "auction.xml";

/// Generate an XMark-like auction document with the given number of people,
/// items and open auctions.
pub fn generate_document(people: usize, items: usize, auctions: usize, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut doc = Document::new(AUCTION);
    let root = doc.create_root("site");
    let people_el = doc.add_element(root, "people");
    for p in 0..people {
        let person = doc.add_element(people_el, "person");
        doc.set_attribute(person, "id", &format!("person{p}"));
        doc.add_leaf(person, "name", &format!("Name{p}"));
        doc.add_leaf(person, "city", &format!("City{}", p % 7));
    }
    let items_el = doc.add_element(root, "items");
    for i in 0..items {
        let item = doc.add_element(items_el, "item");
        doc.set_attribute(item, "id", &format!("item{i}"));
        doc.add_leaf(item, "name", &format!("Item{i}"));
        doc.add_leaf(item, "category", &format!("cat{}", i % 5));
    }
    let auctions_el = doc.add_element(root, "open_auctions");
    for a in 0..auctions {
        let auction = doc.add_element(auctions_el, "open_auction");
        doc.add_leaf(auction, "itemref", &format!("item{}", a % items.max(1)));
        doc.add_leaf(auction, "seller", &format!("person{}", rng.gen_range(0..people.max(1))));
        doc.add_leaf(auction, "current", &format!("{}", 10 + rng.gen_range(0..90)));
    }
    doc
}

fn person_view() -> ViewDef {
    let body = XBindQuery::new("PersonCityBody")
        .with_head(&["pid", "name", "city"])
        .with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//person").unwrap(),
            var: "p".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./@id").unwrap(),
            source: "p".to_string(),
            var: "pid".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./name/text()").unwrap(),
            source: "p".to_string(),
            var: "name".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./city/text()").unwrap(),
            source: "p".to_string(),
            var: "city".to_string(),
        });
    ViewDef::relational("personCity", body)
}

fn item_view() -> ViewDef {
    let body = XBindQuery::new("ItemCategoryBody")
        .with_head(&["iid", "iname", "cat"])
        .with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//item").unwrap(),
            var: "i".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./@id").unwrap(),
            source: "i".to_string(),
            var: "iid".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./name/text()").unwrap(),
            source: "i".to_string(),
            var: "iname".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./category/text()").unwrap(),
            source: "i".to_string(),
            var: "cat".to_string(),
        });
    ViewDef::relational("itemCategory", body)
}

fn auction_view() -> ViewDef {
    let body = XBindQuery::new("AuctionBody")
        .with_head(&["itemref", "seller", "current"])
        .with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//open_auction").unwrap(),
            var: "a".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./itemref/text()").unwrap(),
            source: "a".to_string(),
            var: "itemref".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./seller/text()").unwrap(),
            source: "a".to_string(),
            var: "seller".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./current/text()").unwrap(),
            source: "a".to_string(),
            var: "current".to_string(),
        });
    ViewDef::relational("auctionSummary", body)
}

/// Specialization mappings for the regular parts of the document.
pub fn specializations() -> Vec<SpecializationMapping> {
    vec![
        SpecializationMapping::new(
            "Person",
            AUCTION,
            "//person",
            &[("name", "./name/text()"), ("city", "./city/text()")],
        ),
        SpecializationMapping::new(
            "Item",
            AUCTION,
            "//item",
            &[("name", "./name/text()"), ("category", "./category/text()")],
        ),
        SpecializationMapping::new(
            "OpenAuction",
            AUCTION,
            "//open_auction",
            &[
                ("itemref", "./itemref/text()"),
                ("seller", "./seller/text()"),
                ("current", "./current/text()"),
            ],
        ),
    ]
}

/// The schema correspondence: the auction document is published as-is (it is
/// proprietary and public at the same time), with three redundant relational
/// views for tuning.
pub fn correspondence() -> SchemaCorrespondence {
    SchemaCorrespondence {
        public_documents: vec![AUCTION.to_string()],
        gav_views: Vec::new(),
        lav_views: vec![person_view(), item_view(), auction_view()],
        xics: Vec::new(),
        relational_constraints: Vec::new(),
        proprietary_relations: Vec::new(),
        proprietary_documents: vec![AUCTION.to_string()],
        specializations: specializations(),
    }
}

/// The query suite (each query is one decorrelated navigation block).
pub fn query_suite() -> Vec<XBindQuery> {
    let person_names = XBindQuery::new("Q1_person_names")
        .with_head(&["n"])
        .with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//person").unwrap(),
            var: "p".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./name/text()").unwrap(),
            source: "p".to_string(),
            var: "n".to_string(),
        });

    let sellers_by_city = XBindQuery::new("Q2_sellers_with_city")
        .with_head(&["n", "cur"])
        .with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//person").unwrap(),
            var: "p".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./@id").unwrap(),
            source: "p".to_string(),
            var: "pid".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./name/text()").unwrap(),
            source: "p".to_string(),
            var: "n".to_string(),
        })
        .with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//open_auction").unwrap(),
            var: "a".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./seller/text()").unwrap(),
            source: "a".to_string(),
            var: "s".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./current/text()").unwrap(),
            source: "a".to_string(),
            var: "cur".to_string(),
        })
        .with_atom(XBindAtom::Eq(XBindTerm::var("pid"), XBindTerm::var("s")));

    let auctioned_items = XBindQuery::new("Q3_auctioned_item_categories")
        .with_head(&["iname", "cat"])
        .with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//open_auction").unwrap(),
            var: "a".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./itemref/text()").unwrap(),
            source: "a".to_string(),
            var: "ir".to_string(),
        })
        .with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//item").unwrap(),
            var: "i".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./@id").unwrap(),
            source: "i".to_string(),
            var: "iid".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./name/text()").unwrap(),
            source: "i".to_string(),
            var: "iname".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./category/text()").unwrap(),
            source: "i".to_string(),
            var: "cat".to_string(),
        })
        .with_atom(XBindAtom::Eq(XBindTerm::var("ir"), XBindTerm::var("iid")));

    let item_names =
        XBindQuery::new("Q4_item_names").with_head(&["iname"]).with_atom(XBindAtom::AbsolutePath {
            document: AUCTION.to_string(),
            path: parse_path("//item/name/text()").unwrap(),
            var: "iname".to_string(),
        });

    vec![person_names, sellers_by_city, auctioned_items, item_names]
}

/// Build MARS for the scenario (specialization on by default, as the document
/// is highly regular).
pub fn mars(use_specialization: bool) -> Mars {
    let options =
        if use_specialization { MarsOptions::specialized() } else { MarsOptions::default() };
    Mars::with_options(correspondence(), options)
}

/// Populate the stores with a generated document and the materialized views.
pub fn populate(people: usize, items: usize, auctions: usize) -> (XmlStore, RelationalDatabase) {
    let mut xml = XmlStore::new();
    xml.add_document(generate_document(people, items, auctions, 42));
    let mut db = RelationalDatabase::new();
    for v in [person_view(), item_view(), auction_view()] {
        materialize_view(&v, &mut xml, &mut db)
            .expect("xmark views navigate the freshly added document");
    }
    for m in specializations() {
        materialize_view(&m.definition_view(), &mut xml, &mut db)
            .expect("xmark specializations navigate the freshly added document");
    }
    // The auction document is proprietary and published at once; loading its
    // ground GReX encoding makes navigation-only reformulations executable
    // on the relational side too.
    if let Some(doc) = xml.document(AUCTION) {
        db.load_facts(&mars_grex::encode_document(doc));
    }
    (xml, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_generation_and_views() {
        let (xml, db) = populate(10, 6, 8);
        let doc = xml.document(AUCTION).unwrap();
        assert!(doc.element_count() > 10 + 6 + 8);
        assert_eq!(db.cardinality("personCity"), 10);
        assert_eq!(db.cardinality("itemCategory"), 6);
        assert_eq!(db.cardinality("auctionSummary"), 8);
    }

    #[test]
    fn every_suite_query_gets_a_reformulation() {
        let system = mars(true);
        for q in query_suite() {
            let block = system.reformulate_xbind(&q);
            assert!(block.result.has_reformulation(), "query {} must be reformulable", q.name);
        }
    }
}
