//! The backend-routing scenario matrix.
//!
//! Twelve named configurations — schema shape × data distribution ×
//! redundancy level — exercising both sides of the backend router:
//!
//! * **schema**: a three-link [`Chain`](SchemaShape::Chain) (`L1.P → L2.K`,
//!   `L2.P → L3.K`, deep navigation) and a three-corner
//!   [`Snowflake`](SchemaShape::Snowflake) (the Section 4.1 star hub);
//! * **data**: [`Uniform`](DataShape::Uniform) pointers and
//!   [`Skewed`](DataShape::Skewed) ones (80 % of the foreign keys hit one
//!   hot row), which separates the statistics the two backends see;
//! * **redundancy** 0–2: how many LAV views are materialized. At redundancy
//!   0 the best reformulation is pure navigation, so the router should pick
//!   the XML backend; at redundancy ≥ 1 the query reformulates onto
//!   materialized relations, so it should pick the relational backend. The
//!   `experiments --route auto` smoke gate checks exactly this.
//!
//! [`Scenario::populate`] loads the generated document into the XML store,
//! materializes the redundant views, **and** loads the document's GReX
//! encoding into the relational database — the precondition for executing
//! navigation atoms relationally, which is what makes every route of the
//! differential suite comparable byte for byte.

use crate::star::StarConfig;
use mars::{Mars, MarsOptions, SchemaCorrespondence};
use mars_grex::{encode_document, ViewDef};
use mars_specialize::SpecializationMapping;
use mars_storage::{materialize_view, RelationalDatabase, XmlStore};
use mars_xml::{parse_path, Document};
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm, Xic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The public schema shape of a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemaShape {
    /// Three element kinds chained by foreign keys: `L1.P → L2.K → … → L3.B`.
    Chain,
    /// The Section 4.1 star: hub `R` with three corners `S1 … S3`.
    Snowflake,
}

impl SchemaShape {
    fn label(self) -> &'static str {
        match self {
            SchemaShape::Chain => "chain",
            SchemaShape::Snowflake => "snowflake",
        }
    }
}

/// How the generated data distributes its foreign keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataShape {
    /// Pointers drawn uniformly over the target keys.
    Uniform,
    /// 80 % of the pointers hit key 0 (one hot row).
    Skewed,
}

impl DataShape {
    fn label(self) -> &'static str {
        match self {
            DataShape::Uniform => "uniform",
            DataShape::Skewed => "skewed",
        }
    }

    fn pick(self, rng: &mut StdRng, n: usize) -> usize {
        match self {
            DataShape::Uniform => rng.gen_range(0..n),
            DataShape::Skewed => {
                if rng.gen_range(0..10) < 8 {
                    0
                } else {
                    rng.gen_range(0..n)
                }
            }
        }
    }
}

/// One point of the scenario matrix.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Public schema shape.
    pub schema: SchemaShape,
    /// Data distribution.
    pub data: DataShape,
    /// Number of materialized LAV views (0, 1 or 2).
    pub redundancy: usize,
}

impl Scenario {
    /// The full matrix: 2 schemas × 2 distributions × redundancy 0–2.
    pub fn matrix() -> Vec<Scenario> {
        let mut out = Vec::new();
        for schema in [SchemaShape::Chain, SchemaShape::Snowflake] {
            for data in [DataShape::Uniform, DataShape::Skewed] {
                for redundancy in 0..=2 {
                    out.push(Scenario { schema, data, redundancy });
                }
            }
        }
        out
    }

    /// Stable name, e.g. `chain-uniform-r0` (used in goldens and JSON).
    pub fn name(&self) -> String {
        format!("{}-{}-r{}", self.schema.label(), self.data.label(), self.redundancy)
    }

    /// Whether a redundant view backs (part of) the client query — the
    /// scenarios the router is expected to send to the relational backend.
    pub fn view_backed(&self) -> bool {
        self.redundancy > 0
    }

    /// Name of the scenario's public document.
    pub fn document(&self) -> String {
        match self.schema {
            SchemaShape::Chain => "chain.xml".to_string(),
            SchemaShape::Snowflake => self.star().document(),
        }
    }

    fn star(&self) -> StarConfig {
        StarConfig { nc: 3, nv: self.redundancy, proprietary_includes_document: true }
    }

    /// The client XBind query of the scenario.
    pub fn client_query(&self) -> XBindQuery {
        match self.schema {
            SchemaShape::Chain => chain_query(&self.document()),
            SchemaShape::Snowflake => self.star().client_query(),
        }
    }

    /// The client query compiled to pure GReX navigation — the query the
    /// XML backend runs natively. On view-backed scenarios the *best*
    /// reformulation is pure relational (XML-infeasible), so the forced-XML
    /// ablation in `experiments --route` falls back to this form; it returns
    /// the same rows (the reformulation is an equivalence under the
    /// scenario's constraints, and [`Scenario::populate`] materializes the
    /// views from the same document).
    pub fn navigation_query(&self) -> mars_cq::ConjunctiveQuery {
        let mut ctx = mars_grex::CompileContext::new();
        mars_grex::compile_xbind(&mut ctx, &self.client_query())
    }

    /// The redundant LAV views (the first `redundancy` links/corners).
    pub fn views(&self) -> Vec<ViewDef> {
        match self.schema {
            SchemaShape::Chain => {
                (1..=self.redundancy).map(|l| chain_view(&self.document(), l)).collect()
            }
            SchemaShape::Snowflake => (1..=self.redundancy).map(|l| self.star().view(l)).collect(),
        }
    }

    fn specializations(&self) -> Vec<SpecializationMapping> {
        match self.schema {
            SchemaShape::Chain => chain_specializations(&self.document()),
            SchemaShape::Snowflake => self.star().specializations(),
        }
    }

    /// The schema correspondence (document + views + keys, foreign keys and
    /// DTD constraints).
    ///
    /// At redundancy 0 there are no views to rewrite with, so the key and
    /// DTD constraints are omitted too: they could only inflate the chase
    /// (the seed measured ~12 s per r0 reformulation with them, against a
    /// universal plan the backchase then cannot shrink), and the intended
    /// best reformulation *is* the compiled navigation query.
    pub fn correspondence(&self) -> SchemaCorrespondence {
        let doc = self.document();
        if self.redundancy == 0 {
            return SchemaCorrespondence {
                public_documents: vec![doc.clone()],
                gav_views: Vec::new(),
                lav_views: Vec::new(),
                xics: Vec::new(),
                relational_constraints: Vec::new(),
                proprietary_relations: Vec::new(),
                proprietary_documents: vec![doc],
                specializations: Vec::new(),
            };
        }
        match self.schema {
            SchemaShape::Chain => SchemaCorrespondence {
                public_documents: vec![doc.clone()],
                gav_views: Vec::new(),
                lav_views: self.views(),
                xics: chain_constraints(&doc),
                relational_constraints: Vec::new(),
                proprietary_relations: Vec::new(),
                proprietary_documents: vec![doc],
                specializations: self.specializations(),
            },
            SchemaShape::Snowflake => self.star().correspondence(),
        }
    }

    /// The MARS system for this scenario.
    ///
    /// Redundancy 0 runs unspecialized, so the best reformulation stays pure
    /// navigation (the XML route's home turf); redundancy ≥ 1 runs
    /// specialized with `spec_replaces_navigation`, so the best reformulation
    /// executes over materialized relations (the relational route's).
    pub fn mars(&self) -> Mars {
        if self.redundancy == 0 {
            // No views and no constraints: the TIX built-ins could only
            // inflate the universal plan (≈100 atoms, seconds of backchase)
            // without enabling any rewriting — the intended best *is* the
            // compiled navigation query, so greedy minimization suffices
            // (subset enumeration over a 27–42 atom pure-navigation pool
            // takes ~12 s per scenario for an identical outcome).
            let mut options = MarsOptions::default().with_greedy_minimization();
            options.include_tix = false;
            Mars::with_options(self.correspondence(), options)
        } else {
            let mut options = MarsOptions::specialized();
            options.spec_replaces_navigation = true;
            Mars::with_options(self.correspondence(), options)
        }
    }

    /// Generate the scenario document with `scale` elements per link/corner.
    pub fn generate_document(&self, scale: usize, seed: u64) -> Document {
        let mut rng = StdRng::seed_from_u64(seed);
        match self.schema {
            SchemaShape::Chain => {
                let mut doc = Document::new(&self.document());
                let root = doc.create_root("chain");
                for h in 0..scale {
                    let l1 = doc.add_element(root, "L1");
                    doc.add_leaf(l1, "K", &format!("k1_{h}"));
                    doc.add_leaf(l1, "P", &format!("k2_{}", self.data.pick(&mut rng, scale)));
                }
                for h in 0..scale {
                    let l2 = doc.add_element(root, "L2");
                    doc.add_leaf(l2, "K", &format!("k2_{h}"));
                    doc.add_leaf(l2, "P", &format!("k3_{}", self.data.pick(&mut rng, scale)));
                }
                for h in 0..scale {
                    let l3 = doc.add_element(root, "L3");
                    doc.add_leaf(l3, "K", &format!("k3_{h}"));
                    doc.add_leaf(l3, "B", &format!("b_{h}"));
                }
                doc
            }
            SchemaShape::Snowflake => {
                // Same shape StarConfig generates, but with the scenario's
                // pointer distribution.
                let cfg = self.star();
                let mut doc = Document::new(&self.document());
                let root = doc.create_root("star");
                for h in 0..scale {
                    let r = doc.add_element(root, "R");
                    doc.add_leaf(r, "K", &format!("k{h}"));
                    for i in 1..=cfg.nc {
                        let a = self.data.pick(&mut rng, scale);
                        doc.add_leaf(r, &format!("A{i}"), &format!("a{i}_{a}"));
                    }
                }
                for i in 1..=cfg.nc {
                    for j in 0..scale {
                        let s = doc.add_element(root, &format!("S{i}"));
                        doc.add_leaf(s, "A", &format!("a{i}_{j}"));
                        doc.add_leaf(s, "B", &format!("b{i}_{j}"));
                    }
                }
                doc
            }
        }
    }

    /// Populate both stores: the document goes into the XML store; the
    /// views and (at redundancy ≥ 1) the specialization relations are
    /// materialized; and the document's GReX encoding is loaded into the
    /// relational database so navigation atoms can execute relationally —
    /// the precondition for cross-backend differential comparison.
    pub fn populate(&self, scale: usize, seed: u64) -> (XmlStore, RelationalDatabase) {
        let mut xml = XmlStore::new();
        let doc = self.generate_document(scale, seed);
        let mut db = RelationalDatabase::new();
        db.load_facts(&encode_document(&doc));
        xml.add_document(doc);
        for view in self.views() {
            materialize_view(&view, &mut xml, &mut db)
                .expect("scenario views navigate the freshly added document");
        }
        if self.redundancy > 0 {
            for m in self.specializations() {
                materialize_view(&m.definition_view(), &mut xml, &mut db)
                    .expect("scenario specializations navigate the freshly added document");
            }
        }
        (xml, db)
    }
}

/// The chain client query: follow both links, return the head key and the
/// tail payload.
fn chain_query(doc: &str) -> XBindQuery {
    let mut q = XBindQuery::new("ChainQ");
    for (i, elem) in ["L1", "L2", "L3"].iter().enumerate() {
        let i = i + 1;
        q = q.with_atom(XBindAtom::AbsolutePath {
            document: doc.to_string(),
            path: parse_path(&format!("//{elem}")).unwrap(),
            var: format!("l{i}"),
        });
        q = q.with_atom(XBindAtom::RelativePath {
            path: parse_path("./K/text()").unwrap(),
            source: format!("l{i}"),
            var: format!("k{i}"),
        });
    }
    for i in [1usize, 2] {
        q = q
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./P/text()").unwrap(),
                source: format!("l{i}"),
                var: format!("p{i}"),
            })
            .with_atom(XBindAtom::Eq(
                XBindTerm::var(&format!("p{i}")),
                XBindTerm::var(&format!("k{}", i + 1)),
            ));
    }
    q = q.with_atom(XBindAtom::RelativePath {
        path: parse_path("./B/text()").unwrap(),
        source: "l3".to_string(),
        var: "b".to_string(),
    });
    q.head = vec!["k1".to_string(), "b".to_string()];
    q
}

/// The chain view `W_l`: the join of link `l` with link `l + 1`, projecting
/// both keys (and the payload for the last link).
fn chain_view(doc: &str, l: usize) -> ViewDef {
    let (src, dst) = (format!("L{l}"), format!("L{}", l + 1));
    let mut body = XBindQuery::new(&format!("W{l}body"))
        .with_atom(XBindAtom::AbsolutePath {
            document: doc.to_string(),
            path: parse_path(&format!("//{src}")).unwrap(),
            var: "s".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./K/text()").unwrap(),
            source: "s".to_string(),
            var: "ks".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./P/text()").unwrap(),
            source: "s".to_string(),
            var: "p".to_string(),
        })
        .with_atom(XBindAtom::AbsolutePath {
            document: doc.to_string(),
            path: parse_path(&format!("//{dst}")).unwrap(),
            var: "d".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./K/text()").unwrap(),
            source: "d".to_string(),
            var: "kd".to_string(),
        })
        .with_atom(XBindAtom::Eq(XBindTerm::var("p"), XBindTerm::var("kd")));
    body.head = vec!["ks".to_string(), "kd".to_string()];
    ViewDef::relational(&format!("W{l}"), body)
}

/// Keys on every link's `K`, foreign keys along the pointers, and DTD
/// single-occurrence constraints — the vocabulary that makes view rewriting
/// sound (exactly as in the star configuration).
fn chain_constraints(doc: &str) -> Vec<Xic> {
    let mut out = Vec::new();
    for elem in ["L1", "L2", "L3"] {
        out.push(
            Xic::key(&format!("{elem}_key"), doc, &format!("//{elem}"), "./K/text()")
                .expect("literal chain key paths parse"),
        );
        out.push(
            Xic::unique_child(&format!("{elem}_one_K"), doc, &format!("//{elem}"), "./K")
                .expect("literal chain DTD paths parse"),
        );
    }
    for l in [1usize, 2] {
        out.push(
            Xic::inclusion(
                &format!("fk_P{l}"),
                doc,
                &format!("//L{l}"),
                "./P/text()",
                &format!("//L{}", l + 1),
                "./K/text()",
            )
            .expect("literal chain foreign-key paths parse"),
        );
        out.push(
            Xic::unique_child(&format!("L{l}_one_P"), doc, &format!("//L{l}"), "./P")
                .expect("literal chain DTD paths parse"),
        );
    }
    out.push(
        Xic::unique_child("L3_one_B", doc, "//L3", "./B").expect("literal chain DTD paths parse"),
    );
    out
}

fn chain_specializations(doc: &str) -> Vec<SpecializationMapping> {
    vec![
        SpecializationMapping::new(
            "L1spec",
            doc,
            "//L1",
            &[("K", "./K/text()"), ("P", "./P/text()")],
        )
        .with_single_valued_fields(),
        SpecializationMapping::new(
            "L2spec",
            doc,
            "//L2",
            &[("K", "./K/text()"), ("P", "./P/text()")],
        )
        .with_single_valued_fields(),
        SpecializationMapping::new(
            "L3spec",
            doc,
            "//L3",
            &[("K", "./K/text()"), ("B", "./B/text()")],
        )
        .with_single_valued_fields(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_storage::{BackendRouter, Route};
    use std::collections::HashSet;

    #[test]
    fn the_matrix_has_twelve_uniquely_named_points() {
        let matrix = Scenario::matrix();
        assert_eq!(matrix.len(), 12);
        let names: HashSet<String> = matrix.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), 12);
        assert!(names.contains("chain-uniform-r0"));
        assert!(names.contains("snowflake-skewed-r2"));
    }

    #[test]
    fn every_scenario_reformulates_and_executes() {
        for s in Scenario::matrix() {
            let mars = s.mars();
            let block = mars
                .try_reformulate_xbind(&s.client_query())
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            let best = block.result.best_or_initial().cloned();
            let best = best.unwrap_or_else(|| panic!("{}: no executable query", s.name()));
            let (xml, db) = s.populate(6, 42);
            let rows = db.query(&best);
            assert!(!rows.is_empty(), "{}: relational execution is empty", s.name());
            let router = BackendRouter::new(&db, &xml);
            let exec = router.execute(&router.plan(&best)).unwrap();
            assert_eq!(exec.rows, rows, "{}: auto route disagrees", s.name());
        }
    }

    /// The routing expectation the `experiments --route auto` smoke gate
    /// enforces: redundancy 0 navigates (XML backend), redundancy ≥ 1 is
    /// view-backed (relational backend).
    #[test]
    fn redundancy_drives_the_route() {
        for s in [
            Scenario { schema: SchemaShape::Chain, data: DataShape::Uniform, redundancy: 0 },
            Scenario { schema: SchemaShape::Snowflake, data: DataShape::Skewed, redundancy: 0 },
        ] {
            let block = s.mars().try_reformulate_xbind(&s.client_query()).unwrap();
            let best = block.result.best_or_initial().unwrap().clone();
            let (xml, db) = s.populate(8, 7);
            let plan = BackendRouter::new(&db, &xml).plan(&best);
            assert_eq!(plan.decision.route, Route::Xml, "{}: {}", s.name(), plan.decision);
        }
        for s in [
            Scenario { schema: SchemaShape::Chain, data: DataShape::Uniform, redundancy: 2 },
            Scenario { schema: SchemaShape::Snowflake, data: DataShape::Uniform, redundancy: 1 },
        ] {
            let block = s.mars().try_reformulate_xbind(&s.client_query()).unwrap();
            let best = block.result.best_or_initial().unwrap().clone();
            let (xml, db) = s.populate(8, 7);
            let plan = BackendRouter::new(&db, &xml).plan(&best);
            assert_eq!(plan.decision.route, Route::Relational, "{}: {}", s.name(), plan.decision);
        }
    }

    #[test]
    fn skew_concentrates_the_chain_joins() {
        let uniform =
            Scenario { schema: SchemaShape::Chain, data: DataShape::Uniform, redundancy: 0 };
        let skewed =
            Scenario { schema: SchemaShape::Chain, data: DataShape::Skewed, redundancy: 0 };
        let (xml_u, _) = uniform.populate(10, 3);
        let (xml_s, _) = skewed.populate(10, 3);
        let count = |xml: &XmlStore, s: &Scenario| {
            xml.eval_xbind(&s.client_query(), &Default::default()).unwrap().len()
        };
        // A hot head key makes chains collide; the row sets differ.
        assert_ne!(count(&xml_u, &uniform), 0);
        assert_ne!(count(&xml_s, &skewed), 0);
    }
}
