//! The XML star configuration of Section 4.1.
//!
//! Public schema: `R` elements (children of the root) with subelements `K`,
//! `A1 … A_NC`; for each `1 ≤ i ≤ NC`, `S_i` elements with subelements `A` and
//! `B`. `R.A_i` is a foreign key into `S_i.A`, and `K` is a key for `R`.
//!
//! Proprietary schema: the public document itself plus `NV` redundantly
//! materialized star views `V_l` joining the hub with corners `S_l` and
//! `S_{l+1}` along the foreign keys and projecting `K`, `B_l`, `B_{l+1}`.
//! In the absence of constraints no view rewriting exists, but with the key
//! constraint on `R` the star join can be rewritten using any subset of the
//! views — `2^NV` reformulations, all found by the C&B.
//!
//! The views are materialized as relations (the paper materializes them as
//! XML; the substitution is recorded in DESIGN.md — it preserves the search
//! space shape while keeping the backchase pool explicit).

use mars::{Mars, MarsOptions, SchemaCorrespondence};
use mars_grex::ViewDef;
use mars_specialize::SpecializationMapping;
use mars_storage::{materialize_view, RelationalDatabase, XmlStore};
use mars_xml::{parse_path, Document};
use mars_xquery::{XBindAtom, XBindQuery, Xic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a star configuration.
#[derive(Clone, Copy, Debug)]
pub struct StarConfig {
    /// Number of corners (NC).
    pub nc: usize,
    /// Number of materialized star views (NV ≤ NC − 1).
    pub nv: usize,
    /// Whether the proprietary schema also contains the public document
    /// itself (Figure 5 uses `true`, the Figure 8 specialization experiment
    /// uses `false` — "the proprietary schema contains only the views now").
    pub proprietary_includes_document: bool,
}

impl StarConfig {
    /// The Figure 5 configuration for a given NC (NV = NC − 1).
    pub fn figure5(nc: usize) -> StarConfig {
        StarConfig { nc, nv: nc.saturating_sub(1), proprietary_includes_document: true }
    }

    /// The Figure 8 configuration (views-only proprietary schema).
    pub fn figure8(nc: usize) -> StarConfig {
        StarConfig { nc, nv: nc.saturating_sub(1), proprietary_includes_document: false }
    }

    /// Name of the public star document.
    pub fn document(&self) -> String {
        "star.xml".to_string()
    }

    fn view_name(l: usize) -> String {
        format!("V{l}")
    }

    /// The client XBind query: join `R` with all NC corners, returning `K`
    /// and every corner's `B`.
    pub fn client_query(&self) -> XBindQuery {
        let doc = self.document();
        let mut head: Vec<String> = vec!["k".to_string()];
        let mut q = XBindQuery::new("StarQ")
            .with_atom(XBindAtom::AbsolutePath {
                document: doc.clone(),
                path: parse_path("//R").unwrap(),
                var: "r".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./K/text()").unwrap(),
                source: "r".to_string(),
                var: "k".to_string(),
            });
        for i in 1..=self.nc {
            q = q
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path(&format!("./A{i}/text()")).unwrap(),
                    source: "r".to_string(),
                    var: format!("a{i}"),
                })
                .with_atom(XBindAtom::AbsolutePath {
                    document: doc.clone(),
                    path: parse_path(&format!("//S{i}")).unwrap(),
                    var: format!("s{i}"),
                })
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path("./A/text()").unwrap(),
                    source: format!("s{i}"),
                    var: format!("sa{i}"),
                })
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path("./B/text()").unwrap(),
                    source: format!("s{i}"),
                    var: format!("b{i}"),
                })
                .with_atom(XBindAtom::Eq(
                    mars_xquery::XBindTerm::var(&format!("a{i}")),
                    mars_xquery::XBindTerm::var(&format!("sa{i}")),
                ));
            head.push(format!("b{i}"));
        }
        q.head = head;
        q
    }

    /// The view `V_l` (joins the hub with corners `l` and `l+1`).
    pub fn view(&self, l: usize) -> ViewDef {
        let doc = self.document();
        let mut body = XBindQuery::new(&format!("{}body", Self::view_name(l)))
            .with_atom(XBindAtom::AbsolutePath {
                document: doc.clone(),
                path: parse_path("//R").unwrap(),
                var: "r".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./K/text()").unwrap(),
                source: "r".to_string(),
                var: "k".to_string(),
            });
        for i in [l, l + 1] {
            body = body
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path(&format!("./A{i}/text()")).unwrap(),
                    source: "r".to_string(),
                    var: format!("a{i}"),
                })
                .with_atom(XBindAtom::AbsolutePath {
                    document: doc.clone(),
                    path: parse_path(&format!("//S{i}")).unwrap(),
                    var: format!("s{i}"),
                })
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path("./A/text()").unwrap(),
                    source: format!("s{i}"),
                    var: format!("sa{i}"),
                })
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path("./B/text()").unwrap(),
                    source: format!("s{i}"),
                    var: format!("b{i}"),
                })
                .with_atom(XBindAtom::Eq(
                    mars_xquery::XBindTerm::var(&format!("a{i}")),
                    mars_xquery::XBindTerm::var(&format!("sa{i}")),
                ));
        }
        body.head = vec!["k".to_string(), format!("b{l}"), format!("b{}", l + 1)];
        ViewDef::relational(&Self::view_name(l), body)
    }

    /// The key XIC on `R.K` (the constraint that makes view rewritings valid).
    pub fn key_constraint(&self) -> Xic {
        Xic::key("R_key", &self.document(), "//R", "./K/text()")
    }

    /// Foreign-key XICs `R.A_i ⊆ S_i.A`.
    pub fn foreign_keys(&self) -> Vec<Xic> {
        (1..=self.nc)
            .map(|i| {
                Xic::inclusion(
                    &format!("fk_A{i}"),
                    &self.document(),
                    "//R",
                    &format!("./A{i}/text()"),
                    &format!("//S{i}"),
                    "./A/text()",
                )
            })
            .collect()
    }

    /// Specialization mappings for the star document (hub and corners are
    /// perfectly regular — the best case for Section 5).
    pub fn specializations(&self) -> Vec<SpecializationMapping> {
        let doc = self.document();
        let mut out = Vec::new();
        let mut r_fields: Vec<(String, String)> = vec![("K".to_string(), "./K/text()".to_string())];
        for i in 1..=self.nc {
            r_fields.push((format!("A{i}"), format!("./A{i}/text()")));
        }
        let refs: Vec<(&str, &str)> =
            r_fields.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        out.push(SpecializationMapping::new("Rspec", &doc, "//R", &refs));
        for i in 1..=self.nc {
            out.push(SpecializationMapping::new(
                &format!("S{i}spec"),
                &doc,
                &format!("//S{i}"),
                &[("A", "./A/text()"), ("B", "./B/text()")],
            ));
        }
        out
    }

    /// The schema correspondence of this configuration.
    pub fn correspondence(&self) -> SchemaCorrespondence {
        let mut xics = vec![self.key_constraint()];
        xics.extend(self.foreign_keys());
        SchemaCorrespondence {
            public_documents: vec![self.document()],
            gav_views: Vec::new(),
            lav_views: (1..=self.nv).map(|l| self.view(l)).collect(),
            xics,
            relational_constraints: Vec::new(),
            proprietary_relations: Vec::new(),
            proprietary_documents: if self.proprietary_includes_document {
                vec![self.document()]
            } else {
                Vec::new()
            },
            specializations: self.specializations(),
        }
    }

    /// Build the MARS system for this configuration.
    pub fn mars(&self, options: MarsOptions) -> Mars {
        Mars::with_options(self.correspondence(), options)
    }

    /// Generate a concrete star document with `hubs` R-elements and
    /// `corner_size` elements per corner relation (≈ `hubs + nc*corner_size`
    /// elements plus leaves; the paper's "toy document of 60 elements"
    /// corresponds to roughly `generate_document(5, 5)` at NC = 3).
    pub fn generate_document(&self, hubs: usize, corner_size: usize, seed: u64) -> Document {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut doc = Document::new(&self.document());
        let root = doc.create_root("star");
        for h in 0..hubs {
            let r = doc.add_element(root, "R");
            doc.add_leaf(r, "K", &format!("k{h}"));
            for i in 1..=self.nc {
                let a = rng.gen_range(0..corner_size);
                doc.add_leaf(r, &format!("A{i}"), &format!("a{i}_{a}"));
            }
        }
        for i in 1..=self.nc {
            for j in 0..corner_size {
                let s = doc.add_element(root, &format!("S{i}"));
                doc.add_leaf(s, "A", &format!("a{i}_{j}"));
                doc.add_leaf(s, "B", &format!("b{i}_{j}"));
            }
        }
        doc
    }

    /// Populate storage: the document goes into the XML store and every view
    /// is materialized into the relational database. Returns the stores.
    pub fn populate(
        &self,
        hubs: usize,
        corner_size: usize,
        seed: u64,
    ) -> (XmlStore, RelationalDatabase) {
        let mut xml = XmlStore::new();
        xml.add_document(self.generate_document(hubs, corner_size, seed));
        let mut db = RelationalDatabase::new();
        for l in 1..=self.nv {
            materialize_view(&self.view(l), &mut xml, &mut db);
        }
        (xml, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn query_and_view_shapes() {
        let cfg = StarConfig::figure5(3);
        let q = cfg.client_query();
        assert_eq!(q.head.len(), 4); // k + 3 B's
        assert_eq!(q.atoms.len(), 2 + 3 * 5);
        let v = cfg.view(1);
        assert_eq!(v.body.head, vec!["k", "b1", "b2"]);
        assert_eq!(cfg.foreign_keys().len(), 3);
        assert_eq!(cfg.specializations().len(), 4);
    }

    #[test]
    fn document_generation_and_materialization() {
        let cfg = StarConfig::figure5(3);
        let (xml, db) = cfg.populate(4, 3, 7);
        let doc = xml.document("star.xml").unwrap();
        // 1 root + 4 R (each with 1+3 leaves) + 3*3 S (each with 2 leaves)
        assert_eq!(doc.element_count(), 1 + 4 * 5 + 9 * 3);
        // Every hub joins some corner row in each view.
        assert_eq!(db.cardinality("V1"), 4);
        assert_eq!(db.cardinality("V2"), 4);
    }

    /// The headline property of the configuration: with the key constraint,
    /// the star query has 2^NV minimal reformulations over document+views.
    #[test]
    fn exponentially_many_minimal_reformulations_nc3() {
        let cfg = StarConfig::figure5(3);
        let mars = cfg.mars(MarsOptions::specialized().exhaustive());
        let block = mars.reformulate_xbind(&cfg.client_query());
        assert!(block.result.has_reformulation());
        assert_eq!(
            block.result.minimal.len(),
            1 << cfg.nv,
            "expected 2^NV = {} minimal reformulations, got {}",
            1 << cfg.nv,
            block.result.minimal.len()
        );
        // The best reformulation uses at least one view (cheaper than raw navigation).
        let best = &block.result.best.as_ref().unwrap().0;
        assert!(best
            .body
            .iter()
            .any(|a| a.predicate.name().starts_with('V') || a.predicate.name().contains("spec")));
    }

    #[test]
    fn unreformulated_query_executes_on_the_naive_engine() {
        let cfg = StarConfig::figure5(3);
        let (xml, _) = cfg.populate(3, 3, 1);
        let rows = xml.eval_xbind(&cfg.client_query(), &HashMap::new());
        assert_eq!(rows.len(), 3, "each hub matches exactly one row per corner");
    }
}
