//! The XML star configuration of Section 4.1.
//!
//! Public schema: `R` elements (children of the root) with subelements `K`,
//! `A1 … A_NC`; for each `1 ≤ i ≤ NC`, `S_i` elements with subelements `A` and
//! `B`. `R.A_i` is a foreign key into `S_i.A`, and `K` is a key for `R`.
//!
//! Proprietary schema: the public document itself plus `NV` redundantly
//! materialized star views `V_l`, each joining the hub with the single corner
//! `S_l` along the foreign key and projecting `K`, `B_l`. In the absence of
//! constraints no view rewriting exists, but with the key constraint on `R`
//! the star join can be rewritten using any subset of the views — each corner
//! `l ≤ NV` is answered either by `V_l` or by navigating to `S_l`, and the
//! choices are independent, so there are exactly `2^NV` minimal
//! reformulations, all found by the C&B.
//!
//! (An earlier revision had each view join *two consecutive* corners; that
//! breaks the `2^NV` count for NC ≥ 4 because a pair of non-adjacent views
//! can cover every corner, making the all-views candidate a strict superset
//! of a smaller reformulation and hence non-minimal. Single-corner views keep
//! the view choices independent, which is the search-space shape the paper's
//! Section 4.1 count relies on.)
//!
//! The views are materialized as relations (the paper materializes them as
//! XML; the substitution is recorded in EXPERIMENTS.md — it preserves the
//! search space shape while keeping the backchase pool explicit).

use mars::{Mars, MarsOptions, SchemaCorrespondence};
use mars_grex::ViewDef;
use mars_specialize::SpecializationMapping;
use mars_storage::{materialize_view, RelationalDatabase, XmlStore};
use mars_xml::{parse_path, Document};
use mars_xquery::{XBindAtom, XBindQuery, Xic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a star configuration.
#[derive(Clone, Copy, Debug)]
pub struct StarConfig {
    /// Number of corners (NC).
    pub nc: usize,
    /// Number of materialized star views (NV ≤ NC − 1).
    pub nv: usize,
    /// Whether the proprietary schema also contains the public document
    /// itself (Figure 5 uses `true`, the Figure 8 specialization experiment
    /// uses `false` — "the proprietary schema contains only the views now").
    pub proprietary_includes_document: bool,
}

impl StarConfig {
    /// The Figure 5 configuration for a given NC (NV = NC − 1).
    pub fn figure5(nc: usize) -> StarConfig {
        StarConfig { nc, nv: nc.saturating_sub(1), proprietary_includes_document: true }
    }

    /// The Figure 8 configuration (views-only proprietary schema).
    pub fn figure8(nc: usize) -> StarConfig {
        StarConfig { nc, nv: nc.saturating_sub(1), proprietary_includes_document: false }
    }

    /// Name of the public star document.
    pub fn document(&self) -> String {
        "star.xml".to_string()
    }

    fn view_name(l: usize) -> String {
        format!("V{l}")
    }

    /// The client XBind query: join `R` with all NC corners, returning `K`
    /// and every corner's `B`.
    pub fn client_query(&self) -> XBindQuery {
        let doc = self.document();
        let mut head: Vec<String> = vec!["k".to_string()];
        let mut q = XBindQuery::new("StarQ")
            .with_atom(XBindAtom::AbsolutePath {
                document: doc.clone(),
                path: parse_path("//R").unwrap(),
                var: "r".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./K/text()").unwrap(),
                source: "r".to_string(),
                var: "k".to_string(),
            });
        for i in 1..=self.nc {
            q = q
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path(&format!("./A{i}/text()")).unwrap(),
                    source: "r".to_string(),
                    var: format!("a{i}"),
                })
                .with_atom(XBindAtom::AbsolutePath {
                    document: doc.clone(),
                    path: parse_path(&format!("//S{i}")).unwrap(),
                    var: format!("s{i}"),
                })
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path("./A/text()").unwrap(),
                    source: format!("s{i}"),
                    var: format!("sa{i}"),
                })
                .with_atom(XBindAtom::RelativePath {
                    path: parse_path("./B/text()").unwrap(),
                    source: format!("s{i}"),
                    var: format!("b{i}"),
                })
                .with_atom(XBindAtom::Eq(
                    mars_xquery::XBindTerm::var(&format!("a{i}")),
                    mars_xquery::XBindTerm::var(&format!("sa{i}")),
                ));
            head.push(format!("b{i}"));
        }
        q.head = head;
        q
    }

    /// The view `V_l` (joins the hub with the single corner `l`).
    pub fn view(&self, l: usize) -> ViewDef {
        let doc = self.document();
        let mut body = XBindQuery::new(&format!("{}body", Self::view_name(l)))
            .with_atom(XBindAtom::AbsolutePath {
                document: doc.clone(),
                path: parse_path("//R").unwrap(),
                var: "r".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./K/text()").unwrap(),
                source: "r".to_string(),
                var: "k".to_string(),
            });
        body = body
            .with_atom(XBindAtom::RelativePath {
                path: parse_path(&format!("./A{l}/text()")).unwrap(),
                source: "r".to_string(),
                var: format!("a{l}"),
            })
            .with_atom(XBindAtom::AbsolutePath {
                document: doc.clone(),
                path: parse_path(&format!("//S{l}")).unwrap(),
                var: format!("s{l}"),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./A/text()").unwrap(),
                source: format!("s{l}"),
                var: format!("sa{l}"),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./B/text()").unwrap(),
                source: format!("s{l}"),
                var: format!("b{l}"),
            })
            .with_atom(XBindAtom::Eq(
                mars_xquery::XBindTerm::var(&format!("a{l}")),
                mars_xquery::XBindTerm::var(&format!("sa{l}")),
            ));
        body.head = vec!["k".to_string(), format!("b{l}")];
        ViewDef::relational(&Self::view_name(l), body)
    }

    /// The key XIC on `R.K` (the constraint that makes view rewritings valid).
    pub fn key_constraint(&self) -> Xic {
        Xic::key("R_key", &self.document(), "//R", "./K/text()")
            .expect("literal star key paths parse")
    }

    /// DTD single-occurrence constraints of the star document: each hub has
    /// exactly one `K` and one `A_i` subelement, each corner one `A` and one
    /// `B` (`<!ELEMENT R (K, A1, …)>`). Declaring them lets the backchase's
    /// equivalence chases unify the duplicated navigation that arises when a
    /// hub is reconstructed from several views, instead of accumulating a
    /// cross-product of equivalent patterns.
    pub fn dtd_constraints(&self) -> Vec<Xic> {
        let doc = self.document();
        let one = |name: &str, elements: &str, child: &str| {
            Xic::unique_child(name, &doc, elements, child).expect("literal star DTD paths parse")
        };
        let mut out = vec![one("R_one_K", "//R", "./K")];
        for i in 1..=self.nc {
            out.push(one(&format!("R_one_A{i}"), "//R", &format!("./A{i}")));
            out.push(one(&format!("S{i}_one_A"), &format!("//S{i}"), "./A"));
            out.push(one(&format!("S{i}_one_B"), &format!("//S{i}"), "./B"));
        }
        out
    }

    /// Foreign-key XICs `R.A_i ⊆ S_i.A`.
    pub fn foreign_keys(&self) -> Vec<Xic> {
        (1..=self.nc)
            .map(|i| {
                Xic::inclusion(
                    &format!("fk_A{i}"),
                    &self.document(),
                    "//R",
                    &format!("./A{i}/text()"),
                    &format!("//S{i}"),
                    "./A/text()",
                )
                .expect("literal star foreign-key paths parse")
            })
            .collect()
    }

    /// Specialization mappings for the star document (hub and corners are
    /// perfectly regular — the best case for Section 5).
    pub fn specializations(&self) -> Vec<SpecializationMapping> {
        let doc = self.document();
        let mut out = Vec::new();
        let mut r_fields: Vec<(String, String)> = vec![("K".to_string(), "./K/text()".to_string())];
        for i in 1..=self.nc {
            r_fields.push((format!("A{i}"), format!("./A{i}/text()")));
        }
        let refs: Vec<(&str, &str)> =
            r_fields.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        out.push(
            SpecializationMapping::new("Rspec", &doc, "//R", &refs).with_single_valued_fields(),
        );
        for i in 1..=self.nc {
            out.push(
                SpecializationMapping::new(
                    &format!("S{i}spec"),
                    &doc,
                    &format!("//S{i}"),
                    &[("A", "./A/text()"), ("B", "./B/text()")],
                )
                .with_single_valued_fields(),
            );
        }
        out
    }

    /// The schema correspondence of this configuration.
    pub fn correspondence(&self) -> SchemaCorrespondence {
        let mut xics = vec![self.key_constraint()];
        xics.extend(self.foreign_keys());
        xics.extend(self.dtd_constraints());
        SchemaCorrespondence {
            public_documents: vec![self.document()],
            gav_views: Vec::new(),
            lav_views: (1..=self.nv).map(|l| self.view(l)).collect(),
            xics,
            relational_constraints: Vec::new(),
            proprietary_relations: Vec::new(),
            proprietary_documents: if self.proprietary_includes_document {
                vec![self.document()]
            } else {
                Vec::new()
            },
            specializations: self.specializations(),
        }
    }

    /// Build the MARS system for this configuration.
    ///
    /// The star document is perfectly regular and fully covered by its
    /// specialization mappings, so when specialization is requested the
    /// document is accessed exclusively through the specialization relations
    /// (`spec_replaces_navigation`). This keeps the backchase candidate pool
    /// at `NC + NV + 1` atoms — the vocabulary over which the `2^NV`
    /// completeness count is stated — instead of the hundreds of raw
    /// navigation atoms of the universal plan.
    pub fn mars(&self, mut options: MarsOptions) -> Mars {
        options.spec_replaces_navigation = true;
        Mars::with_options(self.correspondence(), options)
    }

    /// Generate a concrete star document with `hubs` R-elements and
    /// `corner_size` elements per corner relation (≈ `hubs + nc*corner_size`
    /// elements plus leaves; the paper's "toy document of 60 elements"
    /// corresponds to roughly `generate_document(5, 5)` at NC = 3).
    pub fn generate_document(&self, hubs: usize, corner_size: usize, seed: u64) -> Document {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut doc = Document::new(&self.document());
        let root = doc.create_root("star");
        for h in 0..hubs {
            let r = doc.add_element(root, "R");
            doc.add_leaf(r, "K", &format!("k{h}"));
            for i in 1..=self.nc {
                let a = rng.gen_range(0..corner_size);
                doc.add_leaf(r, &format!("A{i}"), &format!("a{i}_{a}"));
            }
        }
        for i in 1..=self.nc {
            for j in 0..corner_size {
                let s = doc.add_element(root, &format!("S{i}"));
                doc.add_leaf(s, "A", &format!("a{i}_{j}"));
                doc.add_leaf(s, "B", &format!("b{i}_{j}"));
            }
        }
        doc
    }

    /// Populate storage: the document goes into the XML store, every view is
    /// materialized into the relational database, and so is every
    /// specialization relation (so reformulations mixing views with `Rspec` /
    /// `S_ispec` atoms can execute relationally). Returns the stores.
    pub fn populate(
        &self,
        hubs: usize,
        corner_size: usize,
        seed: u64,
    ) -> (XmlStore, RelationalDatabase) {
        let mut xml = XmlStore::new();
        xml.add_document(self.generate_document(hubs, corner_size, seed));
        let mut db = RelationalDatabase::new();
        for l in 1..=self.nv {
            materialize_view(&self.view(l), &mut xml, &mut db)
                .expect("star views navigate the freshly added document");
        }
        for m in self.specializations() {
            materialize_view(&m.definition_view(), &mut xml, &mut db)
                .expect("star specializations navigate the freshly added document");
        }
        (xml, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn query_and_view_shapes() {
        let cfg = StarConfig::figure5(3);
        let q = cfg.client_query();
        assert_eq!(q.head.len(), 4); // k + 3 B's
        assert_eq!(q.atoms.len(), 2 + 3 * 5);
        let v = cfg.view(1);
        assert_eq!(v.body.head, vec!["k", "b1"]);
        let v2 = cfg.view(2);
        assert_eq!(v2.body.head, vec!["k", "b2"]);
        assert_eq!(cfg.foreign_keys().len(), 3);
        assert_eq!(cfg.specializations().len(), 4);
    }

    #[test]
    fn document_generation_and_materialization() {
        let cfg = StarConfig::figure5(3);
        let (xml, db) = cfg.populate(4, 3, 7);
        let doc = xml.document("star.xml").unwrap();
        // 1 root + 4 R (each with 1+3 leaves) + 3*3 S (each with 2 leaves)
        assert_eq!(doc.element_count(), 1 + 4 * 5 + 9 * 3);
        // Every hub joins some corner row in each view.
        assert_eq!(db.cardinality("V1"), 4);
        assert_eq!(db.cardinality("V2"), 4);
    }

    /// The headline property of the configuration: with the key constraint,
    /// the star query has 2^NV minimal reformulations over document+views.
    #[test]
    fn exponentially_many_minimal_reformulations_nc3() {
        let cfg = StarConfig::figure5(3);
        let mars = cfg.mars(MarsOptions::specialized().exhaustive());
        let block = mars.reformulate_xbind(&cfg.client_query());
        assert!(block.result.has_reformulation());
        assert_eq!(
            block.result.minimal.len(),
            1 << cfg.nv,
            "expected 2^NV = {} minimal reformulations, got {}",
            1 << cfg.nv,
            block.result.minimal.len()
        );
        // The best reformulation uses at least one view (cheaper than raw navigation).
        let best = &block.result.best.as_ref().unwrap().0;
        assert!(best
            .body
            .iter()
            .any(|a| a.predicate.name().starts_with('V') || a.predicate.name().contains("spec")));
    }

    /// Regression for the lost-reformulation bug: the exhaustive backchase
    /// must return *exactly* `2^NV` minimal reformulations — one per subset
    /// of the views — at every NC, not just the sizes where the old pairwise
    /// view definition happened to keep subsets incomparable. The seed
    /// reported 7 of 8 at NC = 4 (see EXPERIMENTS.md for the root cause).
    #[test]
    fn exhaustive_backchase_counts_exactly_two_to_the_nv() {
        for nc in [2usize, 3, 4] {
            let cfg = StarConfig::figure5(nc);
            let mars = cfg.mars(MarsOptions::specialized().exhaustive());
            let block = mars.reformulate_xbind(&cfg.client_query());
            assert!(
                !block.result.stats.backchase_truncated,
                "NC={nc}: enumeration must complete, not hit max_candidates"
            );
            assert_eq!(
                block.result.minimal.len(),
                1 << cfg.nv,
                "NC={nc}: expected 2^NV = {} minimal reformulations, got {}",
                1 << cfg.nv,
                block.result.minimal.len()
            );
            // The minimal reformulations form an antichain: none is a
            // subquery of another.
            for (i, (a, _)) in block.result.minimal.iter().enumerate() {
                for (j, (b, _)) in block.result.minimal.iter().enumerate() {
                    if i != j {
                        let subset = a.body.iter().all(|atom| b.body.contains(atom));
                        assert!(!subset, "NC={nc}: {} is a subquery of {}", a.name, b.name);
                    }
                }
            }
        }
    }

    #[test]
    fn unreformulated_query_executes_on_the_naive_engine() {
        let cfg = StarConfig::figure5(3);
        let (xml, _) = cfg.populate(3, 3, 1);
        let rows = xml.eval_xbind(&cfg.client_query(), &HashMap::new()).unwrap();
        assert_eq!(rows.len(), 3, "each hub matches exactly one row per corner");
    }
}
