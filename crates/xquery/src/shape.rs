//! Query *shape* normalization for the plan cache.
//!
//! A resident reformulation service sees millions of arrivals of the same
//! query *templates* with different constants. The shape of an
//! [`XBindQuery`] is the query with its variables alpha-renamed (first
//! occurrence order) and its non-reserved constants parameterized out — two
//! queries that differ only in constant values share a shape, so the second
//! arrival can reuse the first one's reformulation with the constants
//! re-substituted.
//!
//! Two correctness subtleties the normalization must respect:
//!
//! * **Implicit equality joins.** The *same* constant appearing twice is an
//!   implicit join (both occurrences must carry the same value), while two
//!   *distinct* constants are independent parameters. Parameter indices are
//!   therefore assigned per distinct constant **value**: `Eq(x,"a"),
//!   Eq(y,"a")` normalizes to `eq(v0,?0) eq(v1,?0)` but `Eq(x,"a"),
//!   Eq(y,"b")` to `eq(v0,?0) eq(v1,?1)` — different keys, never conflated.
//! * **Reserved constants.** Constants that also appear in the schema
//!   correspondence (tag names, document names, specialization labels) are
//!   part of the query's *structure*: the chase joins them against the
//!   dependency set, so substituting a different value would change the
//!   reformulation. They stay literal in the key and are never parameterized.

use crate::xbind::{XBindAtom, XBindQuery, XBindTerm};
use std::collections::HashMap;
use std::collections::HashSet;

/// The normal form of an [`XBindQuery`]: the cache key plus the concrete
/// values abstracted out of it, in a deterministic order so a cache hit can
/// re-substitute them pairwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryShape {
    /// The canonical rendering: block name, head, distinct flag and atoms
    /// with variables alpha-renamed to `v0, v1, …` and non-reserved
    /// constants replaced by `?0, ?1, …` (one parameter per distinct value).
    pub key: String,
    /// The distinct non-reserved constant values, in parameter order
    /// (`constants[i]` is the value of `?i`).
    pub constants: Vec<String>,
    /// The original variable names, in alpha-renaming order
    /// (`variables[i]` is the name `v{i}` stands for).
    pub variables: Vec<String>,
}

/// State threaded through the canonical rendering.
struct Normalizer<'a> {
    reserved: &'a HashSet<String>,
    vars: HashMap<String, usize>,
    var_order: Vec<String>,
    params: HashMap<String, usize>,
    param_order: Vec<String>,
}

impl<'a> Normalizer<'a> {
    fn var(&mut self, name: &str) -> String {
        let next = self.vars.len();
        let i = *self.vars.entry(name.to_string()).or_insert(next);
        if i == next && self.var_order.len() == next {
            self.var_order.push(name.to_string());
        }
        format!("v{i}")
    }

    fn constant(&mut self, value: &str) -> String {
        if self.reserved.contains(value) {
            // Structural constant: keep it literal (escaped so a value can
            // never collide with the surrounding syntax).
            return format!("{value:?}");
        }
        let next = self.params.len();
        let i = *self.params.entry(value.to_string()).or_insert(next);
        if i == next && self.param_order.len() == next {
            self.param_order.push(value.to_string());
        }
        format!("?{i}")
    }

    fn term(&mut self, t: &XBindTerm) -> String {
        match t {
            XBindTerm::Var(v) => self.var(v),
            XBindTerm::Str(s) => self.constant(s),
        }
    }

    fn atom(&mut self, a: &XBindAtom) -> String {
        match a {
            XBindAtom::AbsolutePath { document, path, var } => {
                format!("doc({document:?})[{path}]({})", self.var(var))
            }
            XBindAtom::RelativePath { path, source, var } => {
                format!("rel[{path}]({},{})", self.var(source), self.var(var))
            }
            XBindAtom::QueryRef { name, vars } => {
                let vs: Vec<String> = vars.iter().map(|v| self.var(v)).collect();
                format!("ref {name}({})", vs.join(","))
            }
            XBindAtom::Relational { relation, args } => {
                let ts: Vec<String> = args.iter().map(|t| self.term(t)).collect();
                format!("{relation}({})", ts.join(","))
            }
            XBindAtom::Eq(a, b) => format!("eq({},{})", self.term(a), self.term(b)),
            XBindAtom::Neq(a, b) => format!("neq({},{})", self.term(a), self.term(b)),
        }
    }
}

/// Normalize a query to its [`QueryShape`].
///
/// `reserved` holds the constant values that are structural for the current
/// schema correspondence (see the module docs); everything else is
/// parameterized out. The walk order (head, then atoms in order) is the
/// deterministic first-occurrence order both the variable alpha-renaming and
/// the constant parameter numbering follow.
pub fn shape_of(q: &XBindQuery, reserved: &HashSet<String>) -> QueryShape {
    let mut n = Normalizer {
        reserved,
        vars: HashMap::new(),
        var_order: Vec::new(),
        params: HashMap::new(),
        param_order: Vec::new(),
    };
    let head: Vec<String> = q.head.iter().map(|v| n.var(v)).collect();
    let atoms: Vec<String> = q.atoms.iter().map(|a| n.atom(a)).collect();
    let key = format!(
        "{name}{distinct}({head}) :- {atoms}",
        name = q.name,
        distinct = if q.distinct { " distinct" } else { "" },
        head = head.join(","),
        atoms = atoms.join(" & "),
    );
    QueryShape { key, constants: n.param_order, variables: n.var_order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xbind::example_2_1;
    use mars_xml::parse_path;

    fn reserved() -> HashSet<String> {
        HashSet::new()
    }

    fn filter_query(name: &str, var: &str, c1: &str, c2: &str) -> XBindQuery {
        XBindQuery::new(name)
            .with_head(&[var, "y"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: var.to_string(),
            })
            .with_atom(XBindAtom::Eq(XBindTerm::var(var), XBindTerm::str(c1)))
            .with_atom(XBindAtom::Eq(XBindTerm::var("y"), XBindTerm::str(c2)))
    }

    #[test]
    fn constants_are_parameterized_out() {
        let a = shape_of(&filter_query("Q", "x", "k1", "k2"), &reserved());
        let b = shape_of(&filter_query("Q", "x", "zz", "ww"), &reserved());
        assert_eq!(a.key, b.key, "queries differing only in constants share a shape");
        assert_eq!(a.constants, vec!["k1", "k2"]);
        assert_eq!(b.constants, vec!["zz", "ww"]);
    }

    #[test]
    fn variables_are_alpha_renamed() {
        let a = shape_of(&filter_query("Q", "x", "k", "k2"), &reserved());
        let b = shape_of(&filter_query("Q", "renamed", "k", "k2"), &reserved());
        assert_eq!(a.key, b.key, "alpha-renaming erases variable names");
        assert_eq!(a.variables, vec!["x", "y"]);
        assert_eq!(b.variables, vec!["renamed", "y"]);
    }

    /// The same constant twice is an implicit equality join; two distinct
    /// constants are two parameters. The shapes must differ.
    #[test]
    fn repeated_constant_is_not_conflated_with_distinct_constants() {
        let joined = shape_of(&filter_query("Q", "x", "same", "same"), &reserved());
        let split = shape_of(&filter_query("Q", "x", "one", "two"), &reserved());
        assert_ne!(joined.key, split.key);
        assert_eq!(joined.constants, vec!["same"]);
        assert_eq!(split.constants, vec!["one", "two"]);
    }

    #[test]
    fn reserved_constants_stay_literal() {
        let mut r = HashSet::new();
        r.insert("k1".to_string());
        let shape = shape_of(&filter_query("Q", "x", "k1", "k2"), &r);
        assert!(shape.key.contains("\"k1\""), "reserved value is structural: {}", shape.key);
        assert_eq!(shape.constants, vec!["k2"], "only the free constant is a parameter");
        // A different value in the reserved position is a different shape.
        let other = shape_of(&filter_query("Q", "x", "other", "k2"), &r);
        assert_ne!(shape.key, other.key);
    }

    #[test]
    fn block_name_head_and_distinct_are_part_of_the_key() {
        let base = filter_query("Q", "x", "k", "k2");
        let renamed_block = filter_query("R", "x", "k", "k2");
        let distinct = filter_query("Q", "x", "k", "k2").with_distinct();
        let r = reserved();
        assert_ne!(shape_of(&base, &r).key, shape_of(&renamed_block, &r).key);
        assert_ne!(shape_of(&base, &r).key, shape_of(&distinct, &r).key);
    }

    #[test]
    fn example_2_1_shapes_are_stable() {
        let (outer, inner) = example_2_1();
        for q in [&outer, &inner] {
            let s1 = shape_of(q, &reserved());
            let s2 = shape_of(q, &reserved());
            assert_eq!(s1, s2);
            assert!(s1.constants.is_empty(), "example 2.1 has no client constants");
        }
    }
}
