//! Abstract syntax of the XQuery fragment handled by the reproduction.
//!
//! The fragment covers what the paper's examples and the XMark-style workload
//! exercise: FLWR expressions with multiple `for` bindings, `where`
//! conjunctions of (in)equalities, element constructors with nested
//! (correlated) subqueries, `distinct(...)`, variable references and paths
//! rooted either at a document or at a variable.

use mars_xml::Path;
use serde::{Deserialize, Serialize};

/// The source of a `for` binding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SourceExpr {
    /// An absolute path, optionally naming the document it navigates
    /// (`document("catalog.xml")//drug` or plain `//book`, which navigates
    /// the default document of the query).
    AbsolutePath {
        /// Explicit document, if `document("…")` was written.
        document: Option<String>,
        /// The path.
        path: Path,
    },
    /// A path starting from a previously bound variable (`$b/author/text()`).
    VarPath {
        /// The context variable (without `$`).
        var: String,
        /// The relative path.
        path: Path,
    },
    /// A bare variable reference (`$a`).
    Var(String),
}

/// One `for $v in source` binding. `distinct` is true when the source was
/// wrapped in `distinct(...)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForBinding {
    /// Bound variable (without `$`).
    pub var: String,
    /// Source expression.
    pub source: SourceExpr,
    /// Whether duplicates are eliminated.
    pub distinct: bool,
}

/// An operand of a `where` comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A variable.
    Var(String),
    /// A string literal.
    Str(String),
}

/// A `where` condition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// `a = b`
    Eq(Operand, Operand),
    /// `a != b`
    Neq(Operand, Operand),
}

/// An XQuery expression.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum XQueryExpr {
    /// An element constructor `<tag> children </tag>`.
    Element {
        /// Tag of the constructed element.
        tag: String,
        /// Content, in order.
        children: Vec<XQueryExpr>,
    },
    /// A FLWR block.
    Flwr {
        /// `for` bindings, in order.
        bindings: Vec<ForBinding>,
        /// Conjunction of `where` conditions.
        conditions: Vec<Condition>,
        /// The `return` expression.
        ret: Box<XQueryExpr>,
    },
    /// A variable reference in content position (`$a`).
    VarRef(String),
    /// Literal text content.
    Literal(String),
    /// A sequence of expressions (element content with several items).
    Sequence(Vec<XQueryExpr>),
}

impl XQueryExpr {
    /// Count the FLWR blocks in the expression (used to check decorrelation:
    /// one XBind query per block).
    pub fn flwr_count(&self) -> usize {
        match self {
            XQueryExpr::Flwr { ret, .. } => 1 + ret.flwr_count(),
            XQueryExpr::Element { children, .. } | XQueryExpr::Sequence(children) => {
                children.iter().map(XQueryExpr::flwr_count).sum()
            }
            XQueryExpr::VarRef(_) | XQueryExpr::Literal(_) => 0,
        }
    }

    /// All variables bound by `for` clauses anywhere in the expression.
    pub fn bound_variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_bound(&mut out);
        out
    }

    fn collect_bound(&self, out: &mut Vec<String>) {
        match self {
            XQueryExpr::Flwr { bindings, ret, .. } => {
                for b in bindings {
                    out.push(b.var.clone());
                }
                ret.collect_bound(out);
            }
            XQueryExpr::Element { children, .. } | XQueryExpr::Sequence(children) => {
                for c in children {
                    c.collect_bound(out);
                }
            }
            XQueryExpr::VarRef(_) | XQueryExpr::Literal(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_path;

    /// Hand-build the Example 2.1 query AST.
    pub(crate) fn example_2_1_ast() -> XQueryExpr {
        let inner = XQueryExpr::Flwr {
            bindings: vec![
                ForBinding {
                    var: "b".into(),
                    source: SourceExpr::AbsolutePath {
                        document: None,
                        path: parse_path("//book").unwrap(),
                    },
                    distinct: false,
                },
                ForBinding {
                    var: "a1".into(),
                    source: SourceExpr::VarPath {
                        var: "b".into(),
                        path: parse_path("./author/text()").unwrap(),
                    },
                    distinct: false,
                },
                ForBinding {
                    var: "t".into(),
                    source: SourceExpr::VarPath {
                        var: "b".into(),
                        path: parse_path("./title").unwrap(),
                    },
                    distinct: false,
                },
            ],
            conditions: vec![Condition::Eq(Operand::Var("a".into()), Operand::Var("a1".into()))],
            ret: Box::new(XQueryExpr::VarRef("t".into())),
        };
        XQueryExpr::Element {
            tag: "result".into(),
            children: vec![XQueryExpr::Flwr {
                bindings: vec![ForBinding {
                    var: "a".into(),
                    source: SourceExpr::AbsolutePath {
                        document: None,
                        path: parse_path("//author/text()").unwrap(),
                    },
                    distinct: true,
                }],
                conditions: vec![],
                ret: Box::new(XQueryExpr::Element {
                    tag: "item".into(),
                    children: vec![
                        XQueryExpr::Element {
                            tag: "writer".into(),
                            children: vec![XQueryExpr::VarRef("a".into())],
                        },
                        inner,
                    ],
                }),
            }],
        }
    }

    #[test]
    fn flwr_counting_and_bound_variables() {
        let q = example_2_1_ast();
        assert_eq!(q.flwr_count(), 2);
        assert_eq!(q.bound_variables(), vec!["a", "b", "a1", "t"]);
    }

    #[test]
    fn literals_and_sequences() {
        let e = XQueryExpr::Sequence(vec![
            XQueryExpr::Literal("hello".into()),
            XQueryExpr::VarRef("x".into()),
        ]);
        assert_eq!(e.flwr_count(), 0);
        assert!(e.bound_variables().is_empty());
    }
}
