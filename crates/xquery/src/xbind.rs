//! XBind queries.
//!
//! "Their general form is akin to conjunctive queries. Their head returns a
//! tuple of variables, and the body atoms can be purely relational or are
//! predicates defined by XPath expressions" (Section 2.1). Variables are
//! surface-level strings here; the compilation to `mars-cq` terms over the
//! GReX schema happens in `mars-grex`.

use mars_xml::Path;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A term of an XBind atom: a variable or a string constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XBindTerm {
    /// A query variable (without the `$` sign).
    Var(String),
    /// A string constant.
    Str(String),
}

impl XBindTerm {
    /// Variable constructor.
    pub fn var(name: &str) -> XBindTerm {
        XBindTerm::Var(name.to_string())
    }

    /// String-constant constructor.
    pub fn str(value: &str) -> XBindTerm {
        XBindTerm::Str(value.to_string())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            XBindTerm::Var(v) => Some(v),
            XBindTerm::Str(_) => None,
        }
    }
}

impl fmt::Display for XBindTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XBindTerm::Var(v) => write!(f, "{v}"),
            XBindTerm::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

/// One atom of an XBind query body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum XBindAtom {
    /// Unary path predicate `[p](y)`: `p` is an absolute path over the given
    /// document and `y` is bound to each node/value it reaches.
    AbsolutePath {
        /// Document the path navigates (public-schema document name).
        document: String,
        /// The absolute path.
        path: Path,
        /// The bound variable.
        var: String,
    },
    /// Binary path predicate `[p](x, y)`: `y` is reachable from the node bound
    /// to `x` along the relative path `p`.
    RelativePath {
        /// The relative path.
        path: Path,
        /// Source (context) variable.
        source: String,
        /// Target variable.
        var: String,
    },
    /// Reference to the result of another (outer, decorrelated) XBind query:
    /// `Xbo(a)` in Example 2.1.
    QueryRef {
        /// Name of the referenced XBind query.
        name: String,
        /// Its head variables.
        vars: Vec<String>,
    },
    /// A purely relational atom (RDB-in-XML encodings, specialization
    /// relations, stored tables).
    Relational {
        /// Relation name.
        relation: String,
        /// Argument terms.
        args: Vec<XBindTerm>,
    },
    /// Equality side condition.
    Eq(XBindTerm, XBindTerm),
    /// Inequality side condition.
    Neq(XBindTerm, XBindTerm),
}

impl XBindAtom {
    /// Variables introduced (bound) by this atom.
    pub fn bound_vars(&self) -> Vec<&str> {
        match self {
            XBindAtom::AbsolutePath { var, .. } => vec![var],
            XBindAtom::RelativePath { var, .. } => vec![var],
            XBindAtom::QueryRef { vars, .. } => vars.iter().map(String::as_str).collect(),
            XBindAtom::Relational { args, .. } => args.iter().filter_map(|t| t.as_var()).collect(),
            XBindAtom::Eq(..) | XBindAtom::Neq(..) => Vec::new(),
        }
    }

    /// All variables mentioned by this atom.
    pub fn all_vars(&self) -> Vec<&str> {
        match self {
            XBindAtom::AbsolutePath { var, .. } => vec![var],
            XBindAtom::RelativePath { source, var, .. } => vec![source, var],
            XBindAtom::QueryRef { vars, .. } => vars.iter().map(String::as_str).collect(),
            XBindAtom::Relational { args, .. } => args.iter().filter_map(|t| t.as_var()).collect(),
            XBindAtom::Eq(a, b) | XBindAtom::Neq(a, b) => {
                [a, b].into_iter().filter_map(|t| t.as_var()).collect()
            }
        }
    }

    /// Is this a navigation (path) atom?
    pub fn is_path(&self) -> bool {
        matches!(self, XBindAtom::AbsolutePath { .. } | XBindAtom::RelativePath { .. })
    }
}

impl fmt::Display for XBindAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XBindAtom::AbsolutePath { document, path, var } => {
                write!(f, "[{path}]@{document}({var})")
            }
            XBindAtom::RelativePath { path, source, var } => write!(f, "[{path}]({source}, {var})"),
            XBindAtom::QueryRef { name, vars } => write!(f, "{name}({})", vars.join(", ")),
            XBindAtom::Relational { relation, args } => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{relation}({})", rendered.join(", "))
            }
            XBindAtom::Eq(a, b) => write!(f, "{a} = {b}"),
            XBindAtom::Neq(a, b) => write!(f, "{a} != {b}"),
        }
    }
}

/// A decorrelated XBind query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct XBindQuery {
    /// Query name (e.g. `Xbo`, `Xbi`).
    pub name: String,
    /// Head variables.
    pub head: Vec<String>,
    /// Body atoms.
    pub atoms: Vec<XBindAtom>,
    /// Whether the bindings should be deduplicated (`distinct(...)`).
    pub distinct: bool,
}

impl XBindQuery {
    /// An empty XBind query.
    pub fn new(name: &str) -> XBindQuery {
        XBindQuery { name: name.to_string(), head: Vec::new(), atoms: Vec::new(), distinct: false }
    }

    /// Builder: set the head variables.
    pub fn with_head(mut self, head: &[&str]) -> XBindQuery {
        self.head = head.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builder: add an atom.
    pub fn with_atom(mut self, atom: XBindAtom) -> XBindQuery {
        self.atoms.push(atom);
        self
    }

    /// Builder: mark the query as duplicate-eliminating.
    pub fn with_distinct(mut self) -> XBindQuery {
        self.distinct = true;
        self
    }

    /// All variables of the query in first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for v in &self.head {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
        for a in &self.atoms {
            for v in a.all_vars() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// Is the query safe (every head variable bound by some atom)?
    pub fn is_safe(&self) -> bool {
        self.head.iter().all(|h| self.atoms.iter().any(|a| a.bound_vars().contains(&h.as_str())))
    }

    /// Number of navigation atoms.
    pub fn path_atom_count(&self) -> usize {
        self.atoms.iter().filter(|a| a.is_path()).count()
    }
}

impl fmt::Display for XBindQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) :- ", self.name, self.head.join(", "))?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Build the two XBind queries of Example 2.1 — used by tests and docs across
/// the workspace.
pub fn example_2_1() -> (XBindQuery, XBindQuery) {
    use mars_xml::parse_path;
    let xbo = XBindQuery::new("Xbo").with_head(&["a"]).with_distinct().with_atom(
        XBindAtom::AbsolutePath {
            document: "books.xml".to_string(),
            path: parse_path("//author/text()").unwrap(),
            var: "a".to_string(),
        },
    );
    let xbi = XBindQuery::new("Xbi")
        .with_head(&["a", "b", "a1", "t"])
        .with_atom(XBindAtom::QueryRef { name: "Xbo".to_string(), vars: vec!["a".to_string()] })
        .with_atom(XBindAtom::AbsolutePath {
            document: "books.xml".to_string(),
            path: parse_path("//book").unwrap(),
            var: "b".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./author/text()").unwrap(),
            source: "b".to_string(),
            var: "a1".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./title").unwrap(),
            source: "b".to_string(),
            var: "t".to_string(),
        })
        .with_atom(XBindAtom::Eq(XBindTerm::var("a"), XBindTerm::var("a1")));
    (xbo, xbi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_2_1_structure() {
        let (xbo, xbi) = example_2_1();
        assert_eq!(xbo.head, vec!["a"]);
        assert!(xbo.distinct);
        assert_eq!(xbo.path_atom_count(), 1);
        assert!(xbo.is_safe());

        assert_eq!(xbi.head, vec!["a", "b", "a1", "t"]);
        assert_eq!(xbi.atoms.len(), 5);
        assert_eq!(xbi.path_atom_count(), 3);
        assert!(xbi.is_safe());
        assert_eq!(xbi.variables(), vec!["a", "b", "a1", "t"]);
    }

    #[test]
    fn safety_detects_unbound_head_variables() {
        let q = XBindQuery::new("Bad")
            .with_head(&["x"])
            .with_atom(XBindAtom::Eq(XBindTerm::var("x"), XBindTerm::str("c")));
        assert!(!q.is_safe());
    }

    #[test]
    fn display_formats() {
        let (xbo, xbi) = example_2_1();
        let s = format!("{xbo}");
        assert!(s.starts_with("Xbo(a) :- "));
        assert!(s.contains("//author/text()"));
        let s2 = format!("{xbi}");
        assert!(s2.contains("Xbo(a)"));
        assert!(s2.contains("a = a1"));
    }

    #[test]
    fn relational_atoms_bind_their_variables() {
        let a = XBindAtom::Relational {
            relation: "drugPrice".to_string(),
            args: vec![XBindTerm::var("d"), XBindTerm::var("p"), XBindTerm::str("usd")],
        };
        assert_eq!(a.bound_vars(), vec!["d", "p"]);
        assert!(!a.is_path());
    }

    #[test]
    fn term_accessors() {
        assert_eq!(XBindTerm::var("x").as_var(), Some("x"));
        assert_eq!(XBindTerm::str("s").as_var(), None);
        assert_eq!(format!("{}", XBindTerm::str("s")), "\"s\"");
    }
}
