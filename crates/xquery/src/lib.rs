//! # mars-xquery — XQuery fragment, XBind queries and XICs
//!
//! MARS splits an XQuery into a *navigation part* and a *tagging template*
//! (Section 2.1, following SilkRoute). The navigation part is described by a
//! set of decorrelated [`XBindQuery`]s — conjunctive-query-like programs whose
//! atoms are XPath predicates — and only this part depends on the schema
//! correspondence, so it is what MARS reformulates. The tagging template is
//! kept aside and re-attached when results are assembled (sorted outer union,
//! implemented in `mars-storage`).
//!
//! This crate provides:
//!
//! * the [`XBindQuery`] intermediate representation and its atoms,
//! * the XQuery fragment AST ([`ast`]) and a recursive-descent
//!   [`parser`](parser::parse_xquery) for it,
//! * [`decorrelate()`](decorrelate::decorrelate) — the FLWR-block
//!   decorrelation of Example 2.1,
//! * XML integrity constraints ([`Xic`]) in the style of Section 2.1
//!   (constraints (1) and (2)).

pub mod ast;
pub mod decorrelate;
pub mod parser;
pub mod shape;
pub mod xbind;
pub mod xic;

pub use ast::{Condition, ForBinding, SourceExpr, XQueryExpr};
pub use decorrelate::{decorrelate, DecorrelatedQuery, TaggingTemplate, TemplateNode};
pub use parser::{parse_xquery, XQueryParseError};
pub use shape::{shape_of, QueryShape};
pub use xbind::{XBindAtom, XBindQuery, XBindTerm};
pub use xic::{Xic, XicConjunct};
