//! XML Integrity Constraints (XICs).
//!
//! XICs "have the same general form as DEDs, in which relational atoms are
//! replaced by predicates defined by XPath expressions" (Section 2.1). They
//! express keys, inclusion constraints (as in XML Schema) and more general
//! integrity constraints; `mars-grex` compiles them to relational DEDs over
//! the GReX schema.

use crate::xbind::{XBindAtom, XBindTerm};
use mars_xml::{parse_path, PathError};
use serde::{Deserialize, Serialize};

/// One disjunct of an XIC conclusion.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct XicConjunct {
    /// Existentially quantified variables.
    pub exists: Vec<String>,
    /// Conclusion atoms (path or relational).
    pub atoms: Vec<XBindAtom>,
    /// Conclusion equalities.
    pub equalities: Vec<(XBindTerm, XBindTerm)>,
}

impl XicConjunct {
    /// A conjunct of atoms only.
    pub fn atoms(atoms: Vec<XBindAtom>) -> XicConjunct {
        XicConjunct { exists: Vec::new(), atoms, equalities: Vec::new() }
    }

    /// A conjunct of equalities only.
    pub fn equalities(equalities: Vec<(XBindTerm, XBindTerm)>) -> XicConjunct {
        XicConjunct { exists: Vec::new(), atoms: Vec::new(), equalities }
    }

    /// Builder: set the existential variables.
    pub fn with_exists(mut self, exists: &[&str]) -> XicConjunct {
        self.exists = exists.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// An XML integrity constraint: `∀ vars. premise → ⋁ conclusions`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Xic {
    /// Constraint name.
    pub name: String,
    /// Premise atoms.
    pub premise: Vec<XBindAtom>,
    /// Disjunction of conclusions (empty = denial).
    pub conclusions: Vec<XicConjunct>,
}

impl Xic {
    /// A general XIC.
    pub fn new(name: &str, premise: Vec<XBindAtom>, conclusions: Vec<XicConjunct>) -> Xic {
        Xic { name: name.to_string(), premise, conclusions }
    }

    /// Paper constraint (2): every element reached by `element_path` has a
    /// child reached by `child_path`. E.g. every `//person` has a `./ssn`.
    ///
    /// Returns the parse error of the offending path instead of panicking —
    /// these constructors sit on the public correspondence-building API, so a
    /// malformed path from a caller must surface as an error, not kill a
    /// resident service.
    pub fn exists_child(
        name: &str,
        document: &str,
        element_path: &str,
        child_path: &str,
    ) -> Result<Xic, PathError> {
        let premise = vec![XBindAtom::AbsolutePath {
            document: document.to_string(),
            path: parse_path(element_path)?,
            var: "p".to_string(),
        }];
        let conclusion = XicConjunct::atoms(vec![XBindAtom::RelativePath {
            path: parse_path(child_path)?,
            source: "p".to_string(),
            var: "s".to_string(),
        }])
        .with_exists(&["s"]);
        Ok(Xic::new(name, premise, vec![conclusion]))
    }

    /// Paper constraint (1): the value reached by `key_path` is a key for the
    /// elements reached by `element_path` — two elements sharing the key value
    /// are equal.
    pub fn key(
        name: &str,
        document: &str,
        element_path: &str,
        key_path: &str,
    ) -> Result<Xic, PathError> {
        let epath = parse_path(element_path)?;
        let kpath = parse_path(key_path)?;
        let premise = vec![
            XBindAtom::AbsolutePath {
                document: document.to_string(),
                path: epath.clone(),
                var: "p".to_string(),
            },
            XBindAtom::RelativePath {
                path: kpath.clone(),
                source: "p".to_string(),
                var: "s".to_string(),
            },
            XBindAtom::AbsolutePath {
                document: document.to_string(),
                path: epath,
                var: "q".to_string(),
            },
            XBindAtom::RelativePath { path: kpath, source: "q".to_string(), var: "s".to_string() },
        ];
        let conclusion = XicConjunct::equalities(vec![(XBindTerm::var("p"), XBindTerm::var("q"))]);
        Ok(Xic::new(name, premise, vec![conclusion]))
    }

    /// DTD-style single-occurrence constraint: every element reached by
    /// `element_path` has at most one child reached by `child_path` — two
    /// such children are the same node. (`<!ELEMENT R (K, A1)>`-style content
    /// models.) Without it, a chase that re-creates an entity's children from
    /// several sources (e.g. two view unfoldings over the same element)
    /// cannot unify the duplicated nodes and the instance grows with a
    /// cross-product of equivalent navigation patterns.
    pub fn unique_child(
        name: &str,
        document: &str,
        element_path: &str,
        child_path: &str,
    ) -> Result<Xic, PathError> {
        let cpath = parse_path(child_path)?;
        let premise = vec![
            XBindAtom::AbsolutePath {
                document: document.to_string(),
                path: parse_path(element_path)?,
                var: "p".to_string(),
            },
            XBindAtom::RelativePath {
                path: cpath.clone(),
                source: "p".to_string(),
                var: "n".to_string(),
            },
            XBindAtom::RelativePath { path: cpath, source: "p".to_string(), var: "m".to_string() },
        ];
        let conclusion = XicConjunct::equalities(vec![(XBindTerm::var("n"), XBindTerm::var("m"))]);
        Ok(Xic::new(name, premise, vec![conclusion]))
    }

    /// A foreign-key style inclusion: every value reached by `from_path`
    /// (under elements of `from_elements`) also appears under `to_path`
    /// (under elements of `to_elements`).
    pub fn inclusion(
        name: &str,
        document: &str,
        from_elements: &str,
        from_path: &str,
        to_elements: &str,
        to_path: &str,
    ) -> Result<Xic, PathError> {
        let premise = vec![
            XBindAtom::AbsolutePath {
                document: document.to_string(),
                path: parse_path(from_elements)?,
                var: "e".to_string(),
            },
            XBindAtom::RelativePath {
                path: parse_path(from_path)?,
                source: "e".to_string(),
                var: "v".to_string(),
            },
        ];
        let conclusion = XicConjunct::atoms(vec![
            XBindAtom::AbsolutePath {
                document: document.to_string(),
                path: parse_path(to_elements)?,
                var: "f".to_string(),
            },
            XBindAtom::RelativePath {
                path: parse_path(to_path)?,
                source: "f".to_string(),
                var: "v".to_string(),
            },
        ])
        .with_exists(&["f"]);
        Ok(Xic::new(name, premise, vec![conclusion]))
    }

    /// Is this a denial constraint?
    pub fn is_denial(&self) -> bool {
        self.conclusions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_child_matches_paper_constraint_2() {
        let xic = Xic::exists_child("person_has_ssn", "people.xml", "//person", "./ssn").unwrap();
        assert_eq!(xic.premise.len(), 1);
        assert_eq!(xic.conclusions.len(), 1);
        assert_eq!(xic.conclusions[0].exists, vec!["s"]);
        assert_eq!(xic.conclusions[0].atoms.len(), 1);
        assert!(!xic.is_denial());
    }

    #[test]
    fn key_matches_paper_constraint_1() {
        let xic = Xic::key("ssn_key", "people.xml", "//person", "./ssn").unwrap();
        assert_eq!(xic.premise.len(), 4);
        assert_eq!(xic.conclusions[0].equalities.len(), 1);
        assert!(xic.conclusions[0].atoms.is_empty());
    }

    #[test]
    fn unique_child_is_an_equality_constraint() {
        let xic = Xic::unique_child("R_one_K", "star.xml", "//R", "./K").unwrap();
        assert_eq!(xic.premise.len(), 3);
        assert_eq!(xic.conclusions.len(), 1);
        assert!(xic.conclusions[0].atoms.is_empty());
        assert_eq!(xic.conclusions[0].equalities, vec![(XBindTerm::var("n"), XBindTerm::var("m"))]);
    }

    #[test]
    fn inclusion_constraint_shape() {
        let xic = Xic::inclusion("fk_a1", "star.xml", "//R", "./A1/text()", "//S1", "./A/text()")
            .unwrap();
        assert_eq!(xic.premise.len(), 2);
        assert_eq!(xic.conclusions[0].atoms.len(), 2);
        assert_eq!(xic.conclusions[0].exists, vec!["f"]);
    }

    /// Regression: every convenience constructor used to `expect()` on path
    /// parsing, killing library callers on a malformed path. Each now
    /// returns the parse error.
    #[test]
    fn malformed_paths_are_errors_not_panics() {
        assert!(Xic::exists_child("x", "d.xml", "//per son", "./ssn").is_err());
        assert!(Xic::exists_child("x", "d.xml", "//person", "./s sn").is_err());
        assert!(Xic::key("x", "d.xml", "//@@", "./ssn").is_err());
        assert!(Xic::key("x", "d.xml", "//person", "").is_err());
        assert!(Xic::unique_child("x", "d.xml", "//R", "./K//").is_err());
        assert!(Xic::inclusion("x", "d.xml", "//R", "bad path", "//S", "./A").is_err());
        let err = Xic::unique_child("x", "d.xml", "//R", "./ /K").unwrap_err();
        assert!(!err.message.is_empty(), "the path error carries a message");
    }

    #[test]
    fn denial_constraints_have_no_conclusions() {
        let d = Xic::new(
            "forbidden",
            vec![XBindAtom::AbsolutePath {
                document: "d.xml".to_string(),
                path: parse_path("//secret").unwrap(),
                var: "x".to_string(),
            }],
            vec![],
        );
        assert!(d.is_denial());
    }
}
