//! Decorrelation: XQuery = navigation part + tagging template.
//!
//! Following the sorted-outer-union approach (Section 2.1), each FLWR block of
//! the query becomes one decorrelated [`XBindQuery`]. An inner block's query
//! references the outer block's result (a `QueryRef` atom) and re-exports the
//! outer variables it uses, preserving the correlation between bindings
//! exactly as `Xbo`/`Xbi` do in Example 2.1. Element constructors and variable
//! references become the *tagging template*, which `mars-storage` uses to
//! assemble the XML result from the blocks' binding tables.

use crate::ast::{Condition, Operand, SourceExpr, XQueryExpr};
use crate::xbind::{XBindAtom, XBindQuery, XBindTerm};
use serde::{Deserialize, Serialize};

/// A node of the tagging template.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TemplateNode {
    /// Construct an element with the given tag and children.
    Element {
        /// Tag name.
        tag: String,
        /// Children templates.
        children: Vec<TemplateNode>,
    },
    /// Emit the value bound to `var` by block `block`.
    VarText {
        /// Index of the XBind block binding the variable.
        block: usize,
        /// Variable name.
        var: String,
    },
    /// For each binding of block `block` (correlated with the enclosing
    /// block's bindings), instantiate the children.
    ForEach {
        /// Index of the XBind block iterated over.
        block: usize,
        /// Children templates instantiated per binding.
        children: Vec<TemplateNode>,
    },
    /// Literal text.
    Literal(String),
}

/// The tagging template of a query.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct TaggingTemplate {
    /// Top-level template nodes.
    pub roots: Vec<TemplateNode>,
}

/// A decorrelated query: one XBind query per FLWR block plus the template.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecorrelatedQuery {
    /// The XBind blocks, outermost first. Block 0 may be a degenerate block
    /// with no atoms when the query has constant structure only.
    pub blocks: Vec<XBindQuery>,
    /// The tagging template referring to the blocks.
    pub template: TaggingTemplate,
}

impl DecorrelatedQuery {
    /// The navigation part: all non-degenerate blocks (what MARS reformulates).
    pub fn navigation(&self) -> Vec<&XBindQuery> {
        self.blocks.iter().filter(|b| !b.atoms.is_empty()).collect()
    }
}

struct Ctx {
    blocks: Vec<XBindQuery>,
    default_document: String,
}

impl Ctx {
    fn fresh_block_name(&self) -> String {
        format!("Xb{}", self.blocks.len())
    }
}

fn operand_to_term(op: &Operand) -> XBindTerm {
    match op {
        Operand::Var(v) => XBindTerm::var(v),
        Operand::Str(s) => XBindTerm::str(s),
    }
}

/// Translate one FLWR block into an XBind query; returns the block index.
fn translate_flwr(
    ctx: &mut Ctx,
    bindings: &[crate::ast::ForBinding],
    conditions: &[Condition],
    parent: Option<usize>,
) -> usize {
    let name = ctx.fresh_block_name();
    let mut q = XBindQuery::new(&name);

    // Correlate with the parent block: import its head variables.
    let mut head: Vec<String> = Vec::new();
    if let Some(p) = parent {
        let parent_head = ctx.blocks[p].head.clone();
        q = q.with_atom(XBindAtom::QueryRef {
            name: ctx.blocks[p].name.clone(),
            vars: parent_head.clone(),
        });
        head.extend(parent_head);
    }

    for b in bindings {
        if b.distinct {
            q = q.with_distinct();
        }
        let atom = match &b.source {
            SourceExpr::AbsolutePath { document, path } => XBindAtom::AbsolutePath {
                document: document.clone().unwrap_or_else(|| ctx.default_document.clone()),
                path: path.clone(),
                var: b.var.clone(),
            },
            SourceExpr::VarPath { var, path } => XBindAtom::RelativePath {
                path: path.clone(),
                source: var.clone(),
                var: b.var.clone(),
            },
            SourceExpr::Var(v) => XBindAtom::Eq(XBindTerm::var(&b.var), XBindTerm::var(v)),
        };
        q = q.with_atom(atom);
        head.push(b.var.clone());
    }
    for c in conditions {
        let atom = match c {
            Condition::Eq(a, b) => XBindAtom::Eq(operand_to_term(a), operand_to_term(b)),
            Condition::Neq(a, b) => XBindAtom::Neq(operand_to_term(a), operand_to_term(b)),
        };
        q = q.with_atom(atom);
    }
    q.head = head;
    ctx.blocks.push(q);
    ctx.blocks.len() - 1
}

/// Translate a return/content expression into template nodes, creating blocks
/// for nested FLWRs. `block` is the index of the enclosing block (providing
/// the variables in scope).
fn translate_content(ctx: &mut Ctx, expr: &XQueryExpr, block: Option<usize>) -> Vec<TemplateNode> {
    match expr {
        XQueryExpr::Literal(s) => vec![TemplateNode::Literal(s.clone())],
        XQueryExpr::VarRef(v) => {
            vec![TemplateNode::VarText { block: block.unwrap_or(0), var: v.clone() }]
        }
        XQueryExpr::Element { tag, children } => {
            let mut out = Vec::new();
            for c in children {
                out.extend(translate_content(ctx, c, block));
            }
            vec![TemplateNode::Element { tag: tag.clone(), children: out }]
        }
        XQueryExpr::Sequence(items) => {
            items.iter().flat_map(|i| translate_content(ctx, i, block)).collect()
        }
        XQueryExpr::Flwr { bindings, conditions, ret } => {
            let idx = translate_flwr(ctx, bindings, conditions, block);
            let children = translate_content(ctx, ret, Some(idx));
            vec![TemplateNode::ForEach { block: idx, children }]
        }
    }
}

/// Decorrelate an XQuery into its navigation XBind queries and tagging
/// template. `default_document` names the public-schema document that
/// document-unqualified absolute paths navigate.
pub fn decorrelate(query: &XQueryExpr, default_document: &str) -> DecorrelatedQuery {
    let mut ctx = Ctx { blocks: Vec::new(), default_document: default_document.to_string() };
    let roots = translate_content(&mut ctx, query, None);
    DecorrelatedQuery { blocks: ctx.blocks, template: TaggingTemplate { roots } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xquery;

    const EXAMPLE_2_1: &str = r#"<result>
        for $a in distinct(//author/text())
        return
          <item>
            <writer>$a</writer>
            {for $b in //book
                 $a1 in $b/author/text()
                 $t in $b/title
             where $a = $a1
             return $t}
          </item>
      </result>"#;

    #[test]
    fn example_2_1_produces_xbo_and_xbi() {
        let ast = parse_xquery(EXAMPLE_2_1).unwrap();
        let dec = decorrelate(&ast, "books.xml");
        assert_eq!(dec.blocks.len(), 2);

        // Outer block: Xb0(a) :- [//author/text()](a), distinct.
        let outer = &dec.blocks[0];
        assert_eq!(outer.head, vec!["a"]);
        assert!(outer.distinct);
        assert_eq!(outer.atoms.len(), 1);

        // Inner block: Xb1(a,b,a1,t) :- Xb0(a), [//book](b),
        //              [./author/text()](b,a1), [./title](b,t), a = a1.
        let inner = &dec.blocks[1];
        assert_eq!(inner.head, vec!["a", "b", "a1", "t"]);
        assert_eq!(inner.atoms.len(), 5);
        assert!(matches!(&inner.atoms[0], XBindAtom::QueryRef { name, vars }
            if name == "Xb0" && vars == &vec!["a".to_string()]));
        assert!(matches!(&inner.atoms[4], XBindAtom::Eq(a, b)
            if a == &XBindTerm::var("a") && b == &XBindTerm::var("a1")));
        assert!(inner.is_safe());
        assert_eq!(dec.navigation().len(), 2);
    }

    #[test]
    fn template_structure_references_blocks() {
        let ast = parse_xquery(EXAMPLE_2_1).unwrap();
        let dec = decorrelate(&ast, "books.xml");
        // <result> { foreach block0: <item><writer>{a}</writer> foreach block1: {t} </item> }
        assert_eq!(dec.template.roots.len(), 1);
        match &dec.template.roots[0] {
            TemplateNode::Element { tag, children } => {
                assert_eq!(tag, "result");
                match &children[0] {
                    TemplateNode::ForEach { block, children } => {
                        assert_eq!(*block, 0);
                        match &children[0] {
                            TemplateNode::Element { tag, children } => {
                                assert_eq!(tag, "item");
                                assert!(
                                    matches!(&children[0], TemplateNode::Element { tag, .. } if tag == "writer")
                                );
                                assert!(matches!(
                                    &children[1],
                                    TemplateNode::ForEach { block: 1, .. }
                                ));
                            }
                            other => panic!("unexpected template {other:?}"),
                        }
                    }
                    other => panic!("unexpected template {other:?}"),
                }
            }
            other => panic!("unexpected template {other:?}"),
        }
    }

    #[test]
    fn unqualified_paths_use_the_default_document() {
        let ast = parse_xquery("for $b in //book return <r>$b</r>").unwrap();
        let dec = decorrelate(&ast, "public.xml");
        match &dec.blocks[0].atoms[0] {
            XBindAtom::AbsolutePath { document, .. } => assert_eq!(document, "public.xml"),
            other => panic!("unexpected atom {other:?}"),
        }
    }

    #[test]
    fn document_qualified_paths_keep_their_document() {
        let ast =
            parse_xquery("for $d in document(\"catalog.xml\")//drug return <r>$d</r>").unwrap();
        let dec = decorrelate(&ast, "public.xml");
        match &dec.blocks[0].atoms[0] {
            XBindAtom::AbsolutePath { document, .. } => assert_eq!(document, "catalog.xml"),
            other => panic!("unexpected atom {other:?}"),
        }
    }

    #[test]
    fn constant_queries_have_no_navigation() {
        let ast = parse_xquery("<hello>world</hello>").unwrap();
        let dec = decorrelate(&ast, "d.xml");
        assert!(dec.blocks.is_empty());
        assert!(dec.navigation().is_empty());
        assert_eq!(dec.template.roots.len(), 1);
    }

    #[test]
    fn deeply_nested_blocks_chain_their_correlation() {
        let ast = parse_xquery(
            "for $a in //x return <o>{for $b in $a/y return <i>{for $c in $b/z return $c}</i>}</o>",
        )
        .unwrap();
        let dec = decorrelate(&ast, "d.xml");
        assert_eq!(dec.blocks.len(), 3);
        assert_eq!(dec.blocks[2].head, vec!["a", "b", "c"]);
        assert!(
            matches!(&dec.blocks[2].atoms[0], XBindAtom::QueryRef { name, .. } if name == "Xb1")
        );
    }
}
