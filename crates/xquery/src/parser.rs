//! Recursive-descent parser for the XQuery fragment.
//!
//! Grammar (informal):
//!
//! ```text
//! expr        := element | flwr | '$'name | string-literal
//! element     := '<' tag '>' content* '</' tag '>'
//! content     := element | '{' expr '}' | '$'name | text
//! flwr        := 'for' binding (',' binding)* ('where' cond ('and' cond)*)? 'return' expr
//! binding     := '$'name 'in' source
//! source      := 'distinct' '(' source ')' | 'document' '(' string ')' path
//!              | path | '$'name path | '$'name
//! cond        := operand ('=' | '!=') operand
//! operand     := '$'name | string-literal
//! ```

use crate::ast::{Condition, ForBinding, Operand, SourceExpr, XQueryExpr};
use mars_xml::parse_path;
use std::fmt;

/// XQuery parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XQueryParseError {
    /// Byte offset.
    pub offset: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for XQueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XQueryParseError {}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: &str) -> Result<T, XQueryParseError> {
        Err(XQueryParseError { offset: self.pos, message: m.to_string() })
    }

    fn ws(&mut self) {
        while matches!(self.s.get(self.pos), Some(b' ' | b'\n' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn starts(&self, kw: &str) -> bool {
        self.s[self.pos..].starts_with(kw.as_bytes())
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.ws();
        if self.starts(kw) {
            let after = self.pos + kw.len();
            let boundary = match self.s.get(after) {
                Some(c) => !c.is_ascii_alphanumeric() && *c != b'_',
                None => true,
            };
            if boundary || !kw.chars().all(|c| c.is_ascii_alphanumeric()) {
                self.pos = after;
                return true;
            }
        }
        false
    }

    fn expect(&mut self, tok: &str) -> Result<(), XQueryParseError> {
        self.ws();
        if self.starts(tok) {
            self.pos += tok.len();
            Ok(())
        } else {
            self.err(&format!("expected '{tok}'"))
        }
    }

    fn name(&mut self) -> Result<String, XQueryParseError> {
        self.ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn variable(&mut self) -> Result<String, XQueryParseError> {
        self.expect("$")?;
        self.name()
    }

    fn string_literal(&mut self) -> Result<String, XQueryParseError> {
        self.ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected string literal"),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                break;
            }
            self.pos += 1;
        }
        if self.peek() != Some(quote) {
            return self.err("unterminated string literal");
        }
        let out = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
        self.pos += 1;
        Ok(out)
    }

    /// Read a path token: a maximal run of path characters.
    fn path_token(&mut self) -> Result<String, XQueryParseError> {
        self.ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric()
                || matches!(c, b'/' | b'_' | b'-' | b'.' | b'@' | b'*' | b'(' | b')')
            {
                // Only the parentheses of `text()` belong to the path: stop at
                // any other '(' and at a ')' that does not close an empty pair
                // (so `distinct(//a/text())` leaves its final ')' unconsumed).
                if c == b'(' && !self.s[start..self.pos].ends_with(b"text") {
                    break;
                }
                if c == b')' && self.s.get(self.pos.wrapping_sub(1)) != Some(&b'(') {
                    break;
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a path");
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn source(&mut self) -> Result<(SourceExpr, bool), XQueryParseError> {
        self.ws();
        if self.keyword("distinct") {
            self.expect("(")?;
            let (inner, _) = self.source()?;
            self.expect(")")?;
            return Ok((inner, true));
        }
        if self.keyword("document") {
            self.expect("(")?;
            let doc = self.string_literal()?;
            self.expect(")")?;
            let tok = self.path_token()?;
            let path = parse_path(&tok)
                .map_err(|e| XQueryParseError { offset: self.pos, message: e.message })?;
            return Ok((SourceExpr::AbsolutePath { document: Some(doc), path }, false));
        }
        if self.peek() == Some(b'$') {
            let var = self.variable()?;
            // Optional trailing path.
            if self.peek() == Some(b'/') {
                let tok = self.path_token()?;
                let path = parse_path(&format!(".{tok}"))
                    .map_err(|e| XQueryParseError { offset: self.pos, message: e.message })?;
                return Ok((SourceExpr::VarPath { var, path }, false));
            }
            return Ok((SourceExpr::Var(var), false));
        }
        let tok = self.path_token()?;
        let path = parse_path(&tok)
            .map_err(|e| XQueryParseError { offset: self.pos, message: e.message })?;
        Ok((SourceExpr::AbsolutePath { document: None, path }, false))
    }

    fn operand(&mut self) -> Result<Operand, XQueryParseError> {
        self.ws();
        if self.peek() == Some(b'$') {
            Ok(Operand::Var(self.variable()?))
        } else {
            Ok(Operand::Str(self.string_literal()?))
        }
    }

    fn condition(&mut self) -> Result<Condition, XQueryParseError> {
        let left = self.operand()?;
        self.ws();
        if self.starts("!=") {
            self.pos += 2;
            Ok(Condition::Neq(left, self.operand()?))
        } else if self.peek() == Some(b'=') {
            self.pos += 1;
            Ok(Condition::Eq(left, self.operand()?))
        } else {
            self.err("expected '=' or '!='")
        }
    }

    fn flwr(&mut self) -> Result<XQueryExpr, XQueryParseError> {
        // 'for' has been consumed by the caller.
        let mut bindings = Vec::new();
        loop {
            let var = self.variable()?;
            self.ws();
            if !self.keyword("in") {
                return self.err("expected 'in'");
            }
            let (source, distinct) = self.source()?;
            bindings.push(ForBinding { var, source, distinct });
            self.ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                continue;
            }
            // XQuery also allows juxtaposed `$x in ...` without comma, as in
            // the paper's Example 2.1 listing.
            self.ws();
            if self.peek() == Some(b'$') {
                continue;
            }
            break;
        }
        let mut conditions = Vec::new();
        if self.keyword("where") {
            loop {
                conditions.push(self.condition()?);
                if !self.keyword("and") {
                    break;
                }
            }
        }
        if !self.keyword("return") {
            return self.err("expected 'return'");
        }
        let ret = self.expr()?;
        Ok(XQueryExpr::Flwr { bindings, conditions, ret: Box::new(ret) })
    }

    fn element(&mut self) -> Result<XQueryExpr, XQueryParseError> {
        self.expect("<")?;
        let tag = self.name()?;
        self.ws();
        if self.starts("/>") {
            self.pos += 2;
            return Ok(XQueryExpr::Element { tag, children: Vec::new() });
        }
        self.expect(">")?;
        let mut children = Vec::new();
        loop {
            self.ws();
            if self.starts("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != tag {
                    return self.err(&format!("mismatched </{close}>, expected </{tag}>"));
                }
                self.expect(">")?;
                break;
            }
            // The paper writes FLWR blocks directly inside element
            // constructors without enclosing braces; accept that too.
            if self.starts("for")
                && matches!(self.s.get(self.pos + 3), Some(b' ' | b'\n' | b'\t' | b'\r'))
            {
                self.pos += 3;
                children.push(self.flwr()?);
                continue;
            }
            match self.peek() {
                Some(b'<') => children.push(self.element()?),
                Some(b'{') => {
                    self.pos += 1;
                    children.push(self.expr()?);
                    self.expect("}")?;
                }
                Some(b'$') => children.push(XQueryExpr::VarRef(self.variable()?)),
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if matches!(c, b'<' | b'{' | b'$') {
                            break;
                        }
                        self.pos += 1;
                    }
                    let text = String::from_utf8_lossy(&self.s[start..self.pos]).trim().to_string();
                    if !text.is_empty() {
                        children.push(XQueryExpr::Literal(text));
                    }
                }
                None => return self.err("unexpected end of input in element"),
            }
        }
        Ok(XQueryExpr::Element { tag, children })
    }

    fn expr(&mut self) -> Result<XQueryExpr, XQueryParseError> {
        self.ws();
        if self.keyword("for") {
            return self.flwr();
        }
        match self.peek() {
            Some(b'<') => self.element(),
            Some(b'$') => Ok(XQueryExpr::VarRef(self.variable()?)),
            Some(b'"') | Some(b'\'') => Ok(XQueryExpr::Literal(self.string_literal()?)),
            _ => self.err("expected an expression"),
        }
    }
}

/// Parse an XQuery from the supported fragment.
pub fn parse_xquery(input: &str) -> Result<XQueryExpr, XQueryParseError> {
    let mut p = P { s: input.as_bytes(), pos: 0 };
    let e = p.expr()?;
    p.ws();
    if p.peek().is_some() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SourceExpr;

    /// The exact query Q of Example 2.1 (modulo whitespace).
    const EXAMPLE_2_1: &str = r#"<result>
        for $a in distinct(//author/text())
        return
          <item>
            <writer>$a</writer>
            {for $b in //book
                 $a1 in $b/author/text()
                 $t in $b/title
             where $a = $a1
             return $t}
          </item>
      </result>"#;

    #[test]
    fn parse_example_2_1() {
        let q = parse_xquery(EXAMPLE_2_1).unwrap();
        assert_eq!(q.flwr_count(), 2);
        assert_eq!(q.bound_variables(), vec!["a", "b", "a1", "t"]);
        // Check the distinct flag and the nested structure.
        if let XQueryExpr::Element { tag, children } = &q {
            assert_eq!(tag, "result");
            if let XQueryExpr::Flwr { bindings, conditions, ret } = &children[0] {
                assert!(bindings[0].distinct);
                assert!(conditions.is_empty());
                if let XQueryExpr::Element { tag, children } = ret.as_ref() {
                    assert_eq!(tag, "item");
                    assert_eq!(children.len(), 2);
                } else {
                    panic!("return of outer block should be <item>");
                }
            } else {
                panic!("first child should be a FLWR");
            }
        } else {
            panic!("query should be an element constructor");
        }
    }

    #[test]
    fn parse_document_function_and_where() {
        let q = parse_xquery(
            r#"for $d in document("catalog.xml")//drug
                   $p in $d/price/text()
               where $p != "0"
               return <cheap>$p</cheap>"#,
        )
        .unwrap();
        if let XQueryExpr::Flwr { bindings, conditions, .. } = &q {
            assert_eq!(bindings.len(), 2);
            match &bindings[0].source {
                SourceExpr::AbsolutePath { document, path } => {
                    assert_eq!(document.as_deref(), Some("catalog.xml"));
                    assert_eq!(path.to_string(), "//drug");
                }
                other => panic!("unexpected source {other:?}"),
            }
            assert_eq!(conditions.len(), 1);
        } else {
            panic!("expected FLWR");
        }
    }

    #[test]
    fn parse_self_closing_and_literals() {
        let q = parse_xquery("<empty/>").unwrap();
        assert_eq!(q, XQueryExpr::Element { tag: "empty".into(), children: vec![] });
        let q2 = parse_xquery("<greet>hello</greet>").unwrap();
        if let XQueryExpr::Element { children, .. } = q2 {
            assert_eq!(children, vec![XQueryExpr::Literal("hello".into())]);
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_xquery("for $x in").is_err());
        assert!(parse_xquery("<a><b></a>").is_err());
        assert!(parse_xquery("for $x //book return $x").is_err());
        assert!(parse_xquery("<a/>junk").is_err());
        let err = parse_xquery("for $x in //b where $x return $x").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn multiple_where_conditions() {
        let q =
            parse_xquery("for $x in //a $y in //b where $x = $y and $x != \"z\" return <r>$x</r>")
                .unwrap();
        if let XQueryExpr::Flwr { conditions, .. } = q {
            assert_eq!(conditions.len(), 2);
        } else {
            panic!();
        }
    }
}
