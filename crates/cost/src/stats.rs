//! The shared statistics catalog: exact per-relation counters exposed by
//! every substrate that stores tuples.
//!
//! The chase grew these counters first — `mars_chase`'s symbolic instance
//! maintains tuple counts, exact per-column distinct counts and scan-work
//! ledgers incrementally on insert, and its adaptive `JoinPlanner` reads them
//! at evaluation time. The storage layer stores its ground facts in the same
//! representation, so it maintains the same counters on insert/load. This
//! trait is the shared read interface: `mars_chase::SymbolicInstance` and
//! `mars_storage::RelationalDatabase` both implement it, and the physical
//! planner ([`crate::physical`]) plans against it without caring which
//! substrate is underneath.
//!
//! All counters are **exact** (maintained on the insert path, never sampled)
//! and **advisory**: they steer plan shape and cost only — a wrong statistic
//! can produce a slow plan, never a wrong answer.

use crate::catalog::{Catalog, RelationStats};
use mars_cq::Predicate;

/// Exact relation-level statistics of a tuple store.
///
/// Implementors: `mars_chase::SymbolicInstance` (the chase's symbolic
/// instance `Inst(Q)`) and `mars_storage::RelationalDatabase` (materialized
/// ground facts). Methods take the relation by [`Predicate`]; unknown
/// relations report zero tuples/columns/distincts.
pub trait StatisticsCatalog {
    /// Number of tuples currently stored in `relation` (0 if absent).
    fn tuple_count(&self, relation: Predicate) -> usize;

    /// Arity of `relation` as observed from its tuples (0 if absent/empty).
    fn column_count(&self, relation: Predicate) -> usize;

    /// Exact number of distinct values in column `col` of `relation`
    /// (0 for an absent relation or an out-of-arity column).
    fn distinct_in_column(&self, relation: Predicate, col: usize) -> usize;

    /// Distinct estimate for a composite key over `cols`: the maximum of the
    /// per-column distinct counts, clamped to `[1, tuple_count]`. A composite
    /// key has at least as many distinct values as its most selective column,
    /// so this conservative under-estimate errs toward predicting *more*
    /// matches (less selective), never fewer.
    fn distinct_for_columns(&self, relation: Predicate, cols: &[usize]) -> usize {
        cols.iter()
            .map(|&c| self.distinct_in_column(relation, c))
            .max()
            .unwrap_or(0)
            .clamp(1, self.tuple_count(relation).max(1))
    }

    /// Expected number of tuples matching one key over `cols` within a window
    /// of `window` tuples, assuming uniformly distributed keys:
    /// `⌈window / distinct(cols)⌉`.
    fn expected_matches(&self, relation: Predicate, cols: &[usize], window: usize) -> usize {
        window.div_ceil(self.distinct_for_columns(relation, cols))
    }

    /// Accumulated rent-or-buy scan work over `cols` (tuple inspections spent
    /// by filtered scans where an index probe would have been preferred).
    /// Substrates without a scan ledger report 0.
    fn scan_work(&self, relation: Predicate, cols: &[usize]) -> usize {
        let _ = (relation, cols);
        0
    }
}

impl Catalog {
    /// Snapshot exact [`StatisticsCatalog`] counters into an estimator
    /// [`Catalog`] for the listed relations, so the backchase's
    /// [`crate::JoinOrderEstimator`] can cost candidates against *measured*
    /// storage instead of synthetic defaults. `distinct_per_column` is the
    /// mean of the per-column distinct counts (the catalog's uniformity
    /// summary); relations absent from the source get zero cardinality.
    pub fn from_statistics<S: StatisticsCatalog + ?Sized>(
        source: &S,
        relations: impl IntoIterator<Item = Predicate>,
    ) -> Catalog {
        let mut catalog = Catalog::default();
        for relation in relations {
            let cardinality = source.tuple_count(relation) as f64;
            let columns = source.column_count(relation);
            let distinct_per_column = if columns == 0 {
                1.0
            } else {
                let total: usize =
                    (0..columns).map(|c| source.distinct_in_column(relation, c)).sum();
                (total as f64 / columns as f64).max(1.0)
            };
            catalog.set(relation, RelationStats { cardinality, distinct_per_column });
        }
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A toy statistics source for trait-level tests.
    struct Fixed(HashMap<Predicate, (usize, Vec<usize>)>);

    impl StatisticsCatalog for Fixed {
        fn tuple_count(&self, relation: Predicate) -> usize {
            self.0.get(&relation).map(|(n, _)| *n).unwrap_or(0)
        }
        fn column_count(&self, relation: Predicate) -> usize {
            self.0.get(&relation).map(|(_, d)| d.len()).unwrap_or(0)
        }
        fn distinct_in_column(&self, relation: Predicate, col: usize) -> usize {
            self.0.get(&relation).and_then(|(_, d)| d.get(col)).copied().unwrap_or(0)
        }
    }

    fn fixture() -> Fixed {
        let mut m = HashMap::new();
        m.insert(Predicate::new("R"), (100, vec![100, 10]));
        m.insert(Predicate::new("S"), (0, vec![]));
        Fixed(m)
    }

    #[test]
    fn composite_distincts_take_the_max_and_clamp() {
        let s = fixture();
        let r = Predicate::new("R");
        assert_eq!(s.distinct_for_columns(r, &[0, 1]), 100);
        assert_eq!(s.distinct_for_columns(r, &[1]), 10);
        assert_eq!(s.expected_matches(r, &[1], 100), 10);
        // Absent relation: distincts clamp to 1, never 0 (no divide-by-zero).
        assert_eq!(s.distinct_for_columns(Predicate::new("missing"), &[0]), 1);
        assert_eq!(s.scan_work(r, &[0]), 0, "default ledger is empty");
    }

    #[test]
    fn catalog_snapshot_uses_measured_counters() {
        let s = fixture();
        let catalog =
            Catalog::from_statistics(&s, [Predicate::new("R"), Predicate::new("missing")]);
        assert_eq!(catalog.get(Predicate::new("R")).cardinality, 100.0);
        assert_eq!(catalog.get(Predicate::new("R")).distinct_per_column, 55.0);
        assert_eq!(catalog.get(Predicate::new("missing")).cardinality, 0.0);
    }
}
