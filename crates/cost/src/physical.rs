//! Logical → physical compilation of conjunctive queries.
//!
//! [`physical_plan`] compiles a [`ConjunctiveQuery`] into an explicit
//! physical operator tree against a [`StatisticsCatalog`]:
//!
//! * [`TableScan`] — one per body atom, with **constant-predicate pushdown**
//!   (constant arguments become scan predicates), intra-atom repeated
//!   variables checked in the scan, and **column pruning** (only columns
//!   consumed above the scan survive);
//! * `HashJoin` — a left-deep join tree whose **join order** and per-join
//!   **build side** are chosen from the catalog's exact statistics (smallest
//!   estimated input first, then greedily the connected atom minimizing the
//!   estimated join output; the smaller estimated side is hashed); join
//!   outputs are pruned to the columns still needed above;
//! * `Filter` — residual inequalities, applied once all operands are bound;
//! * `Project` / `Distinct` — the head row and set semantics at the root.
//!
//! The planner is **advisory by construction**: every choice (order, build
//! side, pruning) changes cost only, never the result set. Executors (see
//! `mars_storage`) are property-tested byte-identical to the naive evaluator
//! for any planner choice.
//!
//! [`PhysicalPlan`]'s [`fmt::Display`] rendering is stable and is snapshot-
//! tested (`tests/golden/plans/`), so plan-shape regressions show up as
//! golden diffs the same way emitted SQL does.

use crate::stats::StatisticsCatalog;
use mars_cq::{ConjunctiveQuery, Constant, Predicate, Term, Variable};
use std::fmt;

/// Where an operand of a `Filter` predicate or `Project` column comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A column of the operator's input row.
    Column(usize),
    /// A literal constant from the query text.
    Const(Constant),
    /// A variable the query body never binds (unsafe query); executors must
    /// emit the variable itself, matching the naive evaluator.
    Unbound(Variable),
}

/// Which side of a hash join is hashed (the other side streams and probes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildSide {
    /// Hash the left (accumulated) input.
    Left,
    /// Hash the right (newly joined scan) input.
    Right,
}

/// A pruned, predicate-pushed scan of one stored relation (one body atom).
#[derive(Clone, Debug)]
pub struct TableScan {
    /// The scanned relation.
    pub relation: Predicate,
    /// Kept input columns, ascending — everything else is pruned at the scan.
    pub columns: Vec<usize>,
    /// The variable each kept column binds (parallel to `columns`).
    pub output: Vec<Variable>,
    /// Pushed-down constant equalities: `(input column, constant)`.
    pub pushdown: Vec<(usize, Constant)>,
    /// Intra-atom repeated-variable equalities: `(first column, later column)`.
    pub duplicates: Vec<(usize, usize)>,
    /// Estimated output rows (from exact tuple counts and distincts).
    pub est_rows: f64,
    /// Tuples the scan reads before pushdown (the relation's cardinality).
    /// Drives [`PhysicalPlan::estimated_cost`]; deliberately not rendered,
    /// so the golden plan snapshots stay shape-only.
    pub input_rows: f64,
}

/// A physical operator tree for one conjunctive query.
#[derive(Clone, Debug)]
pub enum PhysicalPlan {
    /// Scan one relation (leaf).
    TableScan(TableScan),
    /// Hash `build` side on the key columns, stream the other side through it.
    HashJoin {
        /// Accumulated left input.
        left: Box<PhysicalPlan>,
        /// Newly joined right input (always a scan in left-deep plans).
        right: Box<PhysicalPlan>,
        /// Equi-join keys: `(left output column, right output column)`.
        keys: Vec<(usize, usize)>,
        /// Which input is hashed — chosen from estimated cardinalities.
        build: BuildSide,
        /// Left output columns kept after the join (column pruning).
        left_keep: Vec<usize>,
        /// Right output columns kept after the join.
        right_keep: Vec<usize>,
        /// The variable each output column binds (left-kept then right-kept).
        output: Vec<Variable>,
        /// Estimated output rows.
        est_rows: f64,
    },
    /// Residual inequality filter (`left <> right` per predicate).
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Inequality predicates over the input row.
        predicates: Vec<(Operand, Operand)>,
    },
    /// Project the head row out of the final join layout.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// One operand per head term.
        columns: Vec<Operand>,
    },
    /// Set semantics at the root: deduplicate and emit rows in ascending
    /// order (the engine's deterministic output order).
    Distinct {
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// The variables bound by this operator's output columns (empty above
    /// `Project`, whose output is rows, not bindings).
    pub fn output_vars(&self) -> &[Variable] {
        match self {
            PhysicalPlan::TableScan(scan) => &scan.output,
            PhysicalPlan::HashJoin { output, .. } => output,
            PhysicalPlan::Filter { input, .. } => input.output_vars(),
            PhysicalPlan::Project { .. } | PhysicalPlan::Distinct { .. } => &[],
        }
    }

    /// Estimated output rows of this operator.
    pub fn est_rows(&self) -> f64 {
        match self {
            PhysicalPlan::TableScan(scan) => scan.est_rows,
            PhysicalPlan::HashJoin { est_rows, .. } => *est_rows,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Distinct { input } => input.est_rows(),
        }
    }

    /// Estimated total work of executing this operator tree: every scan pays
    /// its full input cardinality, every hash join pays both inputs (build +
    /// probe) plus its output, and the row-at-a-time tail operators pay their
    /// input once more. The unit is "rows touched" — the same unit the
    /// backchase estimators use — so costs are comparable across plans and,
    /// via `mars_cost::route_query`, across backends.
    pub fn estimated_cost(&self) -> f64 {
        match self {
            PhysicalPlan::TableScan(scan) => scan.input_rows,
            PhysicalPlan::HashJoin { left, right, est_rows, .. } => {
                left.estimated_cost()
                    + right.estimated_cost()
                    + left.est_rows()
                    + right.est_rows()
                    + est_rows
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Distinct { input } => input.estimated_cost() + input.est_rows(),
        }
    }
}

/// Compile `q` into a physical plan against `stats`.
///
/// Deterministic: the same query and statistics always produce the same plan
/// (ties break on atom index). The plan changes with the statistics, but the
/// executed *result set* does not — that is the planner's core invariant.
///
/// # Panics
///
/// Panics if the query body is empty (no relation to scan); callers handle
/// body-less queries directly.
pub fn physical_plan(q: &ConjunctiveQuery, stats: &dyn StatisticsCatalog) -> PhysicalPlan {
    assert!(!q.body.is_empty(), "physical_plan requires a non-empty body");

    // Variables consumed above the scans: head, inequalities, other atoms.
    let ineq_vars: Vec<Variable> = q
        .inequalities
        .iter()
        .flat_map(|(a, b)| [a, b])
        .filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
        .collect();
    let head_vars: Vec<Variable> = q
        .head
        .iter()
        .filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
        .collect();
    let atom_vars: Vec<Vec<Variable>> = q
        .body
        .iter()
        .map(|atom| {
            let mut vars = Vec::new();
            for arg in &atom.args {
                if let Term::Var(v) = arg {
                    if !vars.contains(v) {
                        vars.push(*v);
                    }
                }
            }
            vars
        })
        .collect();
    let needed_above_scan = |i: usize, v: &Variable| {
        head_vars.contains(v)
            || ineq_vars.contains(v)
            || atom_vars.iter().enumerate().any(|(j, vars)| j != i && vars.contains(v))
    };

    // One pruned, predicate-pushed scan per atom.
    let scans: Vec<TableScan> = q
        .body
        .iter()
        .enumerate()
        .map(|(i, atom)| {
            let relation = atom.predicate;
            let mut pushdown = Vec::new();
            let mut duplicates = Vec::new();
            let mut first: Vec<(Variable, usize)> = Vec::new();
            for (col, arg) in atom.args.iter().enumerate() {
                match arg {
                    Term::Const(c) => pushdown.push((col, *c)),
                    Term::Var(v) => match first.iter().find(|(fv, _)| fv == v) {
                        Some((_, first_col)) => duplicates.push((*first_col, col)),
                        None => first.push((*v, col)),
                    },
                }
            }
            let (output, columns): (Vec<Variable>, Vec<usize>) =
                first.iter().filter(|(v, _)| needed_above_scan(i, v)).copied().unzip();

            let mut est = stats.tuple_count(relation) as f64;
            for (col, _) in &pushdown {
                est /= stats.distinct_in_column(relation, *col).max(1) as f64;
            }
            for (a, b) in &duplicates {
                let d = stats
                    .distinct_in_column(relation, *a)
                    .max(stats.distinct_in_column(relation, *b))
                    .max(1);
                est /= d as f64;
            }
            TableScan {
                relation,
                columns,
                output,
                pushdown,
                duplicates,
                est_rows: est,
                input_rows: stats.tuple_count(relation) as f64,
            }
        })
        .collect();

    // Greedy stats-driven join order: smallest estimated scan first, then the
    // connected atom minimizing the estimated join output. Disconnected atoms
    // (cross products) are deferred until nothing connected remains.
    let mut remaining: Vec<usize> = (0..scans.len()).collect();
    let start = remaining
        .iter()
        .copied()
        .min_by(|&a, &b| scans[a].est_rows.partial_cmp(&scans[b].est_rows).unwrap().then(a.cmp(&b)))
        .expect("non-empty body");
    remaining.retain(|&i| i != start);

    // Per-variable distinct estimate in the accumulated intermediate result:
    // the minimum distinct count over the scans that bound it so far.
    let var_distinct = |scan: &TableScan, v: &Variable, stats: &dyn StatisticsCatalog| -> f64 {
        scan.output
            .iter()
            .position(|sv| sv == v)
            .map(|k| stats.distinct_in_column(scan.relation, scan.columns[k]).max(1) as f64)
            .unwrap_or(1.0)
    };
    let mut bound_distinct: Vec<(Variable, f64)> =
        scans[start].output.iter().map(|v| (*v, var_distinct(&scans[start], v, stats))).collect();

    let order_atoms_left = |remaining: &[usize], bound: &[(Variable, f64)], cur_est: f64| {
        let mut best: Option<(usize, f64, bool)> = None; // (atom, est_out, connected)
        for &i in remaining {
            let shared: Vec<&Variable> =
                scans[i].output.iter().filter(|v| bound.iter().any(|(bv, _)| bv == *v)).collect();
            let connected = !shared.is_empty();
            let mut est_out = cur_est * scans[i].est_rows;
            for v in &shared {
                let dl = bound.iter().find(|(bv, _)| bv == *v).map(|(_, d)| *d).unwrap_or(1.0);
                let dr = var_distinct(&scans[i], v, stats);
                est_out /= dl.max(dr).max(1.0);
            }
            let better = match &best {
                None => true,
                // A connected atom always beats a cross product; among equals
                // the smaller estimated output wins, ties on atom index.
                Some((_, best_est, best_conn)) => {
                    (connected && !best_conn) || (connected == *best_conn && est_out < *best_est)
                }
            };
            if better {
                best = Some((i, est_out, connected));
            }
        }
        best.expect("remaining is non-empty")
    };

    let mut plan = PhysicalPlan::TableScan(scans[start].clone());
    while !remaining.is_empty() {
        let (next, est_out, _connected) =
            order_atoms_left(&remaining, &bound_distinct, plan.est_rows());
        remaining.retain(|&i| i != next);
        let scan = &scans[next];

        let left_vars: Vec<Variable> = plan.output_vars().to_vec();
        let keys: Vec<(usize, usize)> = left_vars
            .iter()
            .enumerate()
            .filter_map(|(lc, v)| scan.output.iter().position(|sv| sv == v).map(|rc| (lc, rc)))
            .collect();

        // Column pruning at the join output: keep a variable only if the
        // head, an inequality or a not-yet-joined atom still needs it.
        let needed_later = |v: &Variable| {
            head_vars.contains(v)
                || ineq_vars.contains(v)
                || remaining.iter().any(|&j| atom_vars[j].contains(v))
        };
        let left_keep: Vec<usize> =
            (0..left_vars.len()).filter(|&c| needed_later(&left_vars[c])).collect();
        // Shared variables keep their left copy; the right copy is equal by
        // the join and is dropped.
        let right_keep: Vec<usize> = (0..scan.output.len())
            .filter(|&c| needed_later(&scan.output[c]) && !left_vars.contains(&scan.output[c]))
            .collect();
        let output: Vec<Variable> = left_keep
            .iter()
            .map(|&c| left_vars[c])
            .chain(right_keep.iter().map(|&c| scan.output[c]))
            .collect();

        // Build the smaller estimated input; ties build the fresh scan (its
        // hash table is bounded by one relation, not an intermediate result).
        let build =
            if scan.est_rows <= plan.est_rows() { BuildSide::Right } else { BuildSide::Left };

        for v in &scan.output {
            let dr = var_distinct(scan, v, stats);
            match bound_distinct.iter_mut().find(|(bv, _)| bv == v) {
                Some((_, dl)) => *dl = dl.min(dr),
                None => bound_distinct.push((*v, dr)),
            }
        }

        plan = PhysicalPlan::HashJoin {
            left: Box::new(plan),
            right: Box::new(PhysicalPlan::TableScan(scan.clone())),
            keys,
            build,
            left_keep,
            right_keep,
            output,
            est_rows: est_out,
        };
    }

    // Residual inequalities, then the head projection, then set semantics.
    let layout: Vec<Variable> = plan.output_vars().to_vec();
    let operand = |t: &Term| match t {
        Term::Const(c) => Operand::Const(*c),
        Term::Var(v) => match layout.iter().position(|lv| lv == v) {
            Some(c) => Operand::Column(c),
            None => Operand::Unbound(*v),
        },
    };
    if !q.inequalities.is_empty() {
        let predicates = q.inequalities.iter().map(|(a, b)| (operand(a), operand(b))).collect();
        plan = PhysicalPlan::Filter { input: Box::new(plan), predicates };
    }
    let columns = q.head.iter().map(operand).collect();
    plan = PhysicalPlan::Project { input: Box::new(plan), columns };
    PhysicalPlan::Distinct { input: Box::new(plan) }
}

// ---------------------------------------------------------------------------
// Rendering (stable; snapshot-tested under tests/golden/plans/)
// ---------------------------------------------------------------------------

/// Render an operand against the variable layout of the operator's input.
fn render_operand(op: &Operand, layout: &[Variable]) -> String {
    match op {
        Operand::Column(c) => match layout.get(*c) {
            Some(v) => v.to_string(),
            None => format!("#{c}"),
        },
        Operand::Const(c) => format!("'{}'", c.render()),
        Operand::Unbound(v) => format!("unbound({v})"),
    }
}

fn render_node(plan: &PhysicalPlan, f: &mut fmt::Formatter<'_>, prefix: &str) -> fmt::Result {
    match plan {
        PhysicalPlan::TableScan(scan) => {
            let cols: Vec<String> =
                scan.columns.iter().zip(&scan.output).map(|(c, v)| format!("c{c}→{v}")).collect();
            write!(f, "TableScan {} cols=[{}]", scan.relation.name(), cols.join(", "))?;
            if !scan.pushdown.is_empty() {
                let preds: Vec<String> =
                    scan.pushdown.iter().map(|(c, k)| format!("c{c}='{}'", k.render())).collect();
                write!(f, " pushdown=[{}]", preds.join(", "))?;
            }
            if !scan.duplicates.is_empty() {
                let dups: Vec<String> =
                    scan.duplicates.iter().map(|(a, b)| format!("c{a}=c{b}")).collect();
                write!(f, " dup=[{}]", dups.join(", "))?;
            }
            write!(f, " ~{:.0} rows", scan.est_rows)
        }
        PhysicalPlan::HashJoin { left, right, keys, build, output, est_rows, .. } => {
            let lvars = left.output_vars();
            let key_names: Vec<String> = keys
                .iter()
                .map(|(lc, _)| match lvars.get(*lc) {
                    Some(v) => v.to_string(),
                    None => format!("#{lc}"),
                })
                .collect();
            let side = match build {
                BuildSide::Left => "left",
                BuildSide::Right => "right",
            };
            let out: Vec<String> = output.iter().map(|v| v.to_string()).collect();
            writeln!(
                f,
                "HashJoin on [{}] build={side} out=[{}] ~{est_rows:.0} rows",
                key_names.join(", "),
                out.join(", "),
            )?;
            write!(f, "{prefix}├─ ")?;
            render_node(left, f, &format!("{prefix}│  "))?;
            writeln!(f)?;
            write!(f, "{prefix}└─ ")?;
            render_node(right, f, &format!("{prefix}   "))
        }
        PhysicalPlan::Filter { input, predicates } => {
            let layout = input.output_vars();
            let preds: Vec<String> = predicates
                .iter()
                .map(|(a, b)| {
                    format!("{} <> {}", render_operand(a, layout), render_operand(b, layout))
                })
                .collect();
            writeln!(f, "Filter [{}]", preds.join(", "))?;
            write!(f, "{prefix}└─ ")?;
            render_node(input, f, &format!("{prefix}   "))
        }
        PhysicalPlan::Project { input, columns } => {
            let layout = input.output_vars();
            let cols: Vec<String> = columns.iter().map(|op| render_operand(op, layout)).collect();
            writeln!(f, "Project [{}]", cols.join(", "))?;
            write!(f, "{prefix}└─ ")?;
            render_node(input, f, &format!("{prefix}   "))
        }
        PhysicalPlan::Distinct { input } => {
            writeln!(f, "Distinct")?;
            write!(f, "{prefix}└─ ")?;
            render_node(input, f, &format!("{prefix}   "))
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        render_node(self, f, "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::Atom;
    use std::collections::HashMap;

    struct Fixed(HashMap<Predicate, (usize, Vec<usize>)>);

    impl StatisticsCatalog for Fixed {
        fn tuple_count(&self, relation: Predicate) -> usize {
            self.0.get(&relation).map(|(n, _)| *n).unwrap_or(0)
        }
        fn column_count(&self, relation: Predicate) -> usize {
            self.0.get(&relation).map(|(_, d)| d.len()).unwrap_or(0)
        }
        fn distinct_in_column(&self, relation: Predicate, col: usize) -> usize {
            self.0.get(&relation).and_then(|(_, d)| d.get(col)).copied().unwrap_or(0)
        }
    }

    fn stats(entries: &[(&str, usize, &[usize])]) -> Fixed {
        Fixed(entries.iter().map(|(name, n, d)| (Predicate::new(name), (*n, d.to_vec()))).collect())
    }

    /// `Q(x, z) :- big(x, y), small(y, z, 'k')` — the plan must start from
    /// the smaller scan, push the constant into it, and build on it.
    #[test]
    fn join_order_and_build_side_follow_statistics() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x"), Term::var("z")])
            .with_body(vec![
                Atom::named("big", vec![Term::var("x"), Term::var("y")]),
                Atom::named("small", vec![Term::var("y"), Term::var("z"), Term::constant_str("k")]),
            ]);
        let s = stats(&[("big", 10_000, &[10_000, 100]), ("small", 50, &[50, 50, 5])]);
        let plan = physical_plan(&q, &s);
        let text = plan.to_string();
        assert!(text.contains("pushdown=[c2='k']"), "constant must be pushed down:\n{text}");
        // The left-deep start is the selective `small` scan, so the join
        // builds on the accumulated (smaller) left side.
        assert!(text.contains("build=left"), "build side must follow estimates:\n{text}");
        let first_scan = text.lines().find(|l| l.contains("TableScan")).unwrap();
        assert!(first_scan.contains("small"), "must start from the selective scan:\n{text}");
    }

    /// Columns bound to variables used nowhere else are pruned at the scan.
    #[test]
    fn unused_columns_are_pruned() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![Term::var("a")]).with_body(vec![
            Atom::named("r", vec![Term::var("a"), Term::var("junk"), Term::var("b")]),
            Atom::named("s", vec![Term::var("b"), Term::var("junk2")]),
        ]);
        let s = stats(&[("r", 10, &[10, 10, 10]), ("s", 10, &[10, 10])]);
        let plan = physical_plan(&q, &s);
        let text = plan.to_string();
        assert!(!text.contains("junk"), "unused columns must be pruned:\n{text}");
        assert!(text.contains("c0→a"), "needed columns must survive:\n{text}");
    }

    /// Repeated variables inside one atom become scan-level equalities.
    #[test]
    fn duplicate_variables_check_in_the_scan() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![Atom::named("r", vec![Term::var("x"), Term::var("x")])]);
        let s = stats(&[("r", 10, &[5, 5])]);
        let plan = physical_plan(&q, &s);
        let text = plan.to_string();
        assert!(text.contains("dup=[c0=c1]"), "repeated variable must be a scan check:\n{text}");
        assert!(text.contains("~2 rows"), "duplicate check must reduce the estimate:\n{text}");
    }

    /// Inequalities survive as a residual Filter; head constants project as
    /// literals; unsafe head variables render as unbound.
    #[test]
    fn filter_project_and_unbound_render() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x"), Term::constant_str("tag"), Term::var("ghost")])
            .with_body(vec![Atom::named("r", vec![Term::var("x"), Term::var("y")])])
            .with_inequality(Term::var("x"), Term::var("y"));
        let s = stats(&[("r", 10, &[10, 10])]);
        let text = physical_plan(&q, &s).to_string();
        assert!(text.contains("Filter [x <> y]"), "{text}");
        assert!(text.contains("Project [x, 'tag', unbound(ghost)]"), "{text}");
        assert!(text.starts_with("Distinct"), "{text}");
    }
}
