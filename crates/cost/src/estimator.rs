//! The plug-in cost estimator interface and a simple weighted-atom model.

use mars_cq::{AtomSet, ConjunctiveQuery};

/// A plug-in cost estimator.
///
/// MARS only requires the model to be **monotone**: if `S` is a subquery of
/// `U` (its body atoms are a subset of `U`'s), then `estimate(S) <=
/// estimate(U)`. Under monotonicity the cost-based pruning of the backchase
/// (discard any subquery costing more than the best reformulation found so
/// far, together with all its superqueries) never discards the optimum.
pub trait CostEstimator: Send + Sync {
    /// Estimated cost of evaluating the query.
    fn estimate(&self, query: &ConjunctiveQuery) -> f64;

    /// For *additive* models, the per-atom cost contributions of `query`'s
    /// body: any subquery's cost is then the sum over its atoms, which lets
    /// the backchase fold a subset bitmask over precomputed weights instead
    /// of calling [`CostEstimator::estimate`] per candidate. Models whose
    /// cost is not a per-atom sum return `None` (the default) and the
    /// backchase falls back to a full estimate per candidate.
    fn atom_costs(&self, _query: &ConjunctiveQuery) -> Option<Vec<f64>> {
        None
    }

    /// A short human-readable name, used in experiment output.
    fn name(&self) -> &'static str {
        "cost-estimator"
    }
}

/// Fold precomputed per-atom costs ([`CostEstimator::atom_costs`]) over a
/// candidate atom set: the cost of the induced subquery under an additive
/// model. This is the backchase's per-candidate cost path — an O(words)
/// bitset iteration instead of a full estimate, for pools of any width (the
/// former `u128`-mask fold capped pools at 128 atoms).
pub fn fold_atom_costs(costs: &[f64], atoms: &AtomSet) -> f64 {
    atoms.iter().map(|i| costs[i]).sum()
}

/// A simple monotone model charging a fixed weight per body atom, with
/// navigation-aware weights: `desc` (descendant) atoms are charged more than
/// `child` atoms, reflecting the paper's observation (pruning criterion 1 in
/// Section 3.2) that "in any reasonable cost model accessing the descendants
/// of a node is at least as expensive as accessing its children".
#[derive(Clone, Debug)]
pub struct WeightedAtomEstimator {
    /// Weight of a `child` atom.
    pub child_weight: f64,
    /// Weight of a `desc` atom.
    pub desc_weight: f64,
    /// Weight of any other atom.
    pub default_weight: f64,
}

impl Default for WeightedAtomEstimator {
    fn default() -> Self {
        WeightedAtomEstimator { child_weight: 1.0, desc_weight: 4.0, default_weight: 2.0 }
    }
}

impl WeightedAtomEstimator {
    fn atom_cost(&self, a: &mars_cq::Atom) -> f64 {
        let name = a.predicate.name();
        // GReX predicates carry a `#document` suffix.
        let base = name.split_once('#').map(|(b, _)| b).unwrap_or(name);
        match base {
            "child" => self.child_weight,
            "desc" => self.desc_weight,
            _ => self.default_weight,
        }
    }
}

impl CostEstimator for WeightedAtomEstimator {
    fn estimate(&self, query: &ConjunctiveQuery) -> f64 {
        query.body.iter().map(|a| self.atom_cost(a)).sum()
    }

    fn atom_costs(&self, query: &ConjunctiveQuery) -> Option<Vec<f64>> {
        Some(query.body.iter().map(|a| self.atom_cost(a)).collect())
    }

    fn name(&self) -> &'static str {
        "weighted-atom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn desc_costs_more_than_child() {
        let est = WeightedAtomEstimator::default();
        let with_child = ConjunctiveQuery::new("C")
            .with_head(vec![t("x")])
            .with_body(vec![child(t("x"), t("y"))]);
        let with_desc = ConjunctiveQuery::new("D")
            .with_head(vec![t("x")])
            .with_body(vec![desc(t("x"), t("y"))]);
        assert!(est.estimate(&with_desc) > est.estimate(&with_child));
    }

    #[test]
    fn monotone_in_number_of_atoms() {
        let est = WeightedAtomEstimator::default();
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x")]).with_body(vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("S", vec![t("y"), t("z")]),
            desc(t("x"), t("z")),
        ]);
        for k in 1..=q.body.len() {
            let idx: Vec<usize> = (0..k).collect();
            let sub = q.subquery(&idx);
            assert!(est.estimate(&sub) <= est.estimate(&q));
        }
    }

    #[test]
    fn name_reported() {
        assert_eq!(WeightedAtomEstimator::default().name(), "weighted-atom");
    }

    /// The additivity contract of `atom_costs`: the per-atom costs of any
    /// query sum to its estimate, so an [`AtomSet`] fold over them equals a
    /// full estimate of the corresponding subquery.
    #[test]
    fn atom_costs_sum_to_estimate() {
        let est = WeightedAtomEstimator::default();
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x")]).with_body(vec![
            child(t("x"), t("y")),
            desc(t("y"), t("z")),
            Atom::named("V", vec![t("z")]),
        ]);
        let costs = est.atom_costs(&q).expect("weighted-atom model is additive");
        assert_eq!(costs.len(), q.body.len());
        assert_eq!(costs.iter().sum::<f64>(), est.estimate(&q));
        // Per-subquery agreement, through the backchase's fold path.
        let sub = q.subquery(&[0, 2]);
        let set = AtomSet::from_indices([0, 2]);
        assert_eq!(fold_atom_costs(&costs, &set), est.estimate(&sub));
        assert_eq!(costs[0] + costs[2], est.estimate(&sub));
    }
}
