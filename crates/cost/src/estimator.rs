//! The plug-in cost estimator interface and a simple weighted-atom model.

use mars_cq::ConjunctiveQuery;

/// A plug-in cost estimator.
///
/// MARS only requires the model to be **monotone**: if `S` is a subquery of
/// `U` (its body atoms are a subset of `U`'s), then `estimate(S) <=
/// estimate(U)`. Under monotonicity the cost-based pruning of the backchase
/// (discard any subquery costing more than the best reformulation found so
/// far, together with all its superqueries) never discards the optimum.
pub trait CostEstimator: Send + Sync {
    /// Estimated cost of evaluating the query.
    fn estimate(&self, query: &ConjunctiveQuery) -> f64;

    /// A short human-readable name, used in experiment output.
    fn name(&self) -> &'static str {
        "cost-estimator"
    }
}

/// A simple monotone model charging a fixed weight per body atom, with
/// navigation-aware weights: `desc` (descendant) atoms are charged more than
/// `child` atoms, reflecting the paper's observation (pruning criterion 1 in
/// Section 3.2) that "in any reasonable cost model accessing the descendants
/// of a node is at least as expensive as accessing its children".
#[derive(Clone, Debug)]
pub struct WeightedAtomEstimator {
    /// Weight of a `child` atom.
    pub child_weight: f64,
    /// Weight of a `desc` atom.
    pub desc_weight: f64,
    /// Weight of any other atom.
    pub default_weight: f64,
}

impl Default for WeightedAtomEstimator {
    fn default() -> Self {
        WeightedAtomEstimator { child_weight: 1.0, desc_weight: 4.0, default_weight: 2.0 }
    }
}

impl CostEstimator for WeightedAtomEstimator {
    fn estimate(&self, query: &ConjunctiveQuery) -> f64 {
        query
            .body
            .iter()
            .map(|a| {
                let name = a.predicate.name();
                // GReX predicates carry a `#document` suffix.
                let base = name.split_once('#').map(|(b, _)| b).unwrap_or(name.as_str());
                match base {
                    "child" => self.child_weight,
                    "desc" => self.desc_weight,
                    _ => self.default_weight,
                }
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "weighted-atom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn desc_costs_more_than_child() {
        let est = WeightedAtomEstimator::default();
        let with_child = ConjunctiveQuery::new("C")
            .with_head(vec![t("x")])
            .with_body(vec![child(t("x"), t("y"))]);
        let with_desc = ConjunctiveQuery::new("D")
            .with_head(vec![t("x")])
            .with_body(vec![desc(t("x"), t("y"))]);
        assert!(est.estimate(&with_desc) > est.estimate(&with_child));
    }

    #[test]
    fn monotone_in_number_of_atoms() {
        let est = WeightedAtomEstimator::default();
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x")]).with_body(vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("S", vec![t("y"), t("z")]),
            desc(t("x"), t("z")),
        ]);
        for k in 1..=q.body.len() {
            let idx: Vec<usize> = (0..k).collect();
            let sub = q.subquery(&idx);
            assert!(est.estimate(&sub) <= est.estimate(&q));
        }
    }

    #[test]
    fn name_reported() {
        assert_eq!(WeightedAtomEstimator::default().name(), "weighted-atom");
    }
}
