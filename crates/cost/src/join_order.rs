//! Join reordering with dynamic programming, used to cost backchase
//! subqueries.
//!
//! The paper (Section 2.3, following Popa's thesis) notes that "a subquery is
//! not yet an execution plan, it only specifies which relations are to be
//! joined. To cost a subquery, the algorithm performs join reordering using
//! dynamic programming." This module implements a System-R style left-deep
//! enumeration over subsets for small queries and a greedy fallback for the
//! universal plans with hundreds of atoms produced by the XML reduction.

use crate::catalog::Catalog;
use crate::estimator::CostEstimator;
use mars_cq::{Atom, ConjunctiveQuery, Term, Variable};
use std::collections::{HashMap, HashSet};

/// Result of join ordering: estimated cost and the chosen atom order.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinPlan {
    /// Estimated total cost (sum of intermediate result cardinalities).
    pub cost: f64,
    /// Atom indices in join order (left-deep).
    pub order: Vec<usize>,
}

/// The default MARS cost estimator: join reordering by dynamic programming
/// when the query is small enough, greedy ordering otherwise.
#[derive(Clone, Debug)]
pub struct JoinOrderEstimator {
    catalog: Catalog,
    /// Maximum number of atoms for exhaustive subset DP; larger queries use
    /// the greedy ordering.
    pub dp_atom_limit: usize,
    /// Selectivity applied per constant argument of an atom.
    pub constant_selectivity: f64,
}

impl JoinOrderEstimator {
    /// An estimator over the given catalog with default settings.
    pub fn new(catalog: Catalog) -> JoinOrderEstimator {
        JoinOrderEstimator { catalog, dp_atom_limit: 12, constant_selectivity: 0.1 }
    }

    /// Access the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (e.g. to register view statistics).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Base cardinality of a single atom: relation cardinality reduced by the
    /// selectivity of each constant argument.
    fn atom_cardinality(&self, atom: &Atom) -> f64 {
        let stats = self.catalog.get(atom.predicate);
        let consts = atom.args.iter().filter(|t| t.is_const()).count() as i32;
        (stats.cardinality * self.constant_selectivity.powi(consts)).max(1.0)
    }

    /// Distinct-value estimate for a variable: the minimum distinct count over
    /// the relations in which it occurs (within the given atoms).
    fn var_distinct(&self, atoms: &[&Atom], v: Variable) -> f64 {
        let mut best = f64::INFINITY;
        for a in atoms {
            if a.mentions(v) {
                best = best.min(self.catalog.get(a.predicate).distinct_per_column);
            }
        }
        if best.is_finite() {
            best.max(1.0)
        } else {
            1.0
        }
    }

    /// Order-independent cardinality estimate of joining a set of atoms:
    /// product of base cardinalities divided, for every variable shared by
    /// `k > 1` atoms, by `distinct(v)^(k-1)`.
    fn subset_cardinality(&self, atoms: &[&Atom]) -> f64 {
        if atoms.is_empty() {
            return 0.0;
        }
        let mut card: f64 = atoms.iter().map(|a| self.atom_cardinality(a)).product();
        let mut occurrences: HashMap<Variable, usize> = HashMap::new();
        for a in atoms {
            let vars: HashSet<Variable> = a.variables().collect();
            for v in vars {
                *occurrences.entry(v).or_insert(0) += 1;
            }
        }
        for (v, k) in occurrences {
            if k > 1 {
                let d = self.var_distinct(atoms, v);
                card /= d.powi((k - 1) as i32);
            }
        }
        card.max(1.0)
    }

    /// Exhaustive left-deep DP over subsets; only called for small bodies.
    fn dp_plan(&self, body: &[Atom]) -> JoinPlan {
        let n = body.len();
        let refs: Vec<&Atom> = body.iter().collect();
        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        // best[mask] = (cost, last_atom, predecessor_mask)
        let mut best: HashMap<u32, (f64, usize, u32)> = HashMap::new();
        for (i, atom) in body.iter().enumerate() {
            let mask = 1u32 << i;
            best.insert(mask, (self.atom_cardinality(atom), i, 0));
        }
        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            let subset: Vec<&Atom> =
                (0..n).filter(|i| mask & (1 << i) != 0).map(|i| refs[i]).collect();
            let card = self.subset_cardinality(&subset);
            let mut entry: Option<(f64, usize, u32)> = None;
            for i in 0..n {
                if mask & (1 << i) == 0 {
                    continue;
                }
                let prev = mask & !(1 << i);
                if let Some(&(prev_cost, _, _)) = best.get(&prev) {
                    let cost = prev_cost + card;
                    if entry.map(|(c, _, _)| cost < c).unwrap_or(true) {
                        entry = Some((cost, i, prev));
                    }
                }
            }
            if let Some(e) = entry {
                best.insert(mask, e);
            }
        }
        // Reconstruct order.
        let mut order = Vec::with_capacity(n);
        let mut mask = full;
        let total_cost = best.get(&full).map(|(c, _, _)| *c).unwrap_or(0.0);
        while mask != 0 {
            let (_, last, prev) = best[&mask];
            order.push(last);
            mask = prev;
        }
        order.reverse();
        JoinPlan { cost: total_cost, order }
    }

    /// Greedy ordering for large bodies: start from the cheapest atom, then
    /// repeatedly add the atom minimizing the running intermediate
    /// cardinality, preferring atoms connected to the current prefix.
    fn greedy_plan(&self, body: &[Atom]) -> JoinPlan {
        let n = body.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut chosen: Vec<&Atom> = Vec::with_capacity(n);
        let mut cost = 0.0;
        // Start with the cheapest single atom.
        remaining.sort_by(|&a, &b| {
            self.atom_cardinality(&body[a])
                .partial_cmp(&self.atom_cardinality(&body[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        while !remaining.is_empty() {
            let mut best_pos = 0;
            let mut best_card = f64::INFINITY;
            let prefix_vars: HashSet<Variable> =
                chosen.iter().flat_map(|a| a.variables()).collect();
            for (pos, &idx) in remaining.iter().enumerate() {
                let connected =
                    chosen.is_empty() || body[idx].variables().any(|v| prefix_vars.contains(&v));
                let mut candidate = chosen.clone();
                candidate.push(&body[idx]);
                let mut card = self.subset_cardinality(&candidate);
                if !connected {
                    // Penalize Cartesian products so connected atoms are taken first.
                    card *= 1e6;
                }
                if card < best_card {
                    best_card = card;
                    best_pos = pos;
                }
            }
            let idx = remaining.remove(best_pos);
            chosen.push(&body[idx]);
            order.push(idx);
            cost += self.subset_cardinality(&chosen);
        }
        JoinPlan { cost, order }
    }

    /// Produce a full join plan (cost + order) for the query body.
    pub fn plan(&self, query: &ConjunctiveQuery) -> JoinPlan {
        if query.body.is_empty() {
            return JoinPlan { cost: 0.0, order: Vec::new() };
        }
        if query.body.len() <= self.dp_atom_limit && query.body.len() < 20 {
            self.dp_plan(&query.body)
        } else {
            self.greedy_plan(&query.body)
        }
    }
}

impl CostEstimator for JoinOrderEstimator {
    fn estimate(&self, query: &ConjunctiveQuery) -> f64 {
        self.plan(query).cost
    }

    fn name(&self) -> &'static str {
        "join-order-dp"
    }
}

/// Helper used by tests and experiments: the estimated output cardinality of
/// the whole query under the estimator's catalog.
pub fn estimated_result_size(est: &JoinOrderEstimator, query: &ConjunctiveQuery) -> f64 {
    let refs: Vec<&Atom> = query.body.iter().collect();
    est.subset_cardinality(&refs)
}

/// Convenience: does the estimated plan avoid Cartesian products (every atom
/// after the first shares a variable with the prefix)? Mirrors the sideways
/// information passing remark in Section 3.2 of the paper.
pub fn plan_is_connected(query: &ConjunctiveQuery, plan: &JoinPlan) -> bool {
    let mut seen: HashSet<Variable> = HashSet::new();
    for (i, &idx) in plan.order.iter().enumerate() {
        let atom = &query.body[idx];
        let vars: Vec<Variable> = atom.variables().collect();
        if i > 0 && !vars.iter().any(|v| seen.contains(v)) && !vars.is_empty() {
            return false;
        }
        seen.extend(vars);
    }
    true
}

#[allow(dead_code)]
fn _silence_unused(_: Term) {}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::{Atom, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    fn chain_query(n: usize) -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::new("chain").with_head(vec![t("x0")]);
        for i in 0..n {
            q = q.with_atom(Atom::named(
                &format!("R{i}"),
                vec![t(&format!("x{i}")), t(&format!("x{}", i + 1))],
            ));
        }
        q
    }

    #[test]
    fn empty_query_costs_zero() {
        let est = JoinOrderEstimator::new(Catalog::default());
        let q = ConjunctiveQuery::new("empty");
        assert_eq!(est.estimate(&q), 0.0);
        assert!(est.plan(&q).order.is_empty());
    }

    #[test]
    fn dp_plan_orders_all_atoms() {
        let est = JoinOrderEstimator::new(Catalog::with_default_cardinality(100.0));
        let q = chain_query(4);
        let plan = est.plan(&q);
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert!(plan.cost > 0.0);
    }

    #[test]
    fn selective_relations_are_joined_first() {
        let mut catalog = Catalog::with_default_cardinality(10_000.0);
        catalog.set_cardinality("Tiny", 2.0);
        catalog.set_cardinality("Huge", 1_000_000.0);
        let est = JoinOrderEstimator::new(catalog);
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x")]).with_body(vec![
            Atom::named("Huge", vec![t("x"), t("y")]),
            Atom::named("Tiny", vec![t("x")]),
        ]);
        let plan = est.plan(&q);
        assert_eq!(plan.order[0], 1, "the tiny relation should lead the join");
    }

    #[test]
    fn constants_increase_selectivity() {
        let est = JoinOrderEstimator::new(Catalog::with_default_cardinality(1000.0));
        let generic = ConjunctiveQuery::new("G")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("tag", vec![t("x"), t("name")])]);
        let selective = ConjunctiveQuery::new("S")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("tag", vec![t("x"), Term::constant_str("author")])]);
        assert!(est.estimate(&selective) < est.estimate(&generic));
    }

    #[test]
    fn greedy_is_used_for_large_bodies_and_stays_finite() {
        let est = JoinOrderEstimator::new(Catalog::with_default_cardinality(50.0));
        let q = chain_query(40);
        let plan = est.plan(&q);
        assert_eq!(plan.order.len(), 40);
        assert!(plan.cost.is_finite());
        assert!(plan_is_connected(&q, &plan));
    }

    #[test]
    fn dp_and_greedy_agree_on_ordering_quality_for_chains() {
        let mut est = JoinOrderEstimator::new(Catalog::with_default_cardinality(100.0));
        let q = chain_query(6);
        let dp = est.plan(&q);
        est.dp_atom_limit = 0; // force greedy
        let greedy = est.plan(&q);
        // Greedy is never better than DP by construction of DP optimality,
        // and both must remain within a small factor for simple chains.
        assert!(greedy.cost >= dp.cost * 0.99);
        assert!(greedy.cost <= dp.cost * 10.0);
    }

    #[test]
    fn estimated_result_size_shrinks_with_shared_variables() {
        let est = JoinOrderEstimator::new(Catalog::with_default_cardinality(100.0));
        let joined = ConjunctiveQuery::new("J").with_head(vec![t("x")]).with_body(vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("S", vec![t("y"), t("z")]),
        ]);
        let cross = ConjunctiveQuery::new("X").with_head(vec![t("x")]).with_body(vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("S", vec![t("u"), t("z")]),
        ]);
        assert!(estimated_result_size(&est, &joined) < estimated_result_size(&est, &cross));
    }

    #[test]
    fn plan_connectivity_detector() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x")]).with_body(vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("S", vec![t("a"), t("b")]),
            Atom::named("T", vec![t("y"), t("a")]),
        ]);
        let bad = JoinPlan { cost: 0.0, order: vec![0, 1, 2] };
        let good = JoinPlan { cost: 0.0, order: vec![0, 2, 1] };
        assert!(!plan_is_connected(&q, &bad));
        assert!(plan_is_connected(&q, &good));
    }
}
