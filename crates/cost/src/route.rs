//! Statistics-driven backend routing for reformulated query blocks.
//!
//! The backchase picks the cheapest *reformulation*; this module picks the
//! cheapest *backend* for executing it. A minimal reformulation over GReX
//! navigation predicates can run three ways:
//!
//! * **relational** — through the physical executor over the loaded ground
//!   facts and materialized views ([`crate::physical_plan`]);
//! * **xml** — by native navigation of the stored documents (feasible only
//!   when every body atom is a GReX navigation atom over a stored document);
//! * **mixed** — navigation atoms on the XML engine, the rest on the
//!   relational engine, hash-joined on the shared variables (feasible only
//!   when both groups are non-empty).
//!
//! [`route_query`] prices all three against a [`StatisticsCatalog`] (the
//! relational side) and a [`NavigationStatistics`] source (the XML side) and
//! returns a [`RoutingDecision`]. The decision is **advisory by
//! construction**: every route returns byte-identical rows (property-tested
//! in `mars-storage`'s router and in `tests/property_based.rs`), so a bad
//! estimate costs time, never correctness. Decisions render stably and are
//! golden-snapshotted under `tests/golden/routes/`.

use crate::physical_plan;
use crate::stats::StatisticsCatalog;
use mars_cq::{Atom, ConjunctiveQuery, Predicate, Term, Variable};
use std::collections::HashSet;
use std::fmt;

/// The GReX navigation predicate bases (mirrors `mars_grex::GrexSchema`: a
/// navigation predicate is named `base#document` with `base` in this list).
/// The router re-parses the convention here so `mars-cost` stays independent
/// of `mars-grex`.
const NAVIGATION_BASES: [&str; 8] = ["root", "el", "child", "desc", "tag", "attr", "id", "text"];

/// Split a GReX navigation predicate `base#document` into its parts.
/// Returns `None` for ordinary relations (including view names that happen
/// to contain `#`, which never start with a navigation base).
pub fn navigation_parts(p: Predicate) -> Option<(&'static str, &'static str)> {
    let (base, document) = p.name().split_once('#')?;
    if NAVIGATION_BASES.contains(&base) {
        Some((base, document))
    } else {
        None
    }
}

/// Tie-break rank for the greedy navigation order: among equally-connected
/// atoms, run the most selective base first. Compiled bodies arrive sorted
/// by predicate name (`child` < `desc` < … < `tag`), so breaking ties on
/// body position alone would run every expanding `child`/`desc` atom before
/// the first `tag` filter — a multi-million-row intermediate on a
/// 150-element document.
pub fn navigation_rank(base: &str) -> usize {
    match base {
        "root" => 0,
        "tag" => 1,
        "text" => 2,
        "attr" => 3,
        "id" => 4,
        "el" => 5,
        "child" => 6,
        "desc" => 7,
        _ => 8,
    }
}

/// Ordering key for the greedy most-bound-first navigation loop. Sort
/// ascending by `(key, body position)`:
///
/// 1. atoms **joining an already-bound variable** come before atoms whose
///    variables are all fresh — joining a fresh-variable atom early is a
///    cross product that multiplies the intermediate by an unrelated factor
///    (a `tag` filter seeded too early costs more than it prunes);
/// 2. fewer **unbound variables** first — pure filters before expansions;
/// 3. the most selective **base** first ([`navigation_rank`]).
///
/// Both [`navigation_cost`] and the native interpreter in `mars_storage` use
/// this exact key; they must stay in lockstep for the cost model to price
/// what execution does.
pub fn greedy_navigation_key(
    atom: &Atom,
    base: &str,
    any_bound: bool,
    is_bound: impl Fn(&Variable) -> bool,
) -> (usize, usize, usize) {
    let mut vars = 0usize;
    let mut unbound = 0usize;
    for t in &atom.args {
        if let Term::Var(v) = t {
            vars += 1;
            if !is_bound(v) {
                unbound += 1;
            }
        }
    }
    // Disconnected: has variables, none bound, and we already have bindings —
    // joining it now is a cross product, so defer it until nothing connected
    // remains (it then seeds the next component).
    let disconnected = usize::from(vars > 0 && vars == unbound && any_bound);
    (disconnected, unbound, navigation_rank(base))
}

/// The statistics the XML side of the router reads: per-document counters a
/// document store maintains (implemented by `mars_storage::XmlStore`). All
/// counts refer to the *GReX encoding* of the document, so they price exactly
/// the tuples native navigation enumerates.
pub trait NavigationStatistics {
    /// Whether `document` is stored (navigation atoms over absent documents
    /// make a route infeasible).
    fn has_document(&self, document: &str) -> bool;
    /// Element nodes (the `el#d` cardinality).
    fn element_count(&self, document: &str) -> usize;
    /// Descendant-or-self pairs (the `desc#d` cardinality; reflexive).
    fn descendant_pairs(&self, document: &str) -> usize;
    /// Elements with tag `tag` (the selectivity of `tag#d(n, 'tag')`).
    fn tag_count(&self, document: &str, tag: &str) -> usize;
    /// Elements with non-empty direct text (the `text#d` cardinality).
    fn text_count(&self, document: &str) -> usize;
    /// Attribute entries across all elements (the `attr#d` cardinality).
    fn attr_count(&self, document: &str) -> usize;
}

/// Which backend executes a (sub)query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Route {
    /// The physical relational executor over loaded facts and views.
    Relational,
    /// Native navigation of the stored XML documents.
    Xml,
    /// Navigation atoms on the XML engine, the rest relational, joined.
    Mixed,
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Route::Relational => write!(f, "relational"),
            Route::Xml => write!(f, "xml"),
            Route::Mixed => write!(f, "mixed"),
        }
    }
}

/// The estimated cost of each backend for one query (`None` = infeasible).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteCosts {
    /// Relational execution (always feasible; body-less queries cost 0).
    pub relational: f64,
    /// Pure native navigation, when every atom is navigational.
    pub xml: Option<f64>,
    /// The split plan, when both atom groups are non-empty.
    pub mixed: Option<f64>,
}

/// Estimated enumeration volume of running `atoms` natively (see
/// [`navigation_cost`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NavCost {
    /// Rows touched across the greedy nested-loop evaluation.
    pub cost: f64,
    /// Estimated bindings surviving all atoms.
    pub rows: f64,
}

/// A priced routing decision for one query.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutingDecision {
    /// The chosen backend (the argmin of the feasible costs; ties prefer
    /// relational, then xml, then mixed — a fixed order, so decisions are
    /// deterministic and snapshot-stable).
    pub route: Route,
    /// The per-backend estimates the choice was made from.
    pub costs: RouteCosts,
    /// Body atoms classified as GReX navigation over a stored document.
    pub navigation_atoms: usize,
    /// Remaining body atoms (base relations, views, specializations).
    pub relational_atoms: usize,
}

impl RoutingDecision {
    /// The estimated cost of the chosen route.
    pub fn chosen_cost(&self) -> f64 {
        match self.route {
            Route::Relational => self.costs.relational,
            Route::Xml => self.costs.xml.unwrap_or(self.costs.relational),
            Route::Mixed => self.costs.mixed.unwrap_or(self.costs.relational),
        }
    }
}

fn render_cost(f: &mut fmt::Formatter<'_>, label: &str, c: Option<f64>) -> fmt::Result {
    match c {
        Some(c) => writeln!(f, "  {label}: {c:.1}"),
        None => writeln!(f, "  {label}: infeasible"),
    }
}

impl fmt::Display for RoutingDecision {
    /// Stable rendering, snapshot-tested under `tests/golden/routes/`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "route={} atoms={} navigation + {} relational",
            self.route, self.navigation_atoms, self.relational_atoms
        )?;
        render_cost(f, "relational", Some(self.costs.relational))?;
        render_cost(f, "xml", self.costs.xml)?;
        render_cost(f, "mixed", self.costs.mixed)
    }
}

/// Price native navigation of `atoms`: simulate the interpreter's greedy
/// most-bound-first nested loops, charging each atom its estimated
/// enumeration volume per surviving binding. Returns `None` when any atom is
/// not a navigation atom over a stored document (the route is infeasible).
///
/// The model is deliberately coarse — routing is advisory, so the estimates
/// only need to *rank* backends sensibly, never to be exact.
pub fn navigation_cost(atoms: &[Atom], nav: &dyn NavigationStatistics) -> Option<NavCost> {
    let mut parsed: Vec<(&str, &str)> = Vec::with_capacity(atoms.len());
    for atom in atoms {
        let (base, document) = navigation_parts(atom.predicate)?;
        if !nav.has_document(document) {
            return None;
        }
        parsed.push((base, document));
    }

    let mut bound: HashSet<Variable> = HashSet::new();
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut rows = 1.0_f64;
    let mut cost = 0.0_f64;
    while !remaining.is_empty() {
        // Greedy: connected-most-bound-first ([`greedy_navigation_key`]),
        // ties on body position — the order the native interpreter uses.
        let pos = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let key = greedy_navigation_key(&atoms[i], parsed[i].0, !bound.is_empty(), |v| {
                    bound.contains(v)
                });
                (key, i)
            })
            .map(|(k, _)| k)
            .expect("remaining is non-empty");
        let i = remaining.remove(pos);
        let atom = &atoms[i];
        let (base, document) = parsed[i];

        let n = nav.element_count(document).max(1) as f64;
        let is_bound = |k: usize| match atom.args.get(k) {
            Some(Term::Var(v)) => bound.contains(v),
            Some(Term::Const(_)) => true,
            None => true,
        };
        // Estimated output bindings per input binding. `< 1` means a
        // selective check, `> 1` an enumeration.
        let expansion = match base {
            "root" => 1.0,
            "el" | "id" => {
                if is_bound(0) {
                    1.0
                } else {
                    n
                }
            }
            "child" => match (is_bound(0), is_bound(1)) {
                (true, true) => 1.0,
                // Average element fanout: one child edge per non-root element.
                (true, false) => (n - 1.0).max(0.0) / n,
                // Parent lookup is unique.
                (false, true) => 1.0,
                (false, false) => (n - 1.0).max(1.0),
            },
            "desc" => {
                let d = nav.descendant_pairs(document).max(1) as f64;
                match (is_bound(0), is_bound(1)) {
                    (true, true) => 1.0,
                    (true, false) | (false, true) => d / n,
                    (false, false) => d,
                }
            }
            "tag" => {
                let t = match atom.args.get(1) {
                    Some(Term::Const(c)) => nav.tag_count(document, &c.render()) as f64,
                    _ => n,
                };
                match (is_bound(0), is_bound(1)) {
                    // A bound node has exactly one tag; with a constant tag
                    // the check keeps a t/n fraction of the bindings.
                    (true, _) => (t / n).min(1.0),
                    (false, _) => t.max(0.0),
                }
            }
            "text" => {
                let x = nav.text_count(document) as f64;
                match (is_bound(0), is_bound(1)) {
                    // Bound node: one text check. Bound value: the
                    // interpreter's by-value index keeps this a probe, about
                    // one match per binding.
                    (true, _) | (false, true) => (x / n).min(1.0),
                    (false, false) => x,
                }
            }
            "attr" => {
                let a = nav.attr_count(document) as f64;
                if is_bound(0) {
                    a / n
                } else {
                    a
                }
            }
            _ => unreachable!("navigation_parts whitelists the bases"),
        };
        cost += rows * expansion.max(1.0);
        rows = (rows * expansion).max(0.0);
        for t in &atom.args {
            if let Term::Var(v) = t {
                bound.insert(*v);
            }
        }
    }
    Some(NavCost { cost, rows })
}

/// Price `q` against every backend and choose the cheapest feasible one.
///
/// * relational cost: [`physical_plan`]`(q, rel).estimated_cost()`;
/// * xml cost: [`navigation_cost`] over the whole body, feasible only when
///   every atom is navigational over a stored document;
/// * mixed cost: navigation cost of the navigational group + physical cost
///   of the relational subquery + the estimated join volume, feasible only
///   when both groups are non-empty.
///
/// Deterministic: equal costs resolve in the fixed order relational, xml,
/// mixed.
pub fn route_query(
    q: &ConjunctiveQuery,
    rel: &dyn StatisticsCatalog,
    nav: &dyn NavigationStatistics,
) -> RoutingDecision {
    let is_nav = |a: &Atom| navigation_parts(a.predicate).is_some_and(|(_, d)| nav.has_document(d));
    let nav_group: Vec<Atom> = q.body.iter().filter(|a| is_nav(a)).cloned().collect();
    let rel_indices: Vec<usize> =
        q.body.iter().enumerate().filter(|(_, a)| !is_nav(a)).map(|(i, _)| i).collect();
    let navigation_atoms = nav_group.len();
    let relational_atoms = rel_indices.len();

    let relational = if q.body.is_empty() { 0.0 } else { physical_plan(q, rel).estimated_cost() };
    let xml = if relational_atoms == 0 && navigation_atoms > 0 {
        navigation_cost(&q.body, nav).map(|n| n.cost)
    } else {
        None
    };
    let mixed = if navigation_atoms > 0 && relational_atoms > 0 {
        navigation_cost(&nav_group, nav).map(|n| {
            let sub = q.subquery(&rel_indices);
            let plan = physical_plan(&sub, rel);
            // Join volume: both sides are touched once more by the hash join.
            n.cost + plan.estimated_cost() + n.rows + plan.est_rows()
        })
    } else {
        None
    };

    let costs = RouteCosts { relational, xml, mixed };
    RoutingDecision { route: choose(&costs), costs, navigation_atoms, relational_atoms }
}

/// The argmin over feasible costs; equal estimates resolve in the fixed
/// order relational, xml, mixed (strict improvement required to switch).
fn choose(costs: &RouteCosts) -> Route {
    let mut route = Route::Relational;
    let mut best = costs.relational;
    if let Some(c) = costs.xml {
        if c < best {
            route = Route::Xml;
            best = c;
        }
    }
    if let Some(c) = costs.mixed {
        if c < best {
            route = Route::Mixed;
        }
    }
    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct FixedRel(HashMap<Predicate, (usize, Vec<usize>)>);

    impl StatisticsCatalog for FixedRel {
        fn tuple_count(&self, relation: Predicate) -> usize {
            self.0.get(&relation).map(|(n, _)| *n).unwrap_or(0)
        }
        fn column_count(&self, relation: Predicate) -> usize {
            self.0.get(&relation).map(|(_, d)| d.len()).unwrap_or(0)
        }
        fn distinct_in_column(&self, relation: Predicate, col: usize) -> usize {
            self.0.get(&relation).and_then(|(_, d)| d.get(col)).copied().unwrap_or(0)
        }
    }

    struct FixedNav {
        elements: usize,
        pairs: usize,
    }

    impl NavigationStatistics for FixedNav {
        fn has_document(&self, document: &str) -> bool {
            document == "d.xml"
        }
        fn element_count(&self, _d: &str) -> usize {
            self.elements
        }
        fn descendant_pairs(&self, _d: &str) -> usize {
            self.pairs
        }
        fn tag_count(&self, _d: &str, _t: &str) -> usize {
            self.elements / 4
        }
        fn text_count(&self, _d: &str) -> usize {
            self.elements / 2
        }
        fn attr_count(&self, _d: &str) -> usize {
            0
        }
    }

    fn nav_atom(base: &str, args: Vec<Term>) -> Atom {
        Atom::named(&format!("{base}#d.xml"), args)
    }

    #[test]
    fn navigation_parts_follow_the_grex_convention() {
        assert_eq!(navigation_parts(Predicate::new("desc#a.xml")), Some(("desc", "a.xml")));
        assert_eq!(navigation_parts(Predicate::new("V1#star")), None, "views are not navigation");
        assert_eq!(navigation_parts(Predicate::new("bookRel")), None);
    }

    /// A pure-navigation query over a stored document is feasible on all
    /// backends that apply; a view-only query is relational-only.
    #[test]
    fn feasibility_follows_atom_classification() {
        let rel = FixedRel(HashMap::new());
        let nav = FixedNav { elements: 100, pairs: 500 };
        let pure_nav = ConjunctiveQuery::new("Q").with_head(vec![Term::var("x")]).with_body(vec![
            nav_atom("root", vec![Term::var("r")]),
            nav_atom("desc", vec![Term::var("r"), Term::var("x")]),
        ]);
        let d = route_query(&pure_nav, &rel, &nav);
        assert!(d.costs.xml.is_some());
        assert!(d.costs.mixed.is_none(), "no relational atoms to mix");
        assert_eq!((d.navigation_atoms, d.relational_atoms), (2, 0));

        let view_only = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![Atom::named("V1", vec![Term::var("x")])]);
        let d = route_query(&view_only, &rel, &nav);
        assert_eq!(d.route, Route::Relational);
        assert!(d.costs.xml.is_none());
        assert!(d.costs.mixed.is_none());
    }

    /// Navigation over an *absent* document is not routable to the XML
    /// engine, whatever the atom looks like.
    #[test]
    fn absent_documents_make_xml_infeasible() {
        let rel = FixedRel(HashMap::new());
        let nav = FixedNav { elements: 100, pairs: 500 };
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![Atom::named("desc#other.xml", vec![Term::var("r"), Term::var("x")])]);
        let d = route_query(&q, &rel, &nav);
        assert_eq!(d.route, Route::Relational);
        assert!(d.costs.xml.is_none());
        assert_eq!((d.navigation_atoms, d.relational_atoms), (0, 1));
    }

    /// When the relational side would scan a huge loaded `desc#` table but
    /// native navigation starts from the unique root, the router picks XML.
    #[test]
    fn navigation_heavy_queries_route_to_xml() {
        let rel = FixedRel(
            [
                (Predicate::new("root#d.xml"), (1, vec![1])),
                (Predicate::new("desc#d.xml"), (50_000, vec![10_000, 10_000])),
                (Predicate::new("tag#d.xml"), (10_000, vec![10_000, 20])),
            ]
            .into_iter()
            .collect(),
        );
        let nav = FixedNav { elements: 10_000, pairs: 50_000 };
        let q = ConjunctiveQuery::new("Q").with_head(vec![Term::var("x")]).with_body(vec![
            nav_atom("root", vec![Term::var("r")]),
            nav_atom("desc", vec![Term::var("r"), Term::var("x")]),
            nav_atom("tag", vec![Term::var("x"), Term::constant_str("item")]),
        ]);
        let d = route_query(&q, &rel, &nav);
        assert_eq!(d.route, Route::Xml, "{d}");
        assert!(d.costs.xml.unwrap() < d.costs.relational, "{d}");
    }

    /// A small materialized view beats navigating a large document.
    #[test]
    fn view_backed_queries_route_to_relational() {
        let rel = FixedRel([(Predicate::new("V1"), (8, vec![8, 8]))].into_iter().collect());
        let nav = FixedNav { elements: 10_000, pairs: 50_000 };
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![Atom::named("V1", vec![Term::var("x"), Term::var("y")])]);
        let d = route_query(&q, &rel, &nav);
        assert_eq!(d.route, Route::Relational);
        // Scan (8) + project pass (8) + distinct pass (8).
        assert_eq!(d.costs.relational, 24.0);
    }

    /// The decision renders stably (golden-snapshot format).
    #[test]
    fn decision_display_is_stable() {
        let d = RoutingDecision {
            route: Route::Xml,
            costs: RouteCosts { relational: 120.0, xml: Some(14.5), mixed: None },
            navigation_atoms: 3,
            relational_atoms: 0,
        };
        let text = d.to_string();
        assert_eq!(
            text,
            "route=xml atoms=3 navigation + 0 relational\n  relational: 120.0\n  xml: 14.5\n  mixed: infeasible\n"
        );
        assert_eq!(d.chosen_cost(), 14.5);
    }

    /// Ties prefer the fixed order relational < xml < mixed, so equal
    /// estimates can never flap between runs; a strict improvement switches.
    #[test]
    fn ties_break_deterministically() {
        let tie = RouteCosts { relational: 10.0, xml: Some(10.0), mixed: Some(10.0) };
        assert_eq!(choose(&tie), Route::Relational);
        let xml_tie_mixed = RouteCosts { relational: 10.0, xml: Some(5.0), mixed: Some(5.0) };
        assert_eq!(choose(&xml_tie_mixed), Route::Xml);
        let mixed_wins = RouteCosts { relational: 10.0, xml: Some(5.0), mixed: Some(4.0) };
        assert_eq!(choose(&mixed_wins), Route::Mixed);
        let infeasible = RouteCosts { relational: 10.0, xml: None, mixed: None };
        assert_eq!(choose(&infeasible), Route::Relational);
    }
}
