//! # mars-cost — plug-in cost estimation for the MARS backchase
//!
//! The backchase phase of the C&B algorithm compares candidate reformulations
//! (subqueries of the universal plan) using a *plug-in* cost estimator
//! (Section 2.3 of the paper). Assuming the cost model is **monotone** — a
//! subquery never costs more than a superquery over the same data — the
//! cost-based pruning of the backchase is guaranteed to return the optimal
//! minimal reformulation.
//!
//! This crate provides:
//!
//! * the [`CostEstimator`] trait that MARS accepts as a plug-in,
//! * a [`Catalog`] of per-relation statistics,
//! * [`JoinOrderEstimator`], the default estimator, which reorders joins with
//!   dynamic programming (as in the paper, following Popa's implementation)
//!   and sums estimated intermediate-result cardinalities,
//! * [`WeightedAtomEstimator`], a simple monotone model that charges a weight
//!   per accessed atom (descendant navigation costlier than child navigation),
//!   used by unit tests and by backchase pruning criterion 1,
//! * the [`StatisticsCatalog`] trait — the shared read interface to the exact
//!   per-relation counters (tuple counts, per-column distincts, scan ledgers)
//!   that both the chase's symbolic instance and the storage layer maintain
//!   incrementally on insert,
//! * [`physical_plan`], the logical→physical compiler turning a conjunctive
//!   query into an executable operator tree (pruned scans with constant
//!   pushdown, statistics-ordered hash joins with chosen build sides,
//!   residual filters, project/distinct) — executed by `mars-storage`,
//! * [`route_query`], the backend router: prices one reformulated query
//!   against the relational executor, native XML navigation (via the
//!   [`NavigationStatistics`] trait) and a mixed split plan, and returns a
//!   deterministic [`RoutingDecision`] — executed by `mars-storage`'s
//!   `BackendRouter`.

pub mod catalog;
pub mod estimator;
pub mod join_order;
pub mod physical;
pub mod route;
pub mod stats;

pub use catalog::{Catalog, RelationStats};
pub use estimator::{fold_atom_costs, CostEstimator, WeightedAtomEstimator};
pub use join_order::{JoinOrderEstimator, JoinPlan};
pub use physical::{physical_plan, BuildSide, Operand, PhysicalPlan, TableScan};
pub use route::{
    greedy_navigation_key, navigation_cost, navigation_parts, navigation_rank, route_query,
    NavCost, NavigationStatistics, Route, RouteCosts, RoutingDecision,
};
pub use stats::StatisticsCatalog;

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::{Atom, ConjunctiveQuery, Term};

    #[test]
    fn default_estimators_are_monotone_on_subqueries() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![Term::var("x")]).with_body(vec![
            Atom::named("R", vec![Term::var("x"), Term::var("y")]),
            Atom::named("S", vec![Term::var("y"), Term::var("z")]),
            Atom::named("T", vec![Term::var("z"), Term::var("w")]),
        ]);
        let sub = q.subquery(&[0, 1]);
        let catalog = Catalog::with_default_cardinality(1000.0);
        let join = JoinOrderEstimator::new(catalog);
        assert!(join.estimate(&sub) <= join.estimate(&q));
        let weighted = WeightedAtomEstimator::default();
        assert!(weighted.estimate(&sub) <= weighted.estimate(&q));
    }
}
