//! Relation statistics used by cost estimation.

use mars_cq::Predicate;
use std::collections::HashMap;

/// Statistics for a single relation (or virtual relation such as a GReX
/// predicate or a materialized view).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelationStats {
    /// Estimated number of tuples.
    pub cardinality: f64,
    /// Estimated number of distinct values per column (uniformity assumed).
    pub distinct_per_column: f64,
}

impl RelationStats {
    /// Stats with the given cardinality, assuming every column has
    /// `cardinality.sqrt()` distinct values (a common default heuristic).
    pub fn with_cardinality(cardinality: f64) -> RelationStats {
        RelationStats { cardinality, distinct_per_column: cardinality.sqrt().max(1.0) }
    }
}

/// Catalog: per-relation statistics plus defaults for unknown relations.
///
/// The MARS paper plugs in an external cost estimator; in this reproduction
/// the catalog is populated either with synthetic statistics (by the workload
/// generators) or from actual materialized storage (by `mars-storage`).
#[derive(Clone, Debug)]
pub struct Catalog {
    stats: HashMap<Predicate, RelationStats>,
    default: RelationStats,
}

impl Catalog {
    /// Catalog where unknown relations get the given default cardinality.
    pub fn with_default_cardinality(cardinality: f64) -> Catalog {
        Catalog { stats: HashMap::new(), default: RelationStats::with_cardinality(cardinality) }
    }

    /// Register statistics for a relation.
    pub fn set(&mut self, relation: Predicate, stats: RelationStats) {
        self.stats.insert(relation, stats);
    }

    /// Register a cardinality (distinct counts derived by default heuristic).
    pub fn set_cardinality(&mut self, relation: &str, cardinality: f64) {
        self.set(Predicate::new(relation), RelationStats::with_cardinality(cardinality));
    }

    /// Look up statistics for a relation.
    pub fn get(&self, relation: Predicate) -> RelationStats {
        self.stats.get(&relation).copied().unwrap_or(self.default)
    }

    /// Number of relations with explicit statistics.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Is the catalog empty (only defaults)?
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::with_default_cardinality(10_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_for_unknown_relations() {
        let c = Catalog::with_default_cardinality(100.0);
        let s = c.get(Predicate::new("unknown_rel"));
        assert_eq!(s.cardinality, 100.0);
        assert_eq!(s.distinct_per_column, 10.0);
        assert!(c.is_empty());
    }

    #[test]
    fn explicit_stats_override_default() {
        let mut c = Catalog::default();
        c.set_cardinality("drugPrice", 500.0);
        assert_eq!(c.get(Predicate::new("drugPrice")).cardinality, 500.0);
        assert_eq!(c.len(), 1);
        c.set(
            Predicate::new("patient"),
            RelationStats { cardinality: 42.0, distinct_per_column: 7.0 },
        );
        assert_eq!(c.get(Predicate::new("patient")).distinct_per_column, 7.0);
    }

    #[test]
    fn distinct_count_never_below_one() {
        let s = RelationStats::with_cardinality(0.0);
        assert_eq!(s.distinct_per_column, 1.0);
    }
}
