//! Structured errors for the public MARS API.
//!
//! A resident reformulation service must never die on one bad request:
//! every degenerate input a library caller can hand the system — unparsable
//! XQuery text, a malformed XPath in a constraint, an empty or unsafe query
//! block, a correspondence with nothing to reformulate against — surfaces as
//! a [`MarsError`] variant instead of a panic.

use mars_xml::PathError;
use mars_xquery::XQueryParseError;
use std::fmt;

/// Everything that can go wrong on the public reformulation API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MarsError {
    /// The client XQuery text did not parse.
    Parse(XQueryParseError),
    /// An XPath expression (e.g. in an XIC constructor) did not parse.
    InvalidPath(PathError),
    /// The schema correspondence compiles to nothing: no dependencies and no
    /// proprietary schema, so no query can be reformulated against it.
    EmptyCorrespondence,
    /// The query block has no atoms — there is no navigation to reformulate.
    EmptyBlock {
        /// Name of the offending block.
        block: String,
    },
    /// The query block is unsafe: a head variable is not bound in the body.
    UnsafeBlock {
        /// Name of the offending block.
        block: String,
    },
    /// No reformulation over the proprietary schema exists for the block.
    NoReformulation {
        /// Name of the offending block.
        block: String,
    },
    /// The service shed this request at admission: the bounded in-flight
    /// limit was already reached. Retry later — nothing was computed and
    /// nothing was cached.
    Overloaded {
        /// The in-flight admission limit that was hit.
        limit: usize,
    },
    /// The reformulation thread panicked mid-request. The panic was isolated
    /// (`catch_unwind`) so sibling requests are unaffected, and nothing was
    /// cached for this shape — a retry gets a real attempt.
    ReformulationPanicked {
        /// Name of the block being reformulated when the panic fired.
        block: String,
    },
}

impl fmt::Display for MarsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarsError::Parse(e) => write!(f, "XQuery parse error: {e}"),
            MarsError::InvalidPath(e) => write!(f, "invalid path: {e}"),
            MarsError::EmptyCorrespondence => {
                write!(
                    f,
                    "schema correspondence compiles to no dependencies and no proprietary schema"
                )
            }
            MarsError::EmptyBlock { block } => {
                write!(f, "query block '{block}' has no atoms to reformulate")
            }
            MarsError::UnsafeBlock { block } => {
                write!(f, "query block '{block}' is unsafe (head variable unbound in the body)")
            }
            MarsError::NoReformulation { block } => {
                write!(f, "no proprietary-schema reformulation exists for block '{block}'")
            }
            MarsError::Overloaded { limit } => {
                write!(f, "request shed: service already has {limit} requests in flight")
            }
            MarsError::ReformulationPanicked { block } => {
                write!(f, "reformulation of block '{block}' panicked (isolated; not cached)")
            }
        }
    }
}

impl std::error::Error for MarsError {}

impl From<XQueryParseError> for MarsError {
    fn from(e: XQueryParseError) -> MarsError {
        MarsError::Parse(e)
    }
}

impl From<PathError> for MarsError {
    fn from(e: PathError) -> MarsError {
        MarsError::InvalidPath(e)
    }
}
