//! The MARS system: schema correspondence compilation and query reformulation.

use crate::error::MarsError;
use crate::result::{BlockReformulation, MarsResult};
use mars_chase::{CbOptions, ChaseBackchase, JoinPlanner, ReformulationBudget};
use mars_cost::{CostEstimator, WeightedAtomEstimator};
use mars_cq::{ConjunctiveQuery, Constant, Ded, Predicate, Term};
use mars_grex::{
    compile_view, compile_xbind, compile_xic, tix_constraints_core, CompileContext, GrexSchema,
    ViewDef,
};
use mars_specialize::{specialize_query, specialize_view, specialize_xic, SpecializationMapping};
use mars_storage::{sql_for_query, RelationalDatabase, XmlStore};
use mars_xquery::{decorrelate, parse_xquery, XBindAtom, XBindQuery, Xic};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// The schema correspondence between the public and proprietary schemas
/// (Section 2.1 "The schema correspondence").
#[derive(Clone, Debug, Default)]
pub struct SchemaCorrespondence {
    /// Public (virtual) documents client queries may navigate.
    pub public_documents: Vec<String>,
    /// GAV views: proprietary → public (e.g. `CaseMap`, `IdMap`).
    pub gav_views: Vec<ViewDef>,
    /// LAV views: public/proprietary → redundant proprietary storage
    /// (e.g. `DrugPriceMap`, the `cacheEntry.xml` cache).
    pub lav_views: Vec<ViewDef>,
    /// XML integrity constraints on public or proprietary documents.
    pub xics: Vec<Xic>,
    /// Relational integrity constraints (already in DED form).
    pub relational_constraints: Vec<Ded>,
    /// Proprietary base relations (tables reformulations may scan).
    pub proprietary_relations: Vec<String>,
    /// Proprietary native XML documents (reformulations may navigate them).
    pub proprietary_documents: Vec<String>,
    /// Schema specializations (Section 5), applied when
    /// [`MarsOptions::use_specialization`] is set.
    pub specializations: Vec<SpecializationMapping>,
}

impl SchemaCorrespondence {
    /// Every document taking part in the correspondence (public, proprietary,
    /// and XML view outputs) — each gets a copy of TIX.
    pub fn all_documents(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |d: &str| {
            if !out.iter().any(|x| x == d) {
                out.push(d.to_string());
            }
        };
        for d in &self.public_documents {
            push(d);
        }
        for d in &self.proprietary_documents {
            push(d);
        }
        for v in self.gav_views.iter().chain(self.lav_views.iter()) {
            if let mars_grex::ViewOutput::XmlFlat { document, .. } = &v.output {
                push(document);
            }
            for a in &v.body.atoms {
                if let XBindAtom::AbsolutePath { document, .. } = a {
                    push(document);
                }
            }
        }
        out
    }
}

/// Options controlling the MARS pipeline.
#[derive(Clone, Debug)]
pub struct MarsOptions {
    /// Apply schema specialization (Section 5) before compilation.
    pub use_specialization: bool,
    /// When specialization is active, access specialized proprietary
    /// documents *exclusively* through their specialization relations: the
    /// raw GReX navigation predicates of a proprietary document covered by at
    /// least one specialization mapping are withheld from the proprietary
    /// schema. Reformulations (and the backchase candidate pool) then mention
    /// only specialization relations, materialized views and unspecialized
    /// documents — the Section 5 search-space reduction. Leave `false` for
    /// mixed storage whose queries navigate parts of a document no
    /// specialization covers (e.g. attributes outside the mapped fields).
    pub spec_replaces_navigation: bool,
    /// Add the TIX built-in constraints for every document.
    pub include_tix: bool,
    /// Chase & Backchase options.
    pub cb: CbOptions,
}

impl Default for MarsOptions {
    fn default() -> Self {
        MarsOptions {
            use_specialization: false,
            spec_replaces_navigation: false,
            include_tix: true,
            cb: CbOptions::default(),
        }
    }
}

impl MarsOptions {
    /// Options with specialization enabled.
    pub fn specialized() -> MarsOptions {
        MarsOptions { use_specialization: true, ..Default::default() }
    }

    /// Options that enumerate all minimal reformulations.
    pub fn exhaustive(mut self) -> MarsOptions {
        self.cb = CbOptions::exhaustive();
        self
    }

    /// Builder: specialized proprietary documents are reachable only through
    /// their specialization relations (see [`MarsOptions::spec_replaces_navigation`]).
    pub fn with_spec_replacing_navigation(mut self) -> MarsOptions {
        self.spec_replaces_navigation = true;
        self
    }

    /// Builder: evaluate each backchase BFS level — and each branch level of
    /// the initial chase's disjunctive worklist — on `n` worker threads.
    /// Any thread count produces byte-identical reformulation results —
    /// both engines merge per-level results deterministically. (The back
    /// chases inside candidate evaluations stay sequential; they are already
    /// parallelized at the candidate level.)
    pub fn with_threads(mut self, n: usize) -> MarsOptions {
        self.cb.backchase.threads = n.max(1);
        self.cb.chase.threads = n.max(1);
        self
    }

    /// Builder: disable the semi-naive delta-seeded premise joins everywhere
    /// (initial chase and back-chases). The ablation baseline: results are
    /// byte-identical either way, only the join volume changes.
    pub fn with_naive_joins(mut self) -> MarsOptions {
        self.cb.chase.semi_naive = false;
        self.cb.backchase.chase.semi_naive = false;
        self
    }

    /// Builder: replace the adaptive statistics-driven join planning with
    /// the historical fixed scan threshold, everywhere (initial chase and
    /// back-chases). The documented fallback and the ablation baseline of
    /// the adaptive planner: results are byte-identical either way, only
    /// the scan/probe choices change (see
    /// [`mars_chase::ChaseOptions::with_fixed_scan_threshold`]).
    pub fn with_fixed_scan_threshold(self, threshold: usize) -> MarsOptions {
        self.with_join_planner(JoinPlanner::FixedThreshold(threshold))
    }

    /// Builder: set the join planner for every chase the pipeline runs (see
    /// [`mars_chase::JoinPlanner`]).
    pub fn with_join_planner(mut self, planner: JoinPlanner) -> MarsOptions {
        self.cb.chase.join_planner = planner;
        self.cb.backchase.chase.join_planner = planner;
        self
    }

    /// Builder: disable the cross-candidate containment memo in the
    /// backchase, so every candidate's containment check runs from scratch.
    /// The ablation baseline for the memoized containment engine: results
    /// are byte-identical either way (only the reuse counters and phase
    /// wall-times differ), only the homomorphism-search volume changes.
    pub fn with_scratch_containment(mut self) -> MarsOptions {
        self.cb.backchase.containment_memo = false;
        self
    }

    /// Builder: replace the exhaustive subquery enumeration with greedy
    /// minimization of the initial reformulation. An explicit trade of
    /// completeness (at most one reformulation, not necessarily the optimum)
    /// for speed on very wide candidate pools; it is never applied silently.
    pub fn with_greedy_minimization(mut self) -> MarsOptions {
        self.cb.backchase.greedy = true;
        self
    }
}

/// The MARS system, ready to reformulate client queries.
pub struct Mars {
    correspondence: SchemaCorrespondence,
    options: MarsOptions,
    engine: ChaseBackchase,
}

impl Mars {
    /// Build the system: compile the correspondence into DEDs and set up the
    /// C&B engine with the default cost estimator.
    pub fn new(correspondence: SchemaCorrespondence) -> Mars {
        Mars::with_options(correspondence, MarsOptions::default())
    }

    /// Build the system with explicit options.
    pub fn with_options(correspondence: SchemaCorrespondence, options: MarsOptions) -> Mars {
        Mars::with_estimator(correspondence, options, Arc::new(WeightedAtomEstimator::default()))
    }

    /// Build the system with a plug-in cost estimator.
    pub fn with_estimator(
        correspondence: SchemaCorrespondence,
        options: MarsOptions,
        estimator: Arc<dyn CostEstimator>,
    ) -> Mars {
        let (deds, proprietary) = Self::compile(&correspondence, &options);
        let engine = ChaseBackchase::new(deds, proprietary)
            .with_estimator(estimator)
            .with_options(options.cb.clone());
        Mars { correspondence, options, engine }
    }

    /// The compiled dependency set (schema correspondence + XICs + TIX).
    pub fn dependencies(&self) -> &[Ded] {
        self.engine.deds()
    }

    /// The proprietary-schema predicates reformulations may mention.
    pub fn proprietary_predicates(&self) -> &HashSet<Predicate> {
        &self.engine.proprietary
    }

    /// The schema correspondence this system was built from.
    pub fn correspondence(&self) -> &SchemaCorrespondence {
        &self.correspondence
    }

    /// A digest of everything a reformulation depends on besides the query
    /// itself: the compiled dependency set, the proprietary-schema predicates
    /// and the pipeline options. Two systems with equal fingerprints
    /// reformulate identical inputs identically, so the fingerprint is the
    /// invalidation key of the [`crate::PlanCache`] — rebuilding the system
    /// from a changed correspondence changes the fingerprint and strands
    /// every cached plan of the old one.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for d in self.engine.deds() {
            d.to_string().hash(&mut h);
        }
        let mut proprietary: Vec<&str> = self.engine.proprietary.iter().map(|p| p.name()).collect();
        proprietary.sort_unstable();
        proprietary.hash(&mut h);
        format!("{:?}", self.options).hash(&mut h);
        h.finish()
    }

    /// Every string constant the compiled dependency set mentions, plus all
    /// document names of the correspondence. These constants are *structural*:
    /// the chase joins a client query's constants against them, so the plan
    /// cache must never parameterize them out of a query shape (see
    /// [`mars_xquery::shape_of`]).
    pub fn reserved_constants(&self) -> HashSet<String> {
        fn push(out: &mut HashSet<String>, t: &Term) {
            if let Term::Const(c @ Constant::Str(_)) = t {
                out.insert(c.render());
            }
        }
        let mut out = HashSet::new();
        for d in self.engine.deds() {
            for a in &d.premise {
                for t in &a.args {
                    push(&mut out, t);
                }
            }
            for (a, b) in &d.premise_inequalities {
                push(&mut out, a);
                push(&mut out, b);
            }
            for c in &d.conclusions {
                for atom in &c.atoms {
                    for t in &atom.args {
                        push(&mut out, t);
                    }
                }
                for (a, b) in &c.equalities {
                    push(&mut out, a);
                    push(&mut out, b);
                }
            }
        }
        out.extend(self.correspondence.all_documents());
        out
    }

    fn compile(
        corr: &SchemaCorrespondence,
        options: &MarsOptions,
    ) -> (Vec<Ded>, HashSet<Predicate>) {
        let mut ctx = CompileContext::new();
        let mut deds: Vec<Ded> = Vec::new();
        let mut proprietary: HashSet<Predicate> = HashSet::new();

        let specialize_active = options.use_specialization && !corr.specializations.is_empty();
        let maybe_spec_view = |v: &ViewDef| -> ViewDef {
            if specialize_active {
                specialize_view(v, &corr.specializations)
            } else {
                v.clone()
            }
        };

        // Views (GAV and LAV are compiled identically — direction neutrality).
        for view in corr.gav_views.iter().chain(corr.lav_views.iter()) {
            let v = maybe_spec_view(view);
            deds.extend(compile_view(&mut ctx, &v));
        }
        // LAV view outputs are redundant proprietary storage.
        for view in &corr.lav_views {
            proprietary.extend(view.output_predicates());
        }

        // XICs.
        for xic in &corr.xics {
            let x = if specialize_active {
                specialize_xic(xic, &corr.specializations)
            } else {
                xic.clone()
            };
            deds.push(compile_xic(&mut ctx, &x));
        }

        // Relational constraints are passed through.
        deds.extend(corr.relational_constraints.iter().cloned());

        // Specialization relations: definitional constraints linking each
        // relation to the navigation it abbreviates, and (when specialization
        // is active and the document is proprietary) membership in the
        // proprietary schema.
        if specialize_active {
            for m in &corr.specializations {
                deds.extend(compile_view(&mut ctx, &m.definition_view()));
                deds.extend(m.functional_dependency());
                if corr.proprietary_documents.contains(&m.document) {
                    proprietary.insert(Predicate::new(&m.relation));
                }
            }
        }

        // TIX for every document involved.
        if options.include_tix {
            for doc in corr.all_documents() {
                deds.extend(tix_constraints_core(&GrexSchema::new(&doc)));
            }
        }

        // Proprietary base relations and native documents. When specialization
        // is active and replaces navigation, a specialized proprietary
        // document contributes only its specialization relations (added
        // above), not its raw GReX predicates.
        for r in &corr.proprietary_relations {
            proprietary.insert(Predicate::new(r));
        }
        for d in &corr.proprietary_documents {
            let specialized = specialize_active
                && options.spec_replaces_navigation
                && corr.specializations.iter().any(|m| &m.document == d);
            if !specialized {
                proprietary.extend(GrexSchema::new(d).all_predicates());
            }
        }

        (deds, proprietary)
    }

    /// Reformulate a single XBind query (one navigation block).
    pub fn reformulate_xbind(&self, xbind: &XBindQuery) -> BlockReformulation {
        self.reformulate_xbind_with_engine(xbind, &self.engine)
    }

    /// [`Mars::reformulate_xbind`] under a per-request budget. The budget
    /// tightens a copy of the engine's standing options for this one request
    /// (the shared engine and its fingerprint are untouched, so cache keys
    /// stay comparable across budgets). Budget exhaustion degrades rather
    /// than errors: the result carries the best reformulation found, tagged
    /// via [`BlockReformulation::degradation`].
    pub fn reformulate_xbind_budgeted(
        &self,
        xbind: &XBindQuery,
        budget: &ReformulationBudget,
    ) -> BlockReformulation {
        if budget.is_unbounded() {
            return self.reformulate_xbind(xbind);
        }
        let engine = self.engine.clone().with_options(budget.apply(&self.options.cb));
        self.reformulate_xbind_with_engine(xbind, &engine)
    }

    fn reformulate_xbind_with_engine(
        &self,
        xbind: &XBindQuery,
        engine: &ChaseBackchase,
    ) -> BlockReformulation {
        let start = Instant::now();
        let effective =
            if self.options.use_specialization && !self.correspondence.specializations.is_empty() {
                specialize_query(xbind, &self.correspondence.specializations)
            } else {
                xbind.clone()
            };
        let mut ctx = CompileContext::new();
        let compiled: ConjunctiveQuery = compile_xbind(&mut ctx, &effective);
        let result = engine.reformulate(&compiled);
        // Reformulations are safe (head variables bound in the body), so SQL
        // rendering cannot fail on them; `.ok()` guards the contract anyway.
        let sql = result.best_or_initial().and_then(|q| sql_for_query(q).ok());
        BlockReformulation {
            name: xbind.name.clone(),
            compiled,
            result,
            sql,
            route: None,
            duration: start.elapsed(),
        }
    }

    /// [`Mars::reformulate_xbind`] with the degenerate inputs rejected up
    /// front: a correspondence that compiled to nothing, a block with no
    /// atoms, and an unsafe block (head variable unbound in the body) each
    /// surface as a structured [`MarsError`] instead of a meaningless run.
    /// This is the entry point resident services should use.
    pub fn try_reformulate_xbind(
        &self,
        xbind: &XBindQuery,
    ) -> Result<BlockReformulation, MarsError> {
        if self.engine.deds().is_empty() && self.engine.proprietary.is_empty() {
            return Err(MarsError::EmptyCorrespondence);
        }
        if xbind.atoms.is_empty() {
            return Err(MarsError::EmptyBlock { block: xbind.name.clone() });
        }
        if !xbind.is_safe() {
            return Err(MarsError::UnsafeBlock { block: xbind.name.clone() });
        }
        Ok(self.reformulate_xbind(xbind))
    }

    /// [`Mars::try_reformulate_xbind`] under a per-request budget: the same
    /// degenerate-input checks, then a budgeted run (see
    /// [`Mars::reformulate_xbind_budgeted`]).
    pub fn try_reformulate_xbind_budgeted(
        &self,
        xbind: &XBindQuery,
        budget: &ReformulationBudget,
    ) -> Result<BlockReformulation, MarsError> {
        if self.engine.deds().is_empty() && self.engine.proprietary.is_empty() {
            return Err(MarsError::EmptyCorrespondence);
        }
        if xbind.atoms.is_empty() {
            return Err(MarsError::EmptyBlock { block: xbind.name.clone() });
        }
        if !xbind.is_safe() {
            return Err(MarsError::UnsafeBlock { block: xbind.name.clone() });
        }
        Ok(self.reformulate_xbind_budgeted(xbind, budget))
    }

    /// [`Mars::try_reformulate_xbind`], then price the chosen reformulation
    /// against the two storage backends and attach the
    /// [`RoutingDecision`](mars_cost::RoutingDecision) to the block.
    ///
    /// The decision is computed on
    /// [`best_or_initial`](mars_chase::ReformulationResult::best_or_initial)
    /// — the query the caller will actually execute — using the relational
    /// store's exact statistics and the XML store's navigation statistics.
    /// Blocks whose reformulation produced no executable query carry no
    /// route.
    ///
    /// # Errors
    ///
    /// The same degenerate-input errors as [`Mars::try_reformulate_xbind`].
    pub fn try_reformulate_xbind_routed(
        &self,
        xbind: &XBindQuery,
        db: &RelationalDatabase,
        xml: &XmlStore,
    ) -> Result<BlockReformulation, MarsError> {
        let mut block = self.try_reformulate_xbind(xbind)?;
        block.route =
            block.result.best_or_initial().map(|best| mars_cost::route_query(best, db, xml));
        Ok(block)
    }

    /// Reformulate a full client XQuery (text): parse, decorrelate, and
    /// reformulate every navigation block.
    pub fn reformulate_xquery(
        &self,
        xquery: &str,
        default_document: &str,
    ) -> Result<MarsResult, MarsError> {
        let ast = parse_xquery(xquery)?;
        let dec = decorrelate(&ast, default_document);
        let start = Instant::now();
        let blocks: Vec<BlockReformulation> =
            dec.blocks.iter().map(|b| self.reformulate_xbind(b)).collect();
        Ok(MarsResult { decorrelated: dec, blocks, total: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_path;

    /// A miniature publishing scenario: a proprietary table `bookRel(title,
    /// author)` is published as the public document `bib.xml` through a GAV
    /// view, and additionally a LAV view caches the author list as a table.
    fn mini_correspondence() -> SchemaCorrespondence {
        let case_body =
            XBindQuery::new("PubMap").with_head(&["t", "a"]).with_atom(XBindAtom::Relational {
                relation: "bookRel".to_string(),
                args: vec![mars_xquery::XBindTerm::var("t"), mars_xquery::XBindTerm::var("a")],
            });
        let gav = ViewDef::xml_flat("PubMap", case_body, "bib.xml", "book", &["title", "author"]);

        let lav_body = XBindQuery::new("AuthorsMap")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            });
        let lav = ViewDef::relational("authorsCache", lav_body);

        SchemaCorrespondence {
            public_documents: vec!["bib.xml".to_string()],
            gav_views: vec![gav],
            lav_views: vec![lav],
            proprietary_relations: vec!["bookRel".to_string()],
            ..Default::default()
        }
    }

    #[test]
    fn correspondence_compiles_to_deds_and_proprietary_predicates() {
        let mars = Mars::new(mini_correspondence());
        assert!(!mars.dependencies().is_empty());
        assert!(mars.proprietary_predicates().contains(&Predicate::new("bookRel")));
        assert!(mars.proprietary_predicates().contains(&Predicate::new("authorsCache")));
        // TIX added for the published document.
        assert!(mars
            .dependencies()
            .iter()
            .any(|d| d.name.contains("TIX") && d.name.contains("bib.xml")));
        assert_eq!(mars.correspondence().public_documents, vec!["bib.xml"]);
    }

    #[test]
    fn client_query_is_reformulated_against_the_proprietary_table() {
        let mars = Mars::new(mini_correspondence());
        // Client query over the public document: titles with their authors.
        let client = XBindQuery::new("Client")
            .with_head(&["t", "a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./title/text()").unwrap(),
                source: "b".to_string(),
                var: "t".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            });
        let block = mars.reformulate_xbind(&client);
        assert!(block.result.has_reformulation(), "a reformulation over bookRel must exist");
        let best = block.result.best_or_initial().unwrap();
        assert!(best.body.iter().any(|a| a.predicate == Predicate::new("bookRel")));
        let sql = block.sql.as_ref().unwrap();
        assert!(sql.contains("bookRel"));
    }

    #[test]
    fn threaded_reformulation_is_identical_to_sequential() {
        let client = XBindQuery::new("Client")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            });
        let seq = Mars::with_options(mini_correspondence(), MarsOptions::default().exhaustive())
            .reformulate_xbind(&client);
        let par = Mars::with_options(
            mini_correspondence(),
            MarsOptions::default().exhaustive().with_threads(4),
        )
        .reformulate_xbind(&client);
        assert_eq!(seq.result.minimal.len(), par.result.minimal.len());
        for ((a, ca), (b, cb)) in seq.result.minimal.iter().zip(&par.result.minimal) {
            assert_eq!(format!("{a}"), format!("{b}"));
            assert_eq!(ca, cb);
        }
        assert_eq!(seq.result.stats.candidates_inspected, par.result.stats.candidates_inspected);
    }

    /// The semi-naive delta-seeded joins are a pure evaluation-strategy
    /// change: the full pipeline must produce byte-identical reformulations
    /// with them on (default) and off.
    #[test]
    fn seminaive_and_naive_joins_reformulate_identically() {
        let client = XBindQuery::new("Client")
            .with_head(&["t", "a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./title/text()").unwrap(),
                source: "b".to_string(),
                var: "t".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            });
        let semi = Mars::with_options(mini_correspondence(), MarsOptions::default().exhaustive())
            .reformulate_xbind(&client);
        let naive = Mars::with_options(
            mini_correspondence(),
            MarsOptions::default().exhaustive().with_naive_joins(),
        )
        .reformulate_xbind(&client);
        assert_eq!(format!("{}", semi.compiled), format!("{}", naive.compiled));
        assert_eq!(semi.result.minimal.len(), naive.result.minimal.len());
        for ((a, ca), (b, cb)) in semi.result.minimal.iter().zip(&naive.result.minimal) {
            assert_eq!(format!("{a}"), format!("{b}"));
            assert_eq!(ca, cb);
        }
        assert_eq!(semi.sql, naive.sql);
        assert_eq!(semi.result.stats.candidates_inspected, naive.result.stats.candidates_inspected);
        assert_eq!(semi.result.stats.equivalence_checks, naive.result.stats.equivalence_checks);
        assert_eq!(semi.result.stats.chase.applied_steps, naive.result.stats.chase.applied_steps);
    }

    /// The adaptive join planner is a pure evaluation-strategy change: the
    /// full pipeline must produce byte-identical reformulations with it
    /// (default) and with the fixed-threshold fallback, at any threshold.
    #[test]
    fn adaptive_and_fixed_threshold_reformulate_identically() {
        let client = XBindQuery::new("Client")
            .with_head(&["t", "a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./title/text()").unwrap(),
                source: "b".to_string(),
                var: "t".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            });
        let adaptive =
            Mars::with_options(mini_correspondence(), MarsOptions::default().exhaustive())
                .reformulate_xbind(&client);
        for threshold in [0usize, 8, usize::MAX] {
            let fixed = Mars::with_options(
                mini_correspondence(),
                MarsOptions::default().exhaustive().with_fixed_scan_threshold(threshold),
            )
            .reformulate_xbind(&client);
            assert_eq!(format!("{}", adaptive.compiled), format!("{}", fixed.compiled));
            assert_eq!(adaptive.result.minimal.len(), fixed.result.minimal.len());
            for ((a, ca), (b, cb)) in adaptive.result.minimal.iter().zip(&fixed.result.minimal) {
                assert_eq!(format!("{a}"), format!("{b}"), "threshold = {threshold}");
                assert_eq!(ca, cb);
            }
            assert_eq!(adaptive.sql, fixed.sql);
            assert_eq!(
                adaptive.result.stats.candidates_inspected,
                fixed.result.stats.candidates_inspected
            );
            assert_eq!(
                adaptive.result.stats.chase.applied_steps,
                fixed.result.stats.chase.applied_steps
            );
        }
    }

    #[test]
    fn greedy_minimization_opt_in_yields_a_single_reformulation() {
        let mars = Mars::with_options(
            mini_correspondence(),
            MarsOptions::default().with_greedy_minimization(),
        );
        let client = XBindQuery::new("Client")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            });
        let block = mars.reformulate_xbind(&client);
        assert!(block.result.has_reformulation());
        assert!(block.result.minimal.len() <= 1, "greedy yields at most one reformulation");
    }

    /// Regression: unparsable XQuery used to surface as the raw parser error
    /// type; it is now a [`MarsError::Parse`] like every other degenerate
    /// input, so resident callers handle one error enum.
    #[test]
    fn parse_errors_surface_as_mars_error() {
        let mars = Mars::new(mini_correspondence());
        let err = mars.reformulate_xquery("for $b in", "bib.xml").unwrap_err();
        assert!(matches!(err, MarsError::Parse(_)), "got {err}");
        assert!(!err.to_string().is_empty());
    }

    /// Regression: a block with no atoms has nothing to reformulate; the
    /// checked entry point reports it instead of running a meaningless chase.
    #[test]
    fn empty_block_is_a_structured_error() {
        let mars = Mars::new(mini_correspondence());
        let empty = XBindQuery::new("E").with_head(&["x"]);
        let err = mars.try_reformulate_xbind(&empty).unwrap_err();
        assert_eq!(err, MarsError::EmptyBlock { block: "E".to_string() });
    }

    /// Regression: an unsafe block (head variable unbound in the body) is a
    /// client error, reported as such by the checked entry point.
    #[test]
    fn unsafe_block_is_a_structured_error() {
        let mars = Mars::new(mini_correspondence());
        let unsafe_q =
            XBindQuery::new("U").with_head(&["nowhere"]).with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            });
        let err = mars.try_reformulate_xbind(&unsafe_q).unwrap_err();
        assert_eq!(err, MarsError::UnsafeBlock { block: "U".to_string() });
    }

    /// Regression: a default (zero-view, zero-document) correspondence
    /// compiles to nothing; the checked entry point says so instead of
    /// reformulating against an empty dependency set.
    #[test]
    fn zero_view_correspondence_is_a_structured_error() {
        let mars = Mars::new(SchemaCorrespondence::default());
        let q = XBindQuery::new("Q").with_head(&["b"]).with_atom(XBindAtom::AbsolutePath {
            document: "bib.xml".to_string(),
            path: parse_path("//book").unwrap(),
            var: "b".to_string(),
        });
        let err = mars.try_reformulate_xbind(&q).unwrap_err();
        assert_eq!(err, MarsError::EmptyCorrespondence);
    }

    /// The fingerprint is stable for equal systems and moves when the
    /// correspondence (and hence the compiled dependency set) changes.
    #[test]
    fn fingerprint_tracks_the_compiled_correspondence() {
        let a = Mars::new(mini_correspondence());
        let b = Mars::new(mini_correspondence());
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut changed = mini_correspondence();
        changed.proprietary_relations.push("extraRel".to_string());
        assert_ne!(a.fingerprint(), Mars::new(changed).fingerprint());

        let other_options =
            Mars::with_options(mini_correspondence(), MarsOptions::default().exhaustive());
        assert_ne!(a.fingerprint(), other_options.fingerprint(), "options are fingerprinted too");
    }

    /// Reserved constants are the structural ones: document names and every
    /// constant the compiled dependency set mentions (tag names like `book`).
    #[test]
    fn reserved_constants_cover_documents_and_schema_tags() {
        let mars = Mars::new(mini_correspondence());
        let reserved = mars.reserved_constants();
        assert!(reserved.contains("bib.xml"));
        assert!(reserved.contains("book"), "view-output tag names are structural");
        assert!(!reserved.contains("some client value"));
    }

    #[test]
    fn full_xquery_pipeline_runs() {
        let mars = Mars::new(mini_correspondence());
        let result = mars
            .reformulate_xquery(
                "for $b in //book $a in $b/author/text() return <writer>$a</writer>",
                "bib.xml",
            )
            .unwrap();
        assert_eq!(result.blocks.len(), 1);
        assert!(result.blocks[0].result.has_reformulation());
        assert!(result.reformulated_block_count() >= 1);
    }
}
