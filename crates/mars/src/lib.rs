//! # mars — the MARS system facade
//!
//! This crate wires the whole pipeline of Figures 2 and 3 together:
//!
//! 1. the **schema correspondence** (LAV + GAV views in XBind/XQuery form,
//!    XML and relational integrity constraints, optional schema
//!    specializations) is compiled once into a set of relational DEDs over
//!    GReX plus the proprietary-schema predicate set;
//! 2. a **client XQuery** against the public schema is split into its
//!    navigation part (decorrelated XBind queries) and tagging template;
//! 3. each XBind block is compiled to a relational conjunctive query and
//!    reformulated by the **Chase & Backchase** engine, producing the initial
//!    reformulation, all minimal reformulations and the cost-optimal one;
//! 4. the chosen reformulation is rendered as an executable query (SQL for
//!    relational storage, XBind for native XML storage) and can be executed
//!    against the `mars-storage` substrates.
//!
//! For resident deployments the [`MarsService`] wraps a compiled system with
//! a shape-keyed [`PlanCache`]: repeated query templates that differ only in
//! constants skip the Chase & Backchase and are answered by re-substituting
//! the fresh constants into the cached reformulation. Degenerate inputs
//! surface as structured [`MarsError`]s rather than panics.
//!
//! Requests are survivable end to end: per-request
//! [`ReformulationBudget`]s degrade to the best-so-far answer (tagged with a
//! [`Degradation`] reason) instead of erroring, a bounded admission limit
//! sheds overload with [`MarsError::Overloaded`], and panics are isolated
//! per request — see the [`service`] module docs for the degradation ladder.

#![deny(missing_docs)]

pub mod cache;
pub mod error;
pub mod result;
pub mod service;
pub mod system;

pub use cache::{CacheStats, PlanCache};
pub use error::MarsError;
pub use mars_chase::{Degradation, ReformulationBudget};
pub use result::{BlockReformulation, MarsResult};
pub use service::{FaultHook, MarsService, ServiceStats};
pub use system::{Mars, MarsOptions, SchemaCorrespondence};
