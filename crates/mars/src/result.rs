//! Result types of the MARS pipeline.

use mars_chase::{Degradation, ReformulationResult};
use mars_cost::RoutingDecision;
use mars_cq::ConjunctiveQuery;
use mars_xquery::DecorrelatedQuery;
use std::time::Duration;

/// The reformulation of one decorrelated navigation block.
#[derive(Clone, Debug)]
pub struct BlockReformulation {
    /// Block (XBind query) name.
    pub name: String,
    /// The compiled relational query over GReX (or the specialized schema).
    pub compiled: ConjunctiveQuery,
    /// The C&B result: universal plan, initial, minimal and best reformulations.
    pub result: ReformulationResult,
    /// SQL rendering of the chosen reformulation, when one exists.
    pub sql: Option<String>,
    /// The backend routing decision for the chosen reformulation, when one
    /// was priced (see [`Mars::try_reformulate_xbind_routed`]). Cached and
    /// replayed alongside the SQL: the decision depends only on the query
    /// shape and the store statistics, never on the constants, so
    /// resubstitution clones it verbatim.
    ///
    /// [`Mars::try_reformulate_xbind_routed`]: crate::Mars::try_reformulate_xbind_routed
    pub route: Option<RoutingDecision>,
    /// Wall-clock time spent reformulating this block.
    pub duration: Duration,
}

impl BlockReformulation {
    /// The number of minimal reformulations found for this block.
    pub fn minimal_count(&self) -> usize {
        self.result.minimal.len()
    }

    /// Why this block's reformulation degraded, when it did (budget
    /// exhaustion somewhere in the chase → backchase pipeline). `None`
    /// exactly when the answer is what an unbounded run would produce —
    /// which is also the precondition for caching it.
    pub fn degradation(&self) -> Option<Degradation> {
        self.result.stats.degradation
    }

    /// `true` when some budget cut this reformulation short.
    pub fn is_degraded(&self) -> bool {
        self.degradation().is_some()
    }
}

/// The result of reformulating a full client XQuery.
#[derive(Clone, Debug)]
pub struct MarsResult {
    /// The decorrelated query (navigation blocks + tagging template).
    pub decorrelated: DecorrelatedQuery,
    /// One reformulation per navigation block.
    pub blocks: Vec<BlockReformulation>,
    /// Total reformulation time.
    pub total: Duration,
}

impl MarsResult {
    /// How many blocks obtained at least one reformulation.
    pub fn reformulated_block_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.result.has_reformulation()).count()
    }

    /// Sum of the per-block best costs (when every block has one).
    pub fn total_best_cost(&self) -> Option<f64> {
        self.blocks.iter().map(|b| b.result.best.as_ref().map(|(_, c)| *c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_chase::{CbStatistics, ReformulationResult};

    fn dummy_block(with_best: bool) -> BlockReformulation {
        let q = ConjunctiveQuery::new("Q");
        BlockReformulation {
            name: "Q".to_string(),
            compiled: q.clone(),
            result: ReformulationResult {
                universal_plan: q.clone(),
                initial: None,
                minimal: if with_best { vec![(q.clone(), 1.0)] } else { vec![] },
                best: if with_best { Some((q, 1.0)) } else { None },
                stats: CbStatistics::default(),
            },
            sql: None,
            route: None,
            duration: Duration::default(),
        }
    }

    #[test]
    fn counting_helpers() {
        let result = MarsResult {
            decorrelated: DecorrelatedQuery {
                blocks: vec![],
                template: mars_xquery::TaggingTemplate::default(),
            },
            blocks: vec![dummy_block(true), dummy_block(false)],
            total: Duration::default(),
        };
        assert_eq!(result.reformulated_block_count(), 1);
        assert_eq!(result.blocks[0].minimal_count(), 1);
        assert_eq!(result.total_best_cost(), None);
    }
}
