//! The shape-keyed plan cache behind [`crate::MarsService`].
//!
//! Entries are keyed on `(shape key, dependency fingerprint)`:
//!
//! * the **shape key** ([`mars_xquery::shape_of`]) is the incoming query with
//!   variables alpha-renamed and non-reserved constants parameterized out, so
//!   arrivals of the same template with different constants share one entry;
//! * the **fingerprint** ([`crate::Mars::fingerprint`]) digests the compiled
//!   dependency set, the proprietary schema and the engine options, so a
//!   changed correspondence can never serve a stale plan — entries of an old
//!   fingerprint are unreachable by construction and are swept out by
//!   [`PlanCache::invalidate_except`].
//!
//! On a hit the cached [`BlockReformulation`] is **re-substituted**: the
//! stored entry's variables and constants are mapped pairwise onto the new
//! query's (both shapes list them in first-occurrence order, and equal shape
//! keys guarantee the lists align), every query in the result is rewritten in
//! one simultaneous pass, and the SQL is re-rendered from the rewritten best
//! query. The service layer property-tests that this equals a cold
//! reformulation byte for byte.

use crate::result::BlockReformulation;
use mars_cq::{ConjunctiveQuery, Constant, Term, Variable};
use mars_storage::sql_for_query;
use mars_xquery::QueryShape;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hit/miss/invalidation counters and the current entry count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a cold reformulation.
    pub misses: u64,
    /// Entries dropped because their fingerprint no longer matches.
    pub invalidations: u64,
    /// Cold results that were computed but **not** inserted because they were
    /// degraded (a budget cut them short). Cache hygiene rule: a degraded
    /// answer is never cached — the next arrival of the shape must get a real
    /// attempt.
    pub degraded_uncached: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// One cached reformulation: the shape it was stored under (whose
/// `variables`/`constants` lists drive re-substitution) and the result.
struct CachedEntry {
    shape: QueryShape,
    block: BlockReformulation,
}

/// A concurrent, shape-keyed reformulation cache (see the module docs).
#[derive(Default)]
pub struct PlanCache {
    entries: Mutex<HashMap<(String, u64), CachedEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    degraded_uncached: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Counters and entry count. The counters are monotone across the cache's
    /// lifetime; `entries` is the instantaneous resident count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            invalidations: self.invalidations.load(Ordering::SeqCst),
            degraded_uncached: self.degraded_uncached.load(Ordering::SeqCst),
            entries: self.entries.lock().expect("plan cache lock").len(),
        }
    }

    /// Record that a cold result was withheld from the cache because it was
    /// degraded (see [`CacheStats::degraded_uncached`]).
    pub fn note_degraded_uncached(&self) {
        self.degraded_uncached.fetch_add(1, Ordering::SeqCst);
    }

    /// Look up a reformulation for `shape` under `fingerprint`. On a hit the
    /// stored result is re-substituted with `shape`'s variables and
    /// constants; on a miss `None` is returned and the miss is counted.
    pub fn lookup(&self, shape: &QueryShape, fingerprint: u64) -> Option<BlockReformulation> {
        let entries = self.entries.lock().expect("plan cache lock");
        let entry = entries.get(&(shape.key.clone(), fingerprint));
        match entry {
            Some(e)
                if e.shape.variables.len() == shape.variables.len()
                    && e.shape.constants.len() == shape.constants.len() =>
            {
                let block = resubstitute(&e.block, &e.shape, shape);
                drop(entries);
                self.hits.fetch_add(1, Ordering::SeqCst);
                Some(block)
            }
            _ => {
                drop(entries);
                self.misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Insert a reformulation computed cold for `shape` under `fingerprint`.
    /// First writer wins: a concurrent duplicate insert leaves the resident
    /// entry in place, so racing warm readers keep seeing one plan.
    pub fn insert(&self, shape: QueryShape, fingerprint: u64, block: BlockReformulation) {
        let mut entries = self.entries.lock().expect("plan cache lock");
        entries.entry((shape.key.clone(), fingerprint)).or_insert(CachedEntry { shape, block });
    }

    /// Drop every entry whose fingerprint differs from `current` (the
    /// spec/dependency set changed). Dropped entries are counted as
    /// invalidations.
    pub fn invalidate_except(&self, current: u64) {
        let mut entries = self.entries.lock().expect("plan cache lock");
        let before = entries.len();
        entries.retain(|(_, fp), _| *fp == current);
        let dropped = (before - entries.len()) as u64;
        drop(entries);
        self.invalidations.fetch_add(dropped, Ordering::SeqCst);
    }

    /// Drop every entry (counted as invalidations).
    pub fn clear(&self) {
        let mut entries = self.entries.lock().expect("plan cache lock");
        let dropped = entries.len() as u64;
        entries.clear();
        drop(entries);
        self.invalidations.fetch_add(dropped, Ordering::SeqCst);
    }
}

/// Rewrite a cached reformulation from the shape it was stored under to the
/// shape of the incoming query: variables and constants are mapped pairwise
/// (position `i` of one list to position `i` of the other — both are in
/// first-occurrence order and the equal shape key guarantees alignment), and
/// every query is rewritten in one simultaneous pass. The SQL is re-rendered
/// from the rewritten best query so constant literals in `WHERE` clauses
/// track the substitution.
fn resubstitute(
    block: &BlockReformulation,
    stored: &QueryShape,
    incoming: &QueryShape,
) -> BlockReformulation {
    let vars: HashMap<Variable, Variable> = stored
        .variables
        .iter()
        .zip(incoming.variables.iter())
        .filter(|(a, b)| a != b)
        .map(|(a, b)| (Variable::named(a), Variable::named(b)))
        .collect();
    let consts: HashMap<Constant, Constant> = stored
        .constants
        .iter()
        .zip(incoming.constants.iter())
        .filter(|(a, b)| a != b)
        .map(|(a, b)| (Constant::str(a), Constant::str(b)))
        .collect();
    if vars.is_empty() && consts.is_empty() {
        return block.clone();
    }
    let q = |query: &ConjunctiveQuery| remap_query(query, &vars, &consts);
    let mut result = block.result.clone();
    result.universal_plan = q(&result.universal_plan);
    result.initial = result.initial.as_ref().map(&q);
    result.minimal = result.minimal.iter().map(|(m, c)| (q(m), *c)).collect();
    result.best = result.best.as_ref().map(|(b, c)| (q(b), *c));
    // Reformulations are safe (head variables bound in the body), so SQL
    // rendering cannot fail on them; `.ok()` guards the contract anyway.
    let sql = result.best_or_initial().and_then(|q| sql_for_query(q).ok());
    BlockReformulation {
        name: block.name.clone(),
        compiled: q(&block.compiled),
        result,
        sql,
        // Routing depends on the query shape and the store statistics, not
        // on the constants a shape abstracts over — replay it verbatim.
        route: block.route.clone(),
        duration: block.duration,
    }
}

/// One simultaneous pass: every term is looked up in both maps exactly once,
/// so `a→b, b→a` swaps correctly rather than cascading.
fn remap_term(
    t: Term,
    vars: &HashMap<Variable, Variable>,
    consts: &HashMap<Constant, Constant>,
) -> Term {
    match t {
        Term::Var(v) => Term::Var(vars.get(&v).copied().unwrap_or(v)),
        Term::Const(c) => Term::Const(consts.get(&c).copied().unwrap_or(c)),
    }
}

fn remap_query(
    q: &ConjunctiveQuery,
    vars: &HashMap<Variable, Variable>,
    consts: &HashMap<Constant, Constant>,
) -> ConjunctiveQuery {
    let t = |term: &Term| remap_term(*term, vars, consts);
    ConjunctiveQuery {
        name: q.name.clone(),
        head: q.head.iter().map(&t).collect(),
        body: q
            .body
            .iter()
            .map(|a| mars_cq::Atom::new(a.predicate, a.args.iter().map(&t).collect()))
            .collect(),
        inequalities: q.inequalities.iter().map(|(a, b)| (t(a), t(b))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_chase::{CbStatistics, ReformulationResult};
    use mars_cq::Atom;
    use std::time::Duration;

    fn shape(key: &str, vars: &[&str], consts: &[&str]) -> QueryShape {
        QueryShape {
            key: key.to_string(),
            constants: consts.iter().map(|s| s.to_string()).collect(),
            variables: vars.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// `Q(x) :- r(x, c0, c1)` as a full block reformulation.
    fn block(c0: &str, c1: &str) -> BlockReformulation {
        let q = ConjunctiveQuery::new("Q").with_head(vec![Term::var("x")]).with_atom(Atom::named(
            "r",
            vec![Term::var("x"), Term::constant_str(c0), Term::constant_str(c1)],
        ));
        let sql = sql_for_query(&q).ok();
        BlockReformulation {
            name: "Q".to_string(),
            compiled: q.clone(),
            result: ReformulationResult {
                universal_plan: q.clone(),
                initial: Some(q.clone()),
                minimal: vec![(q.clone(), 1.0)],
                best: Some((q, 1.0)),
                stats: CbStatistics::default(),
            },
            sql,
            route: None,
            duration: Duration::default(),
        }
    }

    #[test]
    fn stats_count_hits_misses_and_invalidations() {
        let cache = PlanCache::new();
        let s = shape("k", &["x"], &["a", "b"]);
        assert!(cache.lookup(&s, 1).is_none());
        cache.insert(s.clone(), 1, block("a", "b"));
        assert!(cache.lookup(&s, 1).is_some());
        assert!(cache.lookup(&s, 2).is_none(), "a different fingerprint is a different key");
        cache.invalidate_except(2);
        assert!(cache.lookup(&s, 1).is_none(), "the old-fingerprint entry is gone");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let cache = PlanCache::new();
        let s = shape("k", &["x"], &["a", "b"]);
        cache.insert(s.clone(), 1, block("a", "b"));
        cache.insert(s.clone(), 1, block("other", "values"));
        let hit = cache.lookup(&s, 1).unwrap();
        assert!(hit.sql.as_ref().unwrap().contains('a'), "the first entry stayed resident");
        assert_eq!(cache.stats().entries, 1);
    }

    /// Re-substitution maps stored constants to incoming constants pairwise
    /// and simultaneously: swapping two constants must not cascade
    /// (`a→b` then `b→a` applied in sequence would collapse both to `a`).
    #[test]
    fn resubstitution_is_simultaneous() {
        let cache = PlanCache::new();
        cache.insert(shape("k", &["x"], &["a", "b"]), 1, block("a", "b"));
        let swapped = cache.lookup(&shape("k", &["x"], &["b", "a"]), 1).unwrap();
        let atom = &swapped.compiled.body[0];
        assert_eq!(atom.args[1], Term::constant_str("b"));
        assert_eq!(atom.args[2], Term::constant_str("a"));
        // Every result field and the SQL rendering track the substitution.
        let cold = block("b", "a");
        assert_eq!(
            format!("{}", swapped.result.universal_plan),
            format!("{}", cold.result.universal_plan)
        );
        assert_eq!(swapped.sql, cold.sql);
    }

    #[test]
    fn arity_mismatch_is_treated_as_a_miss() {
        let cache = PlanCache::new();
        cache.insert(shape("k", &["x"], &["a", "b"]), 1, block("a", "b"));
        assert!(
            cache.lookup(&shape("k", &["x"], &["a"]), 1).is_none(),
            "an entry whose parameter list cannot align is never re-substituted"
        );
    }
}
