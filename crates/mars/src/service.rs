//! Reformulation as a service: a [`Mars`] system behind a shape-keyed
//! [`PlanCache`].
//!
//! A deployed MARS instance is resident: the schema correspondence is
//! compiled once and then millions of client queries arrive against it, most
//! of them instances of a few templates that differ only in constants. The
//! service normalizes each arrival to its [`QueryShape`](mars_xquery::QueryShape)
//! (variables alpha-renamed, non-reserved constants parameterized out) and
//! answers repeats from the cache by re-substituting the fresh constants into
//! the cached reformulation — skipping the chase & backchase entirely. The
//! re-substituted warm answer is byte-identical to what a cold run would
//! produce (property-tested in `tests/property_based.rs`).
//!
//! Entries are scoped to the system's [fingerprint](Mars::fingerprint); use
//! [`MarsService::replace`] when the correspondence changes and the stale
//! entries are invalidated rather than served.
//!
//! The service is `Sync`: one instance can be shared across request threads
//! (`&MarsService` handles), which is how the `experiments --serve` harness
//! drives it.
//!
//! # The degradation ladder
//!
//! Every request is survivable. Arrivals pass **admission** first: when a
//! bounded in-flight limit ([`MarsService::with_admission_limit`]) is
//! saturated the request is *shed* with a typed
//! [`MarsError::Overloaded`] — nothing queues forever. Admitted requests run
//! under a per-request [`ReformulationBudget`] (the service default or an
//! explicit one via [`MarsService::reformulate_xbind_with`]); budget
//! exhaustion *degrades* to the best reformulation found so far rather than
//! erroring. The whole request body runs inside `catch_unwind`, so a
//! poisoned request surfaces as [`MarsError::ReformulationPanicked`] instead
//! of killing sibling threads. Cache hygiene rule: **degraded or panicked
//! results are never inserted into the [`PlanCache`]** — a retry of the
//! shape gets a real attempt ([`CacheStats::degraded_uncached`] counts the
//! withheld inserts).

use crate::cache::{CacheStats, PlanCache};
use crate::error::MarsError;
use crate::result::{BlockReformulation, MarsResult};
use crate::system::Mars;
use mars_chase::ReformulationBudget;
use mars_storage::{RelationalDatabase, XmlStore};
use mars_xquery::{decorrelate, parse_xquery, shape_of, XBindQuery};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A fault-injection hook called at named pipeline points (`"lookup"` before
/// the cache probe, `"reformulate"` before a cold chase & backchase). The
/// hook runs *inside* the request's `catch_unwind` scope, so a hook that
/// panics or stalls exercises exactly the isolation a real fault would.
pub type FaultHook = Arc<dyn Fn(&str) + Send + Sync>;

/// Monotone request-outcome counters for one service instance. Every
/// admitted-or-shed arrival lands in exactly one bucket (degenerate-input
/// client errors excepted — those are the caller's bug, not service load).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered at full fidelity (warm hits included).
    pub served: u64,
    /// Requests answered by a budget-degraded reformulation.
    pub degraded: u64,
    /// Requests rejected at admission ([`MarsError::Overloaded`]).
    pub shed: u64,
    /// Requests that panicked mid-flight and were isolated
    /// ([`MarsError::ReformulationPanicked`]).
    pub panicked: u64,
}

/// RAII in-flight slot: decrements on drop, unwinding included, so a
/// panicking request can never leak its admission slot.
struct InFlightPermit<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for InFlightPermit<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A resident [`Mars`] system with a plan cache (see the module docs).
pub struct MarsService {
    mars: Mars,
    cache: PlanCache,
    fingerprint: u64,
    reserved: HashSet<String>,
    default_budget: ReformulationBudget,
    max_in_flight: usize,
    in_flight: AtomicUsize,
    served: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    panicked: AtomicU64,
    fault_hook: Option<FaultHook>,
}

impl MarsService {
    /// Wrap a compiled system. The fingerprint and the reserved-constant set
    /// (the constants [`shape_of`] must keep literal) are computed once here.
    pub fn new(mars: Mars) -> MarsService {
        let fingerprint = mars.fingerprint();
        let reserved = mars.reserved_constants();
        MarsService {
            mars,
            cache: PlanCache::new(),
            fingerprint,
            reserved,
            default_budget: ReformulationBudget::unbounded(),
            max_in_flight: 0,
            in_flight: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            fault_hook: None,
        }
    }

    /// Builder: the budget applied to requests that do not carry their own
    /// (see [`MarsService::reformulate_xbind_with`]). Defaults to unbounded.
    pub fn with_default_budget(mut self, budget: ReformulationBudget) -> MarsService {
        self.default_budget = budget;
        self
    }

    /// Builder: bound concurrent in-flight requests. Arrivals beyond the
    /// limit are shed at admission with [`MarsError::Overloaded`]. `0`
    /// (the default) means unbounded.
    pub fn with_admission_limit(mut self, max_in_flight: usize) -> MarsService {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Builder: install a [`FaultHook`] (chaos testing; see the type docs).
    pub fn with_fault_hook(mut self, hook: FaultHook) -> MarsService {
        self.fault_hook = Some(hook);
        self
    }

    /// Request-outcome counters (see [`ServiceStats`]).
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            served: self.served.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            panicked: self.panicked.load(Ordering::SeqCst),
        }
    }

    /// The wrapped system.
    pub fn mars(&self) -> &Mars {
        &self.mars
    }

    /// The fingerprint cache entries are currently scoped to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Swap in a rebuilt system (the schema correspondence or the options
    /// changed). The fingerprint and reserved constants are recomputed and
    /// every cache entry of the old fingerprint is invalidated.
    pub fn replace(&mut self, mars: Mars) {
        self.fingerprint = mars.fingerprint();
        self.reserved = mars.reserved_constants();
        self.mars = mars;
        self.cache.invalidate_except(self.fingerprint);
    }

    /// Reformulate one navigation block through the cache under the
    /// service's default budget: a shape hit re-substitutes the cached plan
    /// with this query's constants, a miss runs
    /// [`Mars::try_reformulate_xbind_budgeted`] cold. Non-degraded cold
    /// results are cached; degraded ones are not (module docs). Degenerate
    /// blocks surface the same [`MarsError`]s as the cold path.
    pub fn reformulate_xbind(&self, xbind: &XBindQuery) -> Result<BlockReformulation, MarsError> {
        self.reformulate_xbind_with(xbind, &self.default_budget)
    }

    /// [`MarsService::reformulate_xbind`] with an explicit per-request
    /// budget. This is the full degradation ladder: admission (shed on
    /// overload), panic isolation, budgeted anytime reformulation, and the
    /// never-cache-degraded rule.
    pub fn reformulate_xbind_with(
        &self,
        xbind: &XBindQuery,
        budget: &ReformulationBudget,
    ) -> Result<BlockReformulation, MarsError> {
        let _permit = self.admit()?;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &self.fault_hook {
                hook("lookup");
            }
            let shape = shape_of(xbind, &self.reserved);
            if let Some(hit) = self.cache.lookup(&shape, self.fingerprint) {
                return Ok(hit);
            }
            if let Some(hook) = &self.fault_hook {
                hook("reformulate");
            }
            let block = self.mars.try_reformulate_xbind_budgeted(xbind, budget)?;
            if block.is_degraded() {
                self.cache.note_degraded_uncached();
            } else {
                self.cache.insert(shape, self.fingerprint, block.clone());
            }
            Ok(block)
        }));
        match outcome {
            Ok(Ok(block)) => {
                if block.is_degraded() {
                    self.degraded.fetch_add(1, Ordering::SeqCst);
                } else {
                    self.served.fetch_add(1, Ordering::SeqCst);
                }
                Ok(block)
            }
            // Degenerate-input client errors bump no outcome counter: they
            // are the caller's bug, not service load.
            Ok(Err(e)) => Err(e),
            Err(_) => {
                self.panicked.fetch_add(1, Ordering::SeqCst);
                Err(MarsError::ReformulationPanicked { block: xbind.name.clone() })
            }
        }
    }

    /// [`MarsService::reformulate_xbind`] with backend routing: the cold
    /// path prices the chosen reformulation against the two stores and the
    /// route is cached *inside* the block, so a warm shape hit replays the
    /// cached decision byte-identically instead of re-pricing (the decision
    /// depends on the query shape and store statistics, not the constants).
    /// A warm hit cached by an unrouted entry point carries no route and is
    /// priced on the fly, without rewriting the cache entry.
    ///
    /// # Errors
    ///
    /// The same ladder as [`MarsService::reformulate_xbind_with`]:
    /// [`MarsError::Overloaded`] on admission, degenerate-input errors, and
    /// [`MarsError::ReformulationPanicked`] from panic isolation.
    pub fn reformulate_xbind_routed(
        &self,
        xbind: &XBindQuery,
        db: &RelationalDatabase,
        xml: &XmlStore,
    ) -> Result<BlockReformulation, MarsError> {
        let _permit = self.admit()?;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &self.fault_hook {
                hook("lookup");
            }
            let shape = shape_of(xbind, &self.reserved);
            if let Some(mut hit) = self.cache.lookup(&shape, self.fingerprint) {
                if hit.route.is_none() {
                    hit.route = hit
                        .result
                        .best_or_initial()
                        .map(|best| mars_cost::route_query(best, db, xml));
                }
                return Ok(hit);
            }
            if let Some(hook) = &self.fault_hook {
                hook("reformulate");
            }
            let block = self.mars.try_reformulate_xbind_routed(xbind, db, xml)?;
            if block.is_degraded() {
                self.cache.note_degraded_uncached();
            } else {
                self.cache.insert(shape, self.fingerprint, block.clone());
            }
            Ok(block)
        }));
        match outcome {
            Ok(Ok(block)) => {
                if block.is_degraded() {
                    self.degraded.fetch_add(1, Ordering::SeqCst);
                } else {
                    self.served.fetch_add(1, Ordering::SeqCst);
                }
                Ok(block)
            }
            Ok(Err(e)) => Err(e),
            Err(_) => {
                self.panicked.fetch_add(1, Ordering::SeqCst);
                Err(MarsError::ReformulationPanicked { block: xbind.name.clone() })
            }
        }
    }

    /// Take an in-flight slot or shed. The permit's `Drop` releases the slot
    /// even when the request unwinds.
    fn admit(&self) -> Result<InFlightPermit<'_>, MarsError> {
        let prev = self.in_flight.fetch_add(1, Ordering::SeqCst);
        let permit = InFlightPermit { counter: &self.in_flight };
        if self.max_in_flight > 0 && prev >= self.max_in_flight {
            drop(permit);
            self.shed.fetch_add(1, Ordering::SeqCst);
            return Err(MarsError::Overloaded { limit: self.max_in_flight });
        }
        Ok(permit)
    }

    /// Reformulate a full client XQuery (text) through the cache: parse,
    /// decorrelate, and run every navigation block through
    /// [`MarsService::reformulate_xbind`]. Atomless blocks (decorrelation
    /// produces one for constant-only return templates) bypass the cache and
    /// the degenerate-input checks — they are legitimate there, not client
    /// errors.
    pub fn reformulate_xquery(
        &self,
        xquery: &str,
        default_document: &str,
    ) -> Result<MarsResult, MarsError> {
        let ast = parse_xquery(xquery)?;
        let dec = decorrelate(&ast, default_document);
        let start = Instant::now();
        let mut blocks = Vec::with_capacity(dec.blocks.len());
        for b in &dec.blocks {
            if b.atoms.is_empty() {
                blocks.push(self.mars.reformulate_xbind(b));
            } else {
                blocks.push(self.reformulate_xbind(b)?);
            }
        }
        Ok(MarsResult { decorrelated: dec, blocks, total: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SchemaCorrespondence;
    use mars_grex::ViewDef;
    use mars_xml::parse_path;
    use mars_xquery::{XBindAtom, XBindTerm};

    fn correspondence() -> SchemaCorrespondence {
        let body =
            XBindQuery::new("PubMap").with_head(&["t", "a"]).with_atom(XBindAtom::Relational {
                relation: "bookRel".to_string(),
                args: vec![XBindTerm::var("t"), XBindTerm::var("a")],
            });
        let gav = ViewDef::xml_flat("PubMap", body, "bib.xml", "book", &["title", "author"]);
        let lav_body = XBindQuery::new("AuthorsMap")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            });
        let lav = ViewDef::relational("authorsCache", lav_body);
        SchemaCorrespondence {
            public_documents: vec!["bib.xml".to_string()],
            gav_views: vec![gav],
            lav_views: vec![lav],
            proprietary_relations: vec!["bookRel".to_string()],
            ..Default::default()
        }
    }

    fn title_filter(title: &str) -> XBindQuery {
        XBindQuery::new("Client")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./title/text()").unwrap(),
                source: "b".to_string(),
                var: "t".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            })
            .with_atom(XBindAtom::Eq(XBindTerm::var("t"), XBindTerm::str(title)))
    }

    /// The service is shared by reference across request threads.
    #[test]
    fn service_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<MarsService>();
    }

    /// The second arrival of a template (same shape, different constant) is a
    /// cache hit whose SQL carries the *new* constant.
    #[test]
    fn constants_only_repeat_is_a_hit_with_fresh_constants() {
        let service = MarsService::new(Mars::new(correspondence()));
        let cold = service.reformulate_xbind(&title_filter("First Title")).unwrap();
        assert!(cold.sql.as_ref().unwrap().contains("First Title"));
        let warm = service.reformulate_xbind(&title_filter("Second Title")).unwrap();
        assert!(warm.sql.as_ref().unwrap().contains("Second Title"));
        assert!(!warm.sql.as_ref().unwrap().contains("First Title"));
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    /// Degenerate inputs surface the structured errors of the cold path and
    /// are never cached.
    #[test]
    fn degenerate_blocks_error_and_are_not_cached() {
        let service = MarsService::new(Mars::new(correspondence()));
        let empty = XBindQuery::new("E").with_head(&["x"]);
        assert!(matches!(service.reformulate_xbind(&empty), Err(MarsError::EmptyBlock { .. })));
        assert_eq!(service.cache_stats().entries, 0);
    }

    /// Replacing the system invalidates entries scoped to the old
    /// fingerprint; the next arrival reformulates cold against the new one.
    #[test]
    fn replace_invalidates_stale_plans() {
        let mut service = MarsService::new(Mars::new(correspondence()));
        service.reformulate_xbind(&title_filter("T")).unwrap();
        assert_eq!(service.cache_stats().entries, 1);
        let old_fp = service.fingerprint();

        let mut changed = correspondence();
        changed.proprietary_relations.push("extraRel".to_string());
        service.replace(Mars::new(changed));
        assert_ne!(service.fingerprint(), old_fp);
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.invalidations, 1);
        // The template still reformulates — cold, under the new fingerprint.
        let again = service.reformulate_xbind(&title_filter("T")).unwrap();
        assert!(again.result.has_reformulation());
        assert_eq!(service.cache_stats().entries, 1);
    }

    /// A saturated admission limit sheds the excess arrival with a typed
    /// `Overloaded` error and counts it; the admitted request completes
    /// normally once released. The blocking hook makes the overlap
    /// deterministic.
    #[test]
    fn admission_limit_sheds_with_typed_overload() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::mpsc;
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let armed = AtomicBool::new(true);
        let hook: FaultHook = Arc::new(move |point: &str| {
            // Block only the first request at "lookup"; later arrivals
            // (the post-release capacity check) must pass through.
            if point == "lookup" && armed.swap(false, Ordering::SeqCst) {
                entered_tx.send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
            }
        });
        let service = MarsService::new(Mars::new(correspondence()))
            .with_admission_limit(1)
            .with_fault_hook(hook);
        std::thread::scope(|s| {
            let first = s.spawn(|| service.reformulate_xbind(&title_filter("A")));
            entered_rx.recv().unwrap(); // the first request holds its slot
            let shed = service.reformulate_xbind(&title_filter("B"));
            assert!(matches!(shed, Err(MarsError::Overloaded { limit: 1 })));
            release_tx.send(()).unwrap();
            assert!(first.join().unwrap().is_ok());
        });
        let stats = service.service_stats();
        assert_eq!((stats.served, stats.shed), (1, 1));
        // The shed request computed nothing and its slot was released.
        assert_eq!(service.cache_stats().entries, 1);
        let after = service.reformulate_xbind(&title_filter("C"));
        assert!(after.is_ok(), "capacity is available again after the permits dropped");
    }

    /// A panic mid-request is isolated: the caller gets a typed error,
    /// nothing is cached for the shape, and the next arrival gets a real
    /// (successful) attempt.
    #[test]
    fn panics_are_isolated_and_never_cached() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let poison = Arc::new(AtomicBool::new(true));
        let armed = poison.clone();
        let hook: FaultHook = Arc::new(move |point: &str| {
            if point == "reformulate" && armed.swap(false, Ordering::SeqCst) {
                panic!("injected chaos panic");
            }
        });
        let service = MarsService::new(Mars::new(correspondence())).with_fault_hook(hook);
        let poisoned = service.reformulate_xbind(&title_filter("T"));
        assert!(matches!(poisoned, Err(MarsError::ReformulationPanicked { .. })));
        assert_eq!(service.cache_stats().entries, 0);
        assert_eq!(service.service_stats().panicked, 1);
        // The retry gets a real attempt — and is cached this time.
        let retry = service.reformulate_xbind(&title_filter("T")).unwrap();
        assert!(retry.result.has_reformulation());
        assert_eq!(service.cache_stats().entries, 1);
        assert_eq!(service.service_stats().served, 1);
    }

    /// Cache hygiene: a degraded cold result is withheld from the cache (and
    /// counted), a later sane-budget arrival of the same shape recomputes
    /// and *is* cached, and the arrival after that is a warm hit.
    #[test]
    fn degraded_results_are_never_cached() {
        use std::time::Duration;
        let service = MarsService::new(Mars::new(correspondence()))
            .with_default_budget(ReformulationBudget::unbounded().with_deadline(Duration::ZERO));
        let degraded = service.reformulate_xbind(&title_filter("T")).unwrap();
        assert!(degraded.is_degraded(), "a zero deadline must degrade");
        let cache = service.cache_stats();
        assert_eq!((cache.entries, cache.degraded_uncached), (0, 1));
        assert_eq!(service.service_stats().degraded, 1);

        let sane = ReformulationBudget::unbounded();
        let recomputed = service.reformulate_xbind_with(&title_filter("T"), &sane).unwrap();
        assert!(!recomputed.is_degraded());
        assert!(recomputed.result.has_reformulation());
        assert_eq!(service.cache_stats().entries, 1);

        let warm = service.reformulate_xbind_with(&title_filter("T"), &sane).unwrap();
        assert!(!warm.is_degraded());
        assert_eq!(service.cache_stats().hits, 1);
        assert_eq!(service.service_stats().served, 2);
    }

    /// The full-XQuery service path parses, caches per block, and reports
    /// parse errors as `MarsError`.
    #[test]
    fn xquery_path_goes_through_the_cache() {
        let service = MarsService::new(Mars::new(correspondence()));
        let text = "for $b in //book $a in $b/author/text() return <writer>$a</writer>";
        let cold = service.reformulate_xquery(text, "bib.xml").unwrap();
        assert_eq!(cold.blocks.len(), 1);
        let warm = service.reformulate_xquery(text, "bib.xml").unwrap();
        assert!(warm.blocks[0].result.has_reformulation());
        assert!(service.cache_stats().hits >= 1);
        assert!(matches!(
            service.reformulate_xquery("for $b in", "bib.xml"),
            Err(MarsError::Parse(_))
        ));
    }
}
