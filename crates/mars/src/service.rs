//! Reformulation as a service: a [`Mars`] system behind a shape-keyed
//! [`PlanCache`].
//!
//! A deployed MARS instance is resident: the schema correspondence is
//! compiled once and then millions of client queries arrive against it, most
//! of them instances of a few templates that differ only in constants. The
//! service normalizes each arrival to its [`QueryShape`](mars_xquery::QueryShape)
//! (variables alpha-renamed, non-reserved constants parameterized out) and
//! answers repeats from the cache by re-substituting the fresh constants into
//! the cached reformulation — skipping the chase & backchase entirely. The
//! re-substituted warm answer is byte-identical to what a cold run would
//! produce (property-tested in `tests/property_based.rs`).
//!
//! Entries are scoped to the system's [fingerprint](Mars::fingerprint); use
//! [`MarsService::replace`] when the correspondence changes and the stale
//! entries are invalidated rather than served.
//!
//! The service is `Sync`: one instance can be shared across request threads
//! (`&MarsService` handles), which is how the `experiments --serve` harness
//! drives it.

use crate::cache::{CacheStats, PlanCache};
use crate::error::MarsError;
use crate::result::{BlockReformulation, MarsResult};
use crate::system::Mars;
use mars_xquery::{decorrelate, parse_xquery, shape_of, XBindQuery};
use std::collections::HashSet;
use std::time::Instant;

/// A resident [`Mars`] system with a plan cache (see the module docs).
pub struct MarsService {
    mars: Mars,
    cache: PlanCache,
    fingerprint: u64,
    reserved: HashSet<String>,
}

impl MarsService {
    /// Wrap a compiled system. The fingerprint and the reserved-constant set
    /// (the constants [`shape_of`] must keep literal) are computed once here.
    pub fn new(mars: Mars) -> MarsService {
        let fingerprint = mars.fingerprint();
        let reserved = mars.reserved_constants();
        MarsService { mars, cache: PlanCache::new(), fingerprint, reserved }
    }

    /// The wrapped system.
    pub fn mars(&self) -> &Mars {
        &self.mars
    }

    /// The fingerprint cache entries are currently scoped to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Swap in a rebuilt system (the schema correspondence or the options
    /// changed). The fingerprint and reserved constants are recomputed and
    /// every cache entry of the old fingerprint is invalidated.
    pub fn replace(&mut self, mars: Mars) {
        self.fingerprint = mars.fingerprint();
        self.reserved = mars.reserved_constants();
        self.mars = mars;
        self.cache.invalidate_except(self.fingerprint);
    }

    /// Reformulate one navigation block through the cache: a shape hit
    /// re-substitutes the cached plan with this query's constants, a miss
    /// runs [`Mars::try_reformulate_xbind`] cold and caches the result.
    /// Degenerate blocks surface the same [`MarsError`]s as the cold path.
    pub fn reformulate_xbind(&self, xbind: &XBindQuery) -> Result<BlockReformulation, MarsError> {
        let shape = shape_of(xbind, &self.reserved);
        if let Some(hit) = self.cache.lookup(&shape, self.fingerprint) {
            return Ok(hit);
        }
        let block = self.mars.try_reformulate_xbind(xbind)?;
        self.cache.insert(shape, self.fingerprint, block.clone());
        Ok(block)
    }

    /// Reformulate a full client XQuery (text) through the cache: parse,
    /// decorrelate, and run every navigation block through
    /// [`MarsService::reformulate_xbind`]. Atomless blocks (decorrelation
    /// produces one for constant-only return templates) bypass the cache and
    /// the degenerate-input checks — they are legitimate there, not client
    /// errors.
    pub fn reformulate_xquery(
        &self,
        xquery: &str,
        default_document: &str,
    ) -> Result<MarsResult, MarsError> {
        let ast = parse_xquery(xquery)?;
        let dec = decorrelate(&ast, default_document);
        let start = Instant::now();
        let mut blocks = Vec::with_capacity(dec.blocks.len());
        for b in &dec.blocks {
            if b.atoms.is_empty() {
                blocks.push(self.mars.reformulate_xbind(b));
            } else {
                blocks.push(self.reformulate_xbind(b)?);
            }
        }
        Ok(MarsResult { decorrelated: dec, blocks, total: start.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SchemaCorrespondence;
    use mars_grex::ViewDef;
    use mars_xml::parse_path;
    use mars_xquery::{XBindAtom, XBindTerm};

    fn correspondence() -> SchemaCorrespondence {
        let body =
            XBindQuery::new("PubMap").with_head(&["t", "a"]).with_atom(XBindAtom::Relational {
                relation: "bookRel".to_string(),
                args: vec![XBindTerm::var("t"), XBindTerm::var("a")],
            });
        let gav = ViewDef::xml_flat("PubMap", body, "bib.xml", "book", &["title", "author"]);
        let lav_body = XBindQuery::new("AuthorsMap")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            });
        let lav = ViewDef::relational("authorsCache", lav_body);
        SchemaCorrespondence {
            public_documents: vec!["bib.xml".to_string()],
            gav_views: vec![gav],
            lav_views: vec![lav],
            proprietary_relations: vec!["bookRel".to_string()],
            ..Default::default()
        }
    }

    fn title_filter(title: &str) -> XBindQuery {
        XBindQuery::new("Client")
            .with_head(&["a"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "bib.xml".to_string(),
                path: parse_path("//book").unwrap(),
                var: "b".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./title/text()").unwrap(),
                source: "b".to_string(),
                var: "t".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./author/text()").unwrap(),
                source: "b".to_string(),
                var: "a".to_string(),
            })
            .with_atom(XBindAtom::Eq(XBindTerm::var("t"), XBindTerm::str(title)))
    }

    /// The service is shared by reference across request threads.
    #[test]
    fn service_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<MarsService>();
    }

    /// The second arrival of a template (same shape, different constant) is a
    /// cache hit whose SQL carries the *new* constant.
    #[test]
    fn constants_only_repeat_is_a_hit_with_fresh_constants() {
        let service = MarsService::new(Mars::new(correspondence()));
        let cold = service.reformulate_xbind(&title_filter("First Title")).unwrap();
        assert!(cold.sql.as_ref().unwrap().contains("First Title"));
        let warm = service.reformulate_xbind(&title_filter("Second Title")).unwrap();
        assert!(warm.sql.as_ref().unwrap().contains("Second Title"));
        assert!(!warm.sql.as_ref().unwrap().contains("First Title"));
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    /// Degenerate inputs surface the structured errors of the cold path and
    /// are never cached.
    #[test]
    fn degenerate_blocks_error_and_are_not_cached() {
        let service = MarsService::new(Mars::new(correspondence()));
        let empty = XBindQuery::new("E").with_head(&["x"]);
        assert!(matches!(service.reformulate_xbind(&empty), Err(MarsError::EmptyBlock { .. })));
        assert_eq!(service.cache_stats().entries, 0);
    }

    /// Replacing the system invalidates entries scoped to the old
    /// fingerprint; the next arrival reformulates cold against the new one.
    #[test]
    fn replace_invalidates_stale_plans() {
        let mut service = MarsService::new(Mars::new(correspondence()));
        service.reformulate_xbind(&title_filter("T")).unwrap();
        assert_eq!(service.cache_stats().entries, 1);
        let old_fp = service.fingerprint();

        let mut changed = correspondence();
        changed.proprietary_relations.push("extraRel".to_string());
        service.replace(Mars::new(changed));
        assert_ne!(service.fingerprint(), old_fp);
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.invalidations, 1);
        // The template still reformulates — cold, under the new fingerprint.
        let again = service.reformulate_xbind(&title_filter("T")).unwrap();
        assert!(again.result.has_reformulation());
        assert_eq!(service.cache_stats().entries, 1);
    }

    /// The full-XQuery service path parses, caches per block, and reports
    /// parse errors as `MarsError`.
    #[test]
    fn xquery_path_goes_through_the_cache() {
        let service = MarsService::new(Mars::new(correspondence()));
        let text = "for $b in //book $a in $b/author/text() return <writer>$a</writer>";
        let cold = service.reformulate_xquery(text, "bib.xml").unwrap();
        assert_eq!(cold.blocks.len(), 1);
        let warm = service.reformulate_xquery(text, "bib.xml").unwrap();
        assert!(warm.blocks[0].result.has_reformulation());
        assert!(service.cache_stats().hits >= 1);
        assert!(matches!(
            service.reformulate_xquery("for $b in", "bib.xml"),
            Err(MarsError::Parse(_))
        ));
    }
}
