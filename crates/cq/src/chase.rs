//! The naive chase.
//!
//! This is a direct, per-homomorphism implementation of the chase of a query
//! with a set of DEDs, in the style of the original C&B prototype ("A Chase
//! Too Far?", SIGMOD 2000) that the MARS paper uses as its baseline. Each
//! chase step searches for a single premise homomorphism with backtracking,
//! checks extension to the conclusion, and applies the step; the search
//! restarts from scratch after every applied step. The scalable set-oriented
//! implementation of Section 3.1 lives in the `mars-chase` crate.
//!
//! Disjunctive dependencies produce a *chase tree*: each applied disjunctive
//! step splits the current query into one branch per disjunct. Equality
//! conclusions (EGD components) unify terms; unifying two distinct constants
//! fails the branch. Denial constraints fail the branch outright.

use crate::atom::Atom;
use crate::ded::{Conjunct, Ded};
use crate::homomorphism::{extend_to_conclusion, find_all_homomorphisms, AtomIndex};
use crate::query::ConjunctiveQuery;
use crate::substitution::Substitution;
use crate::term::{Term, VarGen};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Resource limits for the chase. The chase with arbitrary embedded
/// dependencies need not terminate; MARS relies on the restrictions of
/// [Deutsch & Tannen, ICDT 2003] for termination, and this budget is a safety
/// net for experiments that intentionally exceed them (e.g. the stress test).
#[derive(Clone, Debug)]
pub struct ChaseBudget {
    /// Maximum number of applied chase steps across the whole tree.
    pub max_steps: usize,
    /// Maximum number of atoms in any branch.
    pub max_atoms: usize,
    /// Maximum number of live branches of the chase tree.
    pub max_branches: usize,
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget { max_steps: 100_000, max_atoms: 20_000, max_branches: 64, timeout: None }
    }
}

impl ChaseBudget {
    /// A small budget for unit tests.
    pub fn small() -> ChaseBudget {
        ChaseBudget { max_steps: 2_000, max_atoms: 2_000, max_branches: 16, timeout: None }
    }

    /// Budget with a wall-clock timeout (used to cap the "old implementation"
    /// baseline in the stress-test experiment instead of running for hours).
    pub fn with_timeout(mut self, d: Duration) -> ChaseBudget {
        self.timeout = Some(d);
        self
    }
}

/// Why the chase stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// No more chase step applies anywhere: the result is the universal plan.
    Terminated,
    /// The step budget was exhausted.
    BudgetExceeded,
    /// The wall-clock timeout was exceeded.
    TimedOut,
}

/// The result of chasing a query: a set of leaves (one per surviving branch
/// of the chase tree) plus bookkeeping.
#[derive(Clone, Debug)]
pub struct ChaseTree {
    /// Surviving branches. For non-disjunctive dependency sets this has
    /// exactly one element (or zero if the query is inconsistent with the
    /// constraints).
    pub leaves: Vec<ConjunctiveQuery>,
    /// Number of branches that failed (denial constraint fired or constants
    /// were forced equal).
    pub failed_branches: usize,
    /// Number of applied chase steps.
    pub steps: usize,
    /// Why the chase stopped.
    pub outcome: ChaseOutcome,
}

impl ChaseTree {
    /// The single leaf, for the common non-disjunctive case.
    pub fn single(&self) -> Option<&ConjunctiveQuery> {
        if self.leaves.len() == 1 {
            self.leaves.first()
        } else {
            None
        }
    }

    /// Did the chase terminate normally?
    pub fn terminated(&self) -> bool {
        self.outcome == ChaseOutcome::Terminated
    }
}

/// One branch of the chase tree during execution.
#[derive(Clone)]
struct Branch {
    query: ConjunctiveQuery,
    /// Dedup set of atoms already in the body.
    atom_set: HashSet<Atom>,
}

impl Branch {
    fn new(query: ConjunctiveQuery) -> Branch {
        let atom_set = query.body.iter().cloned().collect();
        Branch { query, atom_set }
    }

    fn push_atom(&mut self, atom: Atom) {
        if self.atom_set.insert(atom.clone()) {
            self.query.body.push(atom);
        }
    }

    /// Apply a term-level unification across the branch. Returns `false` if
    /// two distinct constants were forced equal (branch fails).
    fn unify(&mut self, a: Term, b: Term) -> bool {
        if a == b {
            return true;
        }
        let (from, to) = match (a, b) {
            (Term::Var(v), t) => (v, t),
            (t, Term::Var(v)) => (v, t),
            (Term::Const(_), Term::Const(_)) => return false,
        };
        let mut s = Substitution::new();
        s.set(from, to);
        self.query = self.query.apply(&s);
        self.atom_set = self.query.body.iter().cloned().collect();
        // Deduplicate body atoms that became identical after unification.
        let mut seen = HashSet::new();
        self.query.body.retain(|atom| seen.insert(atom.clone()));
        self.atom_set = seen;
        true
    }
}

/// Apply one conjunct of a DED conclusion under homomorphism `h` to a branch.
/// Returns `false` if the branch fails.
fn apply_conjunct(branch: &mut Branch, conjunct: &Conjunct, h: &Substitution) -> bool {
    // Freshen existential variables.
    let mut gen = VarGen::avoiding(
        branch.query.body.iter().flat_map(|a| a.args.iter()).chain(branch.query.head.iter()),
    );
    let mut freshened = h.clone();
    for ex in &conjunct.exists {
        let fresh = gen.fresh(*ex);
        freshened.set(*ex, Term::Var(fresh));
    }
    // Any conclusion variable that is neither premise-bound nor declared
    // existential is still implicitly existential; freshen it too.
    for v in conjunct.variables() {
        if !freshened.binds(v) {
            let fresh = gen.fresh(v);
            freshened.set(v, Term::Var(fresh));
        }
    }
    for atom in &conjunct.atoms {
        branch.push_atom(freshened.apply_atom(atom));
    }
    for (x, y) in &conjunct.equalities {
        let ix = freshened.apply_term(*x);
        let iy = freshened.apply_term(*y);
        if !branch.unify(ix, iy) {
            return false;
        }
    }
    true
}

/// Chase `query` with the dependencies `deds` under the given budget.
///
/// The returned leaves are the branches of the chase tree at the point the
/// chase stopped; when [`ChaseOutcome::Terminated`] they are exactly the
/// universal plans of the input (one per disjunctive branch).
pub fn naive_chase(query: &ConjunctiveQuery, deds: &[Ded], budget: &ChaseBudget) -> ChaseTree {
    let start = Instant::now();
    let mut branches = vec![Branch::new(query.clone())];
    let mut failed = 0usize;
    let mut steps = 0usize;

    loop {
        if let Some(t) = budget.timeout {
            if start.elapsed() > t {
                return ChaseTree {
                    leaves: branches.into_iter().map(|b| b.query).collect(),
                    failed_branches: failed,
                    steps,
                    outcome: ChaseOutcome::TimedOut,
                };
            }
        }
        if steps >= budget.max_steps {
            return ChaseTree {
                leaves: branches.into_iter().map(|b| b.query).collect(),
                failed_branches: failed,
                steps,
                outcome: ChaseOutcome::BudgetExceeded,
            };
        }

        // Find one applicable chase step anywhere (branch, ded, homomorphism).
        let mut applied = false;
        let mut next_branches: Vec<Branch> = Vec::new();
        let mut branch_failed_now = 0usize;

        'branches: for (bi, branch) in branches.iter().enumerate() {
            if branch.query.body.len() >= budget.max_atoms {
                continue;
            }
            let index = AtomIndex::new(&branch.query.body);
            for ded in deds {
                let homs = find_all_homomorphisms(&ded.premise, &index, &Substitution::new(), None);
                for h in homs {
                    // Respect premise inequalities.
                    if ded
                        .premise_inequalities
                        .iter()
                        .any(|(a, b)| h.apply_term(*a) == h.apply_term(*b))
                    {
                        continue;
                    }
                    // Step applies iff no disjunct already extends.
                    let satisfied =
                        ded.conclusions.iter().any(|c| extend_to_conclusion(c, &h, &index));
                    if satisfied {
                        continue;
                    }
                    // Apply the step: branch per disjunct.
                    applied = true;
                    steps += 1;
                    if ded.conclusions.is_empty() {
                        // Denial constraint: the branch fails.
                        branch_failed_now += 1;
                    } else {
                        for conjunct in &ded.conclusions {
                            let mut child = branch.clone();
                            if apply_conjunct(&mut child, conjunct, &h) {
                                next_branches.push(child);
                            } else {
                                branch_failed_now += 1;
                            }
                        }
                    }
                    // Keep all other branches untouched.
                    for (bj, other) in branches.iter().enumerate() {
                        if bj != bi {
                            next_branches.push(other.clone());
                        }
                    }
                    break 'branches;
                }
            }
        }

        if !applied {
            return ChaseTree {
                leaves: branches.into_iter().map(|b| b.query).collect(),
                failed_branches: failed,
                steps,
                outcome: ChaseOutcome::Terminated,
            };
        }
        failed += branch_failed_now;
        branches = next_branches;
        if branches.len() > budget.max_branches {
            branches.truncate(budget.max_branches);
        }
        if branches.is_empty() {
            return ChaseTree {
                leaves: Vec::new(),
                failed_branches: failed,
                steps,
                outcome: ChaseOutcome::Terminated,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::builders::*;
    use crate::atom::Atom;
    use crate::ded::{view_dependencies, Conjunct, Ded};
    use crate::term::{Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }
    fn v(n: &str) -> Variable {
        Variable::named(n)
    }

    /// Section 2.3 worked example: Q(x) :- A(x,y) chased with (ind) and (cV)
    /// yields the universal plan Q2(x) :- A(x,y), B(y,z), V(x,z).
    #[test]
    fn section_2_3_universal_plan() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let tree = naive_chase(&q, &[ind, c_v, b_v], &ChaseBudget::small());
        assert!(tree.terminated());
        let up = tree.single().expect("one branch");
        assert_eq!(up.body.len(), 3);
        let preds: Vec<&str> = up.body.iter().map(|a| a.predicate.name()).collect();
        assert!(preds.contains(&"A"));
        assert!(preds.contains(&"B"));
        assert!(preds.contains(&"V"));
        // Exactly two steps were needed: (ind) then (cV).
        assert_eq!(tree.steps, 2);
    }

    /// Example 3.1: one applicable step, and re-chasing does not reapply it.
    #[test]
    fn example_3_1_single_step() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("a"), t("g")]).with_body(vec![
            Atom::named("R", vec![t("a"), t("b")]),
            Atom::named("R", vec![t("b"), t("c")]),
            Atom::named("R", vec![t("c"), t("d")]),
            Atom::named("S", vec![t("d"), t("e")]),
            Atom::named("S", vec![t("e"), t("f")]),
            Atom::named("S", vec![t("f"), t("g")]),
        ]);
        let c = Ded::tgd(
            "c",
            vec![
                Atom::named("R", vec![t("x"), t("y")]),
                Atom::named("R", vec![t("y"), t("z")]),
                Atom::named("S", vec![t("z"), t("u")]),
                Atom::named("S", vec![t("u"), t("v")]),
            ],
            vec![],
            vec![Atom::named("T", vec![t("x"), t("v")])],
        );
        let tree = naive_chase(&q, &[c], &ChaseBudget::small());
        assert!(tree.terminated());
        assert_eq!(tree.steps, 1);
        let up = tree.single().unwrap();
        assert!(up.body.contains(&Atom::named("T", vec![t("b"), t("f")])));
        assert_eq!(up.body.len(), 7);
    }

    #[test]
    fn transitive_closure_chase_on_chain() {
        // chain of 4 child atoms + (base),(trans),(refl over els) produces the
        // full reflexive-transitive closure in desc.
        let q = ConjunctiveQuery::new("chain").with_head(vec![t("x1")]).with_body(vec![
            child(t("x1"), t("x2")),
            child(t("x2"), t("x3")),
            child(t("x3"), t("x4")),
        ]);
        let base =
            Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]);
        let trans = Ded::tgd(
            "trans",
            vec![desc(t("x"), t("y")), desc(t("y"), t("z"))],
            vec![],
            vec![desc(t("x"), t("z"))],
        );
        let tree = naive_chase(&q, &[base, trans], &ChaseBudget::small());
        assert!(tree.terminated());
        let up = tree.single().unwrap();
        let desc_count = up.body.iter().filter(|a| a.predicate.name() == "desc").count();
        // pairs (i,j) with i<j over 4 nodes: 6
        assert_eq!(desc_count, 6);
    }

    #[test]
    fn egd_unifies_variables() {
        // key: R(k,a) ∧ R(k,b) → a=b ; query has R(k,x), R(k,y), S(x), T(y)
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("k")]).with_body(vec![
            Atom::named("R", vec![t("k"), t("x")]),
            Atom::named("R", vec![t("k"), t("y")]),
            Atom::named("S", vec![t("x")]),
            Atom::named("T", vec![t("y")]),
        ]);
        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("u"), t("p")]), Atom::named("R", vec![t("u"), t("q")])],
            t("p"),
            t("q"),
        );
        let tree = naive_chase(&q, &[key], &ChaseBudget::small());
        assert!(tree.terminated());
        let up = tree.single().unwrap();
        // x and y are unified, so R(k,·) collapses to one atom and S,T share the variable.
        let r_count = up.body.iter().filter(|a| a.predicate.name() == "R").count();
        assert_eq!(r_count, 1);
        let s_arg = up.body.iter().find(|a| a.predicate.name() == "S").unwrap().args[0];
        let t_arg = up.body.iter().find(|a| a.predicate.name() == "T").unwrap().args[0];
        assert_eq!(s_arg, t_arg);
    }

    #[test]
    fn egd_on_distinct_constants_fails_branch() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![]).with_body(vec![
            Atom::named("R", vec![t("k"), Term::constant_str("a")]),
            Atom::named("R", vec![t("k"), Term::constant_str("b")]),
        ]);
        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("u"), t("p")]), Atom::named("R", vec![t("u"), t("q")])],
            t("p"),
            t("q"),
        );
        let tree = naive_chase(&q, &[key], &ChaseBudget::small());
        assert!(tree.terminated());
        assert!(tree.leaves.is_empty());
        assert!(tree.failed_branches > 0);
    }

    #[test]
    fn denial_constraint_fails_branch() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![]).with_body(vec![child(t("x"), t("x"))]);
        let d = Ded::denial("no_self", vec![child(t("u"), t("u"))]);
        let tree = naive_chase(&q, &[d], &ChaseBudget::small());
        assert!(tree.terminated());
        assert!(tree.leaves.is_empty());
        assert_eq!(tree.failed_branches, 1);
    }

    #[test]
    fn disjunctive_dependency_branches() {
        // R(x) → S(x) ∨ T(x): chasing Q():-R(a) gives two leaves.
        let d = Ded::disjunctive(
            "st",
            vec![Atom::named("R", vec![t("x")])],
            vec![
                Conjunct::atoms(vec![Atom::named("S", vec![t("x")])]),
                Conjunct::atoms(vec![Atom::named("T", vec![t("x")])]),
            ],
        );
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a")])
            .with_body(vec![Atom::named("R", vec![t("a")])]);
        let tree = naive_chase(&q, &[d], &ChaseBudget::small());
        assert!(tree.terminated());
        assert_eq!(tree.leaves.len(), 2);
        let has_s = tree.leaves.iter().any(|l| l.body.iter().any(|a| a.predicate.name() == "S"));
        let has_t = tree.leaves.iter().any(|l| l.body.iter().any(|a| a.predicate.name() == "T"));
        assert!(has_s && has_t);
    }

    #[test]
    fn budget_limits_steps() {
        // A dependency that never converges within a tiny budget:
        // R(x,y) → ∃z R(y,z)  (infinite chase)
        let d = Ded::tgd(
            "inf",
            vec![Atom::named("R", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("R", vec![t("y"), t("z")])],
        );
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a")])
            .with_body(vec![Atom::named("R", vec![t("a"), t("b")])]);
        let budget = ChaseBudget { max_steps: 5, max_atoms: 100, max_branches: 4, timeout: None };
        let tree = naive_chase(&q, &[d], &budget);
        assert_eq!(tree.outcome, ChaseOutcome::BudgetExceeded);
        assert_eq!(tree.steps, 5);
    }

    #[test]
    fn timeout_is_respected() {
        let d = Ded::tgd(
            "inf",
            vec![Atom::named("R", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("R", vec![t("y"), t("z")])],
        );
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a")])
            .with_body(vec![Atom::named("R", vec![t("a"), t("b")])]);
        let budget = ChaseBudget::default().with_timeout(Duration::from_millis(0));
        let tree = naive_chase(&q, &[d], &budget);
        assert_eq!(tree.outcome, ChaseOutcome::TimedOut);
    }

    #[test]
    fn premise_inequalities_block_steps() {
        // R(x,y) ∧ x≠y → S(x): with body R(a,a) only, no step applies.
        let d = Ded::tgd(
            "neq",
            vec![Atom::named("R", vec![t("x"), t("y")])],
            vec![],
            vec![Atom::named("S", vec![t("x")])],
        )
        .with_premise_inequalities(vec![(t("x"), t("y"))]);
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![])
            .with_body(vec![Atom::named("R", vec![t("a"), t("a")])]);
        let tree = naive_chase(&q, std::slice::from_ref(&d), &ChaseBudget::small());
        assert!(tree.terminated());
        assert_eq!(tree.steps, 0);

        // With R(a,b) the step applies.
        let q2 = ConjunctiveQuery::new("Q2")
            .with_head(vec![])
            .with_body(vec![Atom::named("R", vec![t("a"), t("b")])]);
        let tree2 = naive_chase(&q2, &[d], &ChaseBudget::small());
        assert_eq!(tree2.steps, 1);
    }

    #[test]
    fn chase_is_idempotent_on_satisfied_queries() {
        let base =
            Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]);
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a")])
            .with_body(vec![child(t("a"), t("b")), desc(t("a"), t("b"))]);
        let tree = naive_chase(&q, &[base], &ChaseBudget::small());
        assert!(tree.terminated());
        assert_eq!(tree.steps, 0);
        assert_eq!(tree.single().unwrap().body.len(), 2);
    }
}
