//! Conjunctive queries (with inequalities) and unions thereof.
//!
//! MARS compiles the navigation part of client XQueries (XBind queries) into
//! conjunctive queries over the GReX schema; views and subqueries of the
//! universal plan are conjunctive queries as well. Inequalities arise from
//! XQuery `where` clauses, disjunction from XIC compilation (handled as
//! [`UnionQuery`]).

use crate::atom::{Atom, Predicate};
use crate::substitution::Substitution;
use crate::term::{Term, Variable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A conjunctive query with optional inequality side conditions:
///
/// `Q(head) :- body, t1 ≠ t1', ...`
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// Query name (used for display, view naming and reformulation labels).
    pub name: String,
    /// Head (answer) terms. Constants are allowed.
    pub head: Vec<Term>,
    /// Body atoms (a conjunction).
    pub body: Vec<Atom>,
    /// Inequality side conditions.
    pub inequalities: Vec<(Term, Term)>,
}

impl ConjunctiveQuery {
    /// An empty query with the given name.
    pub fn new(name: &str) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: name.to_string(),
            head: Vec::new(),
            body: Vec::new(),
            inequalities: Vec::new(),
        }
    }

    /// Builder: set the head.
    pub fn with_head(mut self, head: Vec<Term>) -> Self {
        self.head = head;
        self
    }

    /// Builder: set the body.
    pub fn with_body(mut self, body: Vec<Atom>) -> Self {
        self.body = body;
        self
    }

    /// Builder: add one atom.
    pub fn with_atom(mut self, atom: Atom) -> Self {
        self.body.push(atom);
        self
    }

    /// Builder: add an inequality.
    pub fn with_inequality(mut self, a: Term, b: Term) -> Self {
        self.inequalities.push((a, b));
        self
    }

    /// All variables of the query (head and body), deduplicated, in first-occurrence order.
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut push = |t: &Term| {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        };
        for t in &self.head {
            push(t);
        }
        for a in &self.body {
            for t in &a.args {
                push(t);
            }
        }
        for (a, b) in &self.inequalities {
            push(a);
            push(b);
        }
        out
    }

    /// The set of head variables.
    pub fn head_variables(&self) -> BTreeSet<Variable> {
        self.head.iter().filter_map(|t| t.as_var()).collect()
    }

    /// The set of predicates used in the body.
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        self.body.iter().map(|a| a.predicate).collect()
    }

    /// Apply a substitution to head, body and inequalities.
    pub fn apply(&self, s: &Substitution) -> ConjunctiveQuery {
        ConjunctiveQuery {
            name: self.name.clone(),
            head: s.apply_terms(&self.head),
            body: s.apply_atoms(&self.body),
            inequalities: self
                .inequalities
                .iter()
                .map(|(a, b)| (s.apply_term(*a), s.apply_term(*b)))
                .collect(),
        }
    }

    /// A *safe* query binds every head variable in the body.
    pub fn is_safe(&self) -> bool {
        let body_vars: HashSet<Variable> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head_variables().iter().all(|v| body_vars.contains(v))
    }

    /// Whether any inequality is trivially violated (same term on both sides)
    /// or trivially satisfied constants; used to detect unsatisfiable queries.
    pub fn has_contradictory_inequality(&self) -> bool {
        self.inequalities.iter().any(|(a, b)| a == b)
    }

    /// The sub-query induced by the body atoms at the given indices (same head).
    ///
    /// This is exactly the notion of *subquery of the universal plan* from the
    /// backchase phase (Section 2.3 of the paper).
    pub fn subquery(&self, atom_indices: &[usize]) -> ConjunctiveQuery {
        let body: Vec<Atom> = atom_indices.iter().map(|&i| self.body[i].clone()).collect();
        let vars: HashSet<Variable> = body.iter().flat_map(|a| a.variables()).collect();
        let inequalities = self
            .inequalities
            .iter()
            .filter(|(a, b)| {
                let ok = |t: &Term| match t {
                    Term::Var(v) => vars.contains(v),
                    Term::Const(_) => true,
                };
                ok(a) && ok(b)
            })
            .cloned()
            .collect();
        ConjunctiveQuery {
            name: format!("{}[{}]", self.name, atom_indices.len()),
            head: self.head.clone(),
            body,
            inequalities,
        }
    }

    /// Rename all variables with a fresh disambiguator offset so the result
    /// shares no variables with the original (used before chasing a query
    /// with a copy of itself, e.g. in containment checks).
    pub fn rename_apart(&self, offset: u32) -> ConjunctiveQuery {
        let mut s = Substitution::new();
        for v in self.variables() {
            s.set(v, Term::Var(Variable { name: v.name, index: v.index + offset }));
        }
        self.apply(&s)
    }

    /// Canonical (frozen) database of the query: each body atom becomes a fact
    /// whose "constants" are the query's variables. Returned as atoms — the
    /// chase implementations build their own instance representation on top.
    pub fn canonical_instance(&self) -> Vec<Atom> {
        self.body.clone()
    }

    /// Number of joins (atoms − 1, floored at zero) — used in reporting to
    /// match the paper's "queries with hundreds of joins" phrasing.
    pub fn join_count(&self) -> usize {
        self.body.len().saturating_sub(1)
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        for (a, b) in &self.inequalities {
            write!(f, ", {a} != {b}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A union of conjunctive queries (all with compatible heads).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnionQuery {
    pub name: String,
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// A union with a single disjunct.
    pub fn single(q: ConjunctiveQuery) -> UnionQuery {
        UnionQuery { name: q.name.clone(), disjuncts: vec![q] }
    }

    /// Build a union.
    pub fn new(name: &str, disjuncts: Vec<ConjunctiveQuery>) -> UnionQuery {
        UnionQuery { name: name.to_string(), disjuncts }
    }

    /// Head arity (taken from the first disjunct; unions are assumed
    /// head-compatible).
    pub fn arity(&self) -> usize {
        self.disjuncts.first().map(|q| q.head.len()).unwrap_or(0)
    }

    /// All disjuncts share the same head arity.
    pub fn is_head_compatible(&self) -> bool {
        let mut arities = self.disjuncts.iter().map(|q| q.head.len());
        match arities.next() {
            None => true,
            Some(first) => arities.all(|a| a == first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::builders::*;

    fn sample() -> ConjunctiveQuery {
        // Bo(a) :- root(r), desc(r,d), child(d,c), tag(c,"author"), text(c,a)
        ConjunctiveQuery::new("Bo").with_head(vec![Term::var("a")]).with_body(vec![
            root(Term::var("r")),
            desc(Term::var("r"), Term::var("d")),
            child(Term::var("d"), Term::var("c")),
            tag(Term::var("c"), "author"),
            text(Term::var("c"), Term::var("a")),
        ])
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let q = sample();
        let names: Vec<String> = q.variables().iter().map(|v| v.display_name()).collect();
        assert_eq!(names, vec!["a", "r", "d", "c"]);
    }

    #[test]
    fn safety() {
        assert!(sample().is_safe());
        let unsafe_q = ConjunctiveQuery::new("U")
            .with_head(vec![Term::var("z")])
            .with_body(vec![root(Term::var("r"))]);
        assert!(!unsafe_q.is_safe());
    }

    #[test]
    fn predicates_and_joins() {
        let q = sample();
        assert_eq!(q.join_count(), 4);
        let preds: Vec<&str> = q.predicates().iter().map(|p| p.name()).collect();
        assert!(preds.contains(&"child"));
        assert!(preds.contains(&"root"));
    }

    #[test]
    fn subquery_projects_inequalities() {
        let q = sample().with_inequality(Term::var("a"), Term::constant_str("x"));
        // Keep only atoms mentioning c and a: child, tag, text -> indices 2,3,4
        let s = q.subquery(&[2, 3, 4]);
        assert_eq!(s.body.len(), 3);
        assert_eq!(s.inequalities.len(), 1);
        // Dropping `text` removes variable a from the body, so the inequality
        // on `a` is dropped as well.
        let s2 = q.subquery(&[2, 3]);
        assert!(s2.inequalities.is_empty());
    }

    #[test]
    fn rename_apart_shares_no_variables() {
        let q = sample();
        let r = q.rename_apart(100);
        let qv: HashSet<Variable> = q.variables().into_iter().collect();
        let rv: HashSet<Variable> = r.variables().into_iter().collect();
        assert!(qv.is_disjoint(&rv));
        assert_eq!(q.body.len(), r.body.len());
    }

    #[test]
    fn apply_substitution_to_query() {
        let q = sample();
        let s = Substitution::from_pairs(vec![(Variable::named("a"), Term::constant_str("Knuth"))])
            .unwrap();
        let q2 = q.apply(&s);
        assert_eq!(q2.head[0], Term::constant_str("Knuth"));
        assert!(q2.body[4].args.contains(&Term::constant_str("Knuth")));
    }

    #[test]
    fn contradictory_inequalities() {
        let q = sample().with_inequality(Term::var("a"), Term::var("a"));
        assert!(q.has_contradictory_inequality());
        assert!(!sample().has_contradictory_inequality());
    }

    #[test]
    fn union_queries() {
        let u = UnionQuery::new("U", vec![sample(), sample()]);
        assert_eq!(u.arity(), 1);
        assert!(u.is_head_compatible());
        let mut bad = sample();
        bad.head.push(Term::var("r"));
        let u2 = UnionQuery::new("U2", vec![sample(), bad]);
        assert!(!u2.is_head_compatible());
        let s = UnionQuery::single(sample());
        assert_eq!(s.disjuncts.len(), 1);
    }

    #[test]
    fn display_format() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::var("x")])
            .with_body(vec![Atom::named("A", vec![Term::var("x"), Term::var("y")])])
            .with_inequality(Term::var("x"), Term::var("y"));
        assert_eq!(format!("{q}"), "Q(x) :- A(x, y), x != y");
    }
}
