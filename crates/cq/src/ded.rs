//! Disjunctive embedded dependencies (DEDs).
//!
//! DEDs (introduced for MARS in Deutsch & Tannen, DBPL 2001) extend classical
//! embedded dependencies with disjunction and non-equalities. They uniformly
//! express:
//!
//! * relational integrity constraints (keys, foreign keys, inclusion deps),
//! * the built-in TIX constraints about the GReX encoding of XML,
//! * compiled XML integrity constraints (XICs),
//! * compiled LAV/GAV XQuery views (the `cV`/`bV` pairs of Section 2.3 and the
//!   Skolem-function constraints of Section 2.4).
//!
//! The general form is
//!
//! ```text
//! ∀x̄  premise(x̄)  →  ⋁_i  ∃ȳ_i  conclusion_i(x̄, ȳ_i)
//! ```
//!
//! where each `conclusion_i` is a conjunction of relational atoms and
//! equalities. An empty disjunction (no conclusions) denotes a denial
//! constraint (premise must never hold).

use crate::atom::{Atom, Predicate};
use crate::substitution::Substitution;
use crate::term::{Term, Variable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// One disjunct of a DED conclusion: `∃ ȳ. atoms ∧ equalities`.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conjunct {
    /// Existentially quantified variables (those not bound by the premise).
    pub exists: Vec<Variable>,
    /// Conclusion atoms.
    pub atoms: Vec<Atom>,
    /// Conclusion equalities (`t = t'`); these make the DED an EGD component.
    pub equalities: Vec<(Term, Term)>,
}

impl Conjunct {
    /// A conjunct with atoms only.
    pub fn atoms(atoms: Vec<Atom>) -> Conjunct {
        Conjunct { exists: Vec::new(), atoms, equalities: Vec::new() }
    }

    /// A conjunct that only asserts equalities (EGD style).
    pub fn equalities(equalities: Vec<(Term, Term)>) -> Conjunct {
        Conjunct { exists: Vec::new(), atoms: Vec::new(), equalities }
    }

    /// Builder: add existential variables.
    pub fn with_exists(mut self, exists: Vec<Variable>) -> Conjunct {
        self.exists = exists;
        self
    }

    /// Builder: add equalities.
    pub fn with_equalities(mut self, eqs: Vec<(Term, Term)>) -> Conjunct {
        self.equalities = eqs;
        self
    }

    /// All variables mentioned in this conjunct.
    pub fn variables(&self) -> BTreeSet<Variable> {
        let mut out: BTreeSet<Variable> = self.atoms.iter().flat_map(|a| a.variables()).collect();
        for (a, b) in &self.equalities {
            if let Some(v) = a.as_var() {
                out.insert(v);
            }
            if let Some(v) = b.as_var() {
                out.insert(v);
            }
        }
        out
    }

    /// Apply a substitution to the non-existential part of the conjunct
    /// (existential variables must have been freshened first).
    pub fn apply(&self, s: &Substitution) -> Conjunct {
        Conjunct {
            exists: self.exists.clone(),
            atoms: s.apply_atoms(&self.atoms),
            equalities: self
                .equalities
                .iter()
                .map(|(a, b)| (s.apply_term(*a), s.apply_term(*b)))
                .collect(),
        }
    }
}

impl fmt::Debug for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.exists.is_empty() {
            write!(f, "∃")?;
            for (i, v) in self.exists.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ". ")?;
        }
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for (a, b) in &self.equalities {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a} = {b}")?;
            first = false;
        }
        if first {
            write!(f, "⊤")?;
        }
        Ok(())
    }
}

/// A disjunctive embedded dependency.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ded {
    /// Name used for display and provenance tracking (e.g. `TIX.trans`, `cV`).
    pub name: String,
    /// Premise atoms (the ∀-quantified left-hand side).
    pub premise: Vec<Atom>,
    /// Premise inequality side conditions.
    pub premise_inequalities: Vec<(Term, Term)>,
    /// Disjunction of conclusions. Empty = denial constraint.
    pub conclusions: Vec<Conjunct>,
}

impl Ded {
    /// A simple tuple-generating dependency `premise → ∃ exists. atoms`.
    pub fn tgd(name: &str, premise: Vec<Atom>, exists: Vec<Variable>, atoms: Vec<Atom>) -> Ded {
        Ded {
            name: name.to_string(),
            premise,
            premise_inequalities: Vec::new(),
            conclusions: vec![Conjunct { exists, atoms, equalities: Vec::new() }],
        }
    }

    /// An equality-generating dependency `premise → t = t'`.
    pub fn egd(name: &str, premise: Vec<Atom>, a: Term, b: Term) -> Ded {
        Ded {
            name: name.to_string(),
            premise,
            premise_inequalities: Vec::new(),
            conclusions: vec![Conjunct::equalities(vec![(a, b)])],
        }
    }

    /// A general DED with several disjuncts.
    pub fn disjunctive(name: &str, premise: Vec<Atom>, conclusions: Vec<Conjunct>) -> Ded {
        Ded { name: name.to_string(), premise, premise_inequalities: Vec::new(), conclusions }
    }

    /// A denial constraint (`premise → false`).
    pub fn denial(name: &str, premise: Vec<Atom>) -> Ded {
        Ded {
            name: name.to_string(),
            premise,
            premise_inequalities: Vec::new(),
            conclusions: Vec::new(),
        }
    }

    /// Builder: add premise inequalities.
    pub fn with_premise_inequalities(mut self, ineqs: Vec<(Term, Term)>) -> Ded {
        self.premise_inequalities = ineqs;
        self
    }

    /// The universally quantified variables (those of the premise).
    pub fn universal_variables(&self) -> BTreeSet<Variable> {
        let mut out: BTreeSet<Variable> = self.premise.iter().flat_map(|a| a.variables()).collect();
        for (a, b) in &self.premise_inequalities {
            if let Some(v) = a.as_var() {
                out.insert(v);
            }
            if let Some(v) = b.as_var() {
                out.insert(v);
            }
        }
        out
    }

    /// Existential variables of each conclusion that are *not* premise-bound.
    /// (Conclusions may also redundantly list premise variables; these are
    /// filtered out.)
    pub fn existential_variables(&self, conjunct: &Conjunct) -> Vec<Variable> {
        let universal = self.universal_variables();
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for v in conjunct.variables() {
            if !universal.contains(&v) && seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Is this a pure EGD (all conclusions are equalities only)?
    pub fn is_egd(&self) -> bool {
        !self.conclusions.is_empty()
            && self.conclusions.iter().all(|c| c.atoms.is_empty() && !c.equalities.is_empty())
    }

    /// Is this a pure (non-disjunctive) TGD?
    pub fn is_tgd(&self) -> bool {
        self.conclusions.len() == 1
            && self.conclusions[0].equalities.is_empty()
            && !self.conclusions[0].atoms.is_empty()
    }

    /// Is the dependency disjunctive (more than one conclusion)?
    pub fn is_disjunctive(&self) -> bool {
        self.conclusions.len() > 1
    }

    /// Is this a denial constraint?
    pub fn is_denial(&self) -> bool {
        self.conclusions.is_empty()
    }

    /// Predicates mentioned in the premise.
    pub fn premise_predicates(&self) -> BTreeSet<Predicate> {
        self.premise.iter().map(|a| a.predicate).collect()
    }

    /// Predicates mentioned in any conclusion.
    pub fn conclusion_predicates(&self) -> BTreeSet<Predicate> {
        self.conclusions.iter().flat_map(|c| c.atoms.iter().map(|a| a.predicate)).collect()
    }

    /// Maximum number of premise atoms; the paper notes that TIX constraints
    /// have at most 2 premise atoms, which keeps chase steps cheap.
    pub fn premise_size(&self) -> usize {
        self.premise.len()
    }
}

impl fmt::Debug for Ded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.name)?;
        for (i, a) in self.premise.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        for (a, b) in &self.premise_inequalities {
            write!(f, " ∧ {a} ≠ {b}")?;
        }
        write!(f, " → ")?;
        if self.conclusions.is_empty() {
            write!(f, "⊥")?;
        }
        for (i, c) in self.conclusions.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{c:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Ded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The pair of DEDs that models a relational view defined by a conjunctive
/// query (Section 2.3 of the paper): `cV` states that the result of the
/// defining query is included in the view relation, `bV` the converse.
pub fn view_dependencies(
    view_name: &str,
    defining_query: &crate::query::ConjunctiveQuery,
) -> (Ded, Ded) {
    let view_pred = Predicate::new(view_name);
    let head_atom = Atom::new(view_pred, defining_query.head.clone());

    // cV: body → V(head)
    let c_v = Ded::tgd(
        &format!("c{view_name}"),
        defining_query.body.clone(),
        Vec::new(),
        vec![head_atom.clone()],
    );

    // bV: V(head) → ∃ (body vars not in head). body
    let head_vars: HashSet<Variable> = defining_query.head_variables().into_iter().collect();
    let exists: Vec<Variable> = {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for a in &defining_query.body {
            for v in a.variables() {
                if !head_vars.contains(&v) && seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    };
    let b_v =
        Ded::tgd(&format!("b{view_name}"), vec![head_atom], exists, defining_query.body.clone());
    (c_v, b_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::builders::*;
    use crate::query::ConjunctiveQuery;

    fn v(n: &str) -> Variable {
        Variable::named(n)
    }
    fn t(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn tgd_and_egd_classification() {
        let base =
            Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]);
        assert!(base.is_tgd());
        assert!(!base.is_egd());
        assert!(!base.is_disjunctive());
        assert!(!base.is_denial());
        assert_eq!(base.premise_size(), 1);

        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("k"), t("a")]), Atom::named("R", vec![t("k"), t("b")])],
            t("a"),
            t("b"),
        );
        assert!(key.is_egd());
        assert!(!key.is_tgd());
    }

    #[test]
    fn disjunctive_line_constraint() {
        // (line): desc(x,u) ∧ desc(y,u) → x=y ∨ desc(x,y) ∨ desc(y,x)
        let line = Ded::disjunctive(
            "line",
            vec![desc(t("x"), t("u")), desc(t("y"), t("u"))],
            vec![
                Conjunct::equalities(vec![(t("x"), t("y"))]),
                Conjunct::atoms(vec![desc(t("x"), t("y"))]),
                Conjunct::atoms(vec![desc(t("y"), t("x"))]),
            ],
        );
        assert!(line.is_disjunctive());
        assert_eq!(line.conclusions.len(), 3);
        assert_eq!(line.universal_variables().len(), 3);
    }

    #[test]
    fn denial_constraints() {
        let d = Ded::denial("no_self_child", vec![child(t("x"), t("x"))]);
        assert!(d.is_denial());
        assert_eq!(format!("{d}"), "[no_self_child] child(x, x) → ⊥");
    }

    #[test]
    fn existential_variables_are_non_premise_conclusion_vars() {
        // ind: A(x,y) → ∃z B(y,z)
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let ex = ind.existential_variables(&ind.conclusions[0]);
        assert_eq!(ex, vec![v("z")]);
        let uni = ind.universal_variables();
        assert!(uni.contains(&v("x")) && uni.contains(&v("y")) && !uni.contains(&v("z")));
    }

    #[test]
    fn view_dependency_pair_matches_paper_example() {
        // V(x,z) :- A(x,y), B(y,z)
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        // cV: A(x,y) ∧ B(y,z) → V(x,z)
        assert_eq!(c_v.premise.len(), 2);
        assert_eq!(c_v.conclusions[0].atoms[0].predicate.name(), "V");
        assert!(c_v.conclusions[0].exists.is_empty());
        // bV: V(x,z) → ∃y A(x,y) ∧ B(y,z)
        assert_eq!(b_v.premise.len(), 1);
        assert_eq!(b_v.conclusions[0].exists, vec![v("y")]);
        assert_eq!(b_v.conclusions[0].atoms.len(), 2);
    }

    #[test]
    fn predicate_sets() {
        let base =
            Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]);
        assert!(base.premise_predicates().contains(&Predicate::new("child")));
        assert!(base.conclusion_predicates().contains(&Predicate::new("desc")));
    }

    #[test]
    fn conjunct_apply_substitution() {
        let c = Conjunct::atoms(vec![desc(t("x"), t("y"))]).with_equalities(vec![(t("x"), t("y"))]);
        let s = Substitution::from_pairs(vec![(v("x"), Term::constant_str("n1"))]).unwrap();
        let c2 = c.apply(&s);
        assert_eq!(c2.atoms[0].args[0], Term::constant_str("n1"));
        assert_eq!(c2.equalities[0].0, Term::constant_str("n1"));
    }

    #[test]
    fn premise_inequalities_tracked_in_universal_vars() {
        let d = Ded::tgd(
            "neq",
            vec![Atom::named("R", vec![t("x")])],
            vec![],
            vec![Atom::named("S", vec![t("x")])],
        )
        .with_premise_inequalities(vec![(t("x"), t("w"))]);
        assert!(d.universal_variables().contains(&v("w")));
    }
}
