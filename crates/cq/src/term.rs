//! Terms: variables and constants.
//!
//! A [`Term`] appears as an argument of an [`Atom`](crate::Atom). Constants
//! are either interned strings (tag names, text values) or integers; the
//! distinction matters only for cost estimation and for executing
//! reformulations over actual storage.

use crate::symbol::{symbol, Symbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A query variable.
///
/// Variables carry an interned base name plus a numeric *disambiguator*.
/// Fresh variables created during the chase reuse disambiguators so that the
/// same base name can be re-introduced without capture.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Variable {
    /// Interned base name, e.g. `x`.
    pub name: u32,
    /// Disambiguator; `0` for user-written variables.
    pub index: u32,
}

impl Variable {
    /// A variable with the given source-level name (disambiguator 0).
    pub fn named(name: &str) -> Variable {
        Variable { name: symbol(name).0, index: 0 }
    }

    /// A variable with an explicit disambiguator.
    pub fn with_index(name: &str, index: u32) -> Variable {
        Variable { name: symbol(name).0, index }
    }

    /// The base name symbol.
    pub fn name_symbol(&self) -> Symbol {
        Symbol(self.name)
    }

    /// Render the variable, including the disambiguator when non-zero.
    pub fn display_name(&self) -> String {
        if self.index == 0 {
            Symbol(self.name).as_str().to_string()
        } else {
            format!("{}#{}", Symbol(self.name).as_str(), self.index)
        }
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

/// A constant value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Constant {
    /// Interned string constant (tag names, text values, node labels).
    Str(u32),
    /// Integer constant.
    Int(i64),
}

impl Constant {
    /// Intern a string constant.
    pub fn str(s: &str) -> Constant {
        Constant::Str(symbol(s).0)
    }

    /// Integer constant.
    pub fn int(i: i64) -> Constant {
        Constant::Int(i)
    }

    /// Render the constant for display / SQL generation.
    pub fn render(&self) -> String {
        match self {
            Constant::Str(s) => Symbol(*s).as_str().to_string(),
            Constant::Int(i) => i.to_string(),
        }
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Str(s) => write!(f, "\"{}\"", Symbol(*s).as_str()),
            Constant::Int(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A term: variable or constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    Var(Variable),
    Const(Constant),
}

impl Term {
    /// Variable term from a name.
    pub fn var(name: &str) -> Term {
        Term::Var(Variable::named(name))
    }

    /// String-constant term.
    pub fn constant_str(s: &str) -> Term {
        Term::Const(Constant::str(s))
    }

    /// Integer-constant term.
    pub fn constant_int(i: i64) -> Term {
        Term::Const(Constant::Int(i))
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this term a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Variable> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<Constant> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Term {
        Term::Var(v)
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Term {
        Term::Const(c)
    }
}

/// Generator of fresh variables, used by the chase when instantiating
/// existentially quantified conclusion variables.
#[derive(Debug, Clone)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// A generator whose fresh variables start at disambiguator `start`.
    pub fn new(start: u32) -> VarGen {
        VarGen { next: start.max(1) }
    }

    /// A generator guaranteed not to collide with any variable already used
    /// by the given terms.
    pub fn avoiding<'a, I: IntoIterator<Item = &'a Term>>(terms: I) -> VarGen {
        let mut max = 0;
        for t in terms {
            if let Term::Var(v) = t {
                max = max.max(v.index);
            }
        }
        VarGen { next: max + 1 }
    }

    /// A fresh variable derived from `base`.
    pub fn fresh(&mut self, base: Variable) -> Variable {
        let v = Variable { name: base.name, index: self.next };
        self.next += 1;
        v
    }

    /// A fresh variable with an explicit base name.
    pub fn fresh_named(&mut self, name: &str) -> Variable {
        let v = Variable::with_index(name, self.next);
        self.next += 1;
        v
    }
}

impl Default for VarGen {
    fn default() -> Self {
        VarGen::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_compare_by_name_and_index() {
        assert_eq!(Variable::named("x"), Variable::named("x"));
        assert_ne!(Variable::named("x"), Variable::named("y"));
        assert_ne!(Variable::named("x"), Variable::with_index("x", 3));
    }

    #[test]
    fn display_of_fresh_variables_has_disambiguator() {
        let v = Variable::with_index("u", 7);
        assert_eq!(v.display_name(), "u#7");
        assert_eq!(Variable::named("u").display_name(), "u");
    }

    #[test]
    fn constants() {
        assert_eq!(Constant::str("a"), Constant::str("a"));
        assert_ne!(Constant::str("a"), Constant::str("b"));
        assert_ne!(Constant::str("1"), Constant::int(1));
        assert_eq!(Constant::int(1).render(), "1");
        assert_eq!(Constant::str("book").render(), "book");
    }

    #[test]
    fn term_accessors() {
        let t = Term::var("x");
        assert!(t.is_var());
        assert!(!t.is_const());
        assert_eq!(t.as_var(), Some(Variable::named("x")));
        assert_eq!(t.as_const(), None);
        let c = Term::constant_int(5);
        assert!(c.is_const());
        assert_eq!(c.as_const(), Some(Constant::Int(5)));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn vargen_produces_distinct_variables() {
        let mut g = VarGen::default();
        let a = g.fresh(Variable::named("x"));
        let b = g.fresh(Variable::named("x"));
        assert_ne!(a, b);
        assert_eq!(a.name, b.name);
    }

    #[test]
    fn vargen_avoiding_skips_used_indices() {
        let terms = [
            Term::Var(Variable::with_index("x", 5)),
            Term::Var(Variable::named("y")),
            Term::constant_str("c"),
        ];
        let mut g = VarGen::avoiding(terms.iter());
        let f = g.fresh(Variable::named("z"));
        assert!(f.index > 5);
    }

    #[test]
    fn term_display() {
        assert_eq!(format!("{}", Term::var("a")), "a");
        assert_eq!(format!("{}", Term::constant_str("t")), "\"t\"");
        assert_eq!(format!("{}", Term::constant_int(3)), "3");
    }
}
