//! Containment, equivalence and minimization of conjunctive queries under
//! DED constraints.
//!
//! `Q1 ⊆ Q2` under a set of dependencies Σ holds iff there is a containment
//! mapping from `Q2` into (every leaf of) the chase of `Q1` with Σ that is the
//! identity on the head. This is the classical chase-based containment test
//! that the backchase phase relies on when checking that a subquery of the
//! universal plan is equivalent to the original query.

use crate::atom::Atom;
use crate::chase::{naive_chase, ChaseBudget};
use crate::ded::Ded;
use crate::homomorphism::{find_homomorphism, find_homomorphism_using_fresh, AtomIndex};
use crate::query::ConjunctiveQuery;
use crate::substitution::Substitution;
use crate::term::Term;

/// Options controlling the containment test.
#[derive(Clone, Debug, Default)]
pub struct ContainmentOptions {
    /// Budget for the chases performed inside the test.
    pub budget: ChaseBudget,
}

impl ContainmentOptions {
    /// Options with a small budget (for unit tests).
    pub fn small() -> ContainmentOptions {
        ContainmentOptions { budget: ChaseBudget::small() }
    }
}

/// Build the initial substitution pairing `sub_query`'s head with the target
/// head positionally. Returns `None` if heads are incompatible (different
/// arity or mismatched constants).
fn head_alignment(sub_query: &ConjunctiveQuery, target_head: &[Term]) -> Option<Substitution> {
    if sub_query.head.len() != target_head.len() {
        return None;
    }
    let mut s = Substitution::new();
    for (a, b) in sub_query.head.iter().zip(target_head.iter()) {
        match a {
            Term::Var(v) => {
                if !s.bind(*v, *b) {
                    return None;
                }
            }
            Term::Const(_) => {
                if a != b {
                    return None;
                }
            }
        }
    }
    Some(s)
}

/// Does a containment mapping from `from` into the body of `into` exist, that
/// maps `from`'s head onto `into`'s head positionally?
pub fn containment_mapping(
    from: &ConjunctiveQuery,
    into: &ConjunctiveQuery,
) -> Option<Substitution> {
    ContainmentTarget::new(into).mapping_from(from)
}

/// A query prepared as the *target* of repeated containment tests: the atom
/// index (and an exact atom set for the identity fast path) are built once
/// instead of per call. The backchase checks every candidate against the same
/// universal-plan branches, so this hoists the per-candidate index
/// construction out of the hot loop.
pub struct ContainmentTarget {
    head: Vec<Term>,
    index: AtomIndex,
    atoms: std::collections::HashSet<crate::atom::Atom>,
}

impl ContainmentTarget {
    /// Prepare `into` as a containment target.
    pub fn new(into: &ConjunctiveQuery) -> ContainmentTarget {
        ContainmentTarget {
            head: into.head.clone(),
            index: AtomIndex::new(&into.body),
            atoms: into.body.iter().cloned().collect(),
        }
    }

    /// Containment mapping from `from` into this target (head-preserving).
    ///
    /// When `from`'s head equals the target's head and every `from` atom
    /// occurs verbatim in the target body, the identity is such a mapping and
    /// the homomorphism search is skipped — the common case for subqueries of
    /// a universal-plan branch checked against that same branch.
    pub fn mapping_from(&self, from: &ConjunctiveQuery) -> Option<Substitution> {
        if from.head == self.head && from.body.iter().all(|a| self.atoms.contains(a)) {
            let mut identity = Substitution::new();
            for v in from.variables() {
                identity.set(v, Term::Var(v));
            }
            return Some(identity);
        }
        let init = head_alignment(from, &self.head)?;
        find_homomorphism(&from.body, &self.index, &init)
    }
}

/// A containment target assembled directly from pre-rendered parts — the
/// head and atom list of a resident chase branch — skipping the sorted
/// query rendering [`ContainmentTarget::new`] needs, and optionally
/// partitioned at a *fresh mark*: atoms at index `< fresh_mark` were carried
/// over unchanged from a memoized seed branch, atoms at `>= fresh_mark` are
/// new or rewritten.
///
/// With a fresh mark, [`DeltaTarget::mapping_from`] runs the
/// delta-restricted homomorphism search
/// ([`find_homomorphism_using_fresh`]): when the caller knows (from a
/// memoized verdict) that no head-preserving mapping lands entirely in the
/// carried-over prefix, any mapping must use a fresh atom, and search
/// subtrees that cannot reach one are pruned. The verdict is identical to
/// the unrestricted search under that guarantee — only the work differs.
pub struct DeltaTarget {
    head: Vec<Term>,
    index: AtomIndex,
    fresh_mark: Option<usize>,
}

impl DeltaTarget {
    /// An unrestricted target over the given head and atoms.
    pub fn new(head: Vec<Term>, atoms: Vec<Atom>) -> DeltaTarget {
        DeltaTarget { head, index: AtomIndex::from_atoms(atoms), fresh_mark: None }
    }

    /// A delta-restricted target: atoms at index `>= fresh_mark` are fresh,
    /// and every mapping found must use at least one of them. Sound only
    /// when no head-preserving mapping into the atoms below the mark exists.
    pub fn with_fresh_mark(head: Vec<Term>, atoms: Vec<Atom>, fresh_mark: usize) -> DeltaTarget {
        DeltaTarget { head, index: AtomIndex::from_atoms(atoms), fresh_mark: Some(fresh_mark) }
    }

    /// Containment mapping from `from` into this target (head-preserving).
    ///
    /// The identity fast path of [`ContainmentTarget::mapping_from`] applies
    /// here too (membership is checked through the per-predicate index, no
    /// atom set is materialized), and is valid even under a fresh mark: an
    /// identity mapping into the full atom list is a witness regardless of
    /// which atoms it touches.
    pub fn mapping_from(&self, from: &ConjunctiveQuery) -> Option<Substitution> {
        if from.head == self.head && from.body.iter().all(|a| self.index.contains_exact(a)) {
            let mut identity = Substitution::new();
            for v in from.variables() {
                identity.set(v, Term::Var(v));
            }
            return Some(identity);
        }
        let init = head_alignment(from, &self.head)?;
        match self.fresh_mark {
            Some(mark) => find_homomorphism_using_fresh(&from.body, &self.index, &init, mark),
            None => find_homomorphism(&from.body, &self.index, &init),
        }
    }
}

/// `q1 ⊆ q2` under the dependencies `deds`.
///
/// The test chases `q1` and requires a containment mapping from `q2` into
/// **every** surviving leaf (for disjunctive dependencies). If the chase does
/// not terminate within the budget the test conservatively returns `false`.
pub fn contained_in(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    deds: &[Ded],
    opts: &ContainmentOptions,
) -> bool {
    if q1.head.len() != q2.head.len() {
        return false;
    }
    let tree = naive_chase(q1, deds, &opts.budget);
    if !tree.terminated() {
        return false;
    }
    if tree.leaves.is_empty() {
        // q1 is unsatisfiable under the constraints: contained in anything of
        // the same arity.
        return true;
    }
    tree.leaves.iter().all(|leaf| containment_mapping(q2, leaf).is_some())
}

/// `q1 ≡ q2` under the dependencies.
pub fn equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    deds: &[Ded],
    opts: &ContainmentOptions,
) -> bool {
    contained_in(q1, q2, deds, opts) && contained_in(q2, q1, deds, opts)
}

/// Tableau-minimize `q` under the dependencies: repeatedly drop body atoms as
/// long as the result stays equivalent to the original. The result is a
/// *minimal* query in the sense of the paper — no atom can be removed without
/// compromising equivalence.
pub fn minimize(q: &ConjunctiveQuery, deds: &[Ded], opts: &ContainmentOptions) -> ConjunctiveQuery {
    let mut current = q.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..current.body.len() {
            if current.body.len() == 1 {
                break;
            }
            let mut candidate = current.clone();
            candidate.body.remove(i);
            if !candidate.is_safe() {
                continue;
            }
            if equivalent(&candidate, q, deds, opts) {
                current = candidate;
                changed = true;
                break;
            }
        }
    }
    current.name = format!("{}_min", q.name);
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::builders::*;
    use crate::atom::Atom;
    use crate::ded::{view_dependencies, Ded};
    use crate::term::{Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn classic_containment_without_constraints() {
        // Q1(x) :- R(x,y), R(y,z)   ⊆   Q2(x) :- R(x,y)
        let q1 = ConjunctiveQuery::new("Q1").with_head(vec![t("x")]).with_body(vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
        ]);
        let q2 = ConjunctiveQuery::new("Q2")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("R", vec![t("x"), t("y")])]);
        let opts = ContainmentOptions::small();
        assert!(contained_in(&q1, &q2, &[], &opts));
        assert!(!contained_in(&q2, &q1, &[], &opts));
        assert!(!equivalent(&q1, &q2, &[], &opts));
    }

    #[test]
    fn self_equivalence() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![child(t("x"), t("y")), tag(t("y"), "a")]);
        let opts = ContainmentOptions::small();
        assert!(equivalent(&q, &q, &[], &opts));
    }

    #[test]
    fn head_arity_mismatch_is_not_contained() {
        let q1 = ConjunctiveQuery::new("Q1")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("R", vec![t("x")])]);
        let q2 = ConjunctiveQuery::new("Q2")
            .with_head(vec![t("x"), t("y")])
            .with_body(vec![Atom::named("R", vec![t("x")])]);
        assert!(!contained_in(&q1, &q2, &[], &ContainmentOptions::small()));
    }

    /// The Section 2.3 example: S(x) :- V(x,z) is equivalent to
    /// Q(x) :- A(x,y) under (ind), (cV), (bV).
    #[test]
    fn section_2_3_view_rewriting_equivalence() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let s = ConjunctiveQuery::new("S")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("V", vec![t("x"), t("z")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![Variable::named("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let deds = vec![ind, c_v, b_v];
        let opts = ContainmentOptions::small();
        assert!(equivalent(&q, &s, &deds, &opts));
        // Without (ind), the rewriting is NOT equivalent (V requires a B-fact
        // that Q does not imply).
        let deds_no_ind = vec![deds[1].clone(), deds[2].clone()];
        assert!(!equivalent(&q, &s, &deds_no_ind, &opts));
    }

    #[test]
    fn minimization_removes_redundant_atoms() {
        // Q(x) :- R(x,y), R(x,y') minimizes to a single R atom.
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x")]).with_body(vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("x"), t("y2")]),
        ]);
        let m = minimize(&q, &[], &ContainmentOptions::small());
        assert_eq!(m.body.len(), 1);
        assert!(equivalent(&m, &q, &[], &ContainmentOptions::small()));
    }

    #[test]
    fn minimization_keeps_necessary_atoms() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("S", vec![t("y"), t("z")]),
        ]);
        let m = minimize(&q, &[], &ContainmentOptions::small());
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn containment_with_constant_heads() {
        let q1 = ConjunctiveQuery::new("Q1")
            .with_head(vec![Term::constant_str("k")])
            .with_body(vec![Atom::named("R", vec![Term::constant_str("k")])]);
        let q2 = ConjunctiveQuery::new("Q2")
            .with_head(vec![Term::constant_str("k")])
            .with_body(vec![Atom::named("R", vec![t("x")])]);
        let opts = ContainmentOptions::small();
        assert!(contained_in(&q1, &q2, &[], &opts));
        // Mismatched head constants are never contained.
        let q3 = ConjunctiveQuery::new("Q3")
            .with_head(vec![Term::constant_str("other")])
            .with_body(vec![Atom::named("R", vec![t("x")])]);
        assert!(!contained_in(&q1, &q3, &[], &opts));
    }

    #[test]
    fn unsatisfiable_query_is_contained_in_everything() {
        // Q1's body violates a denial constraint → chase fails all branches.
        let q1 = ConjunctiveQuery::new("Q1")
            .with_head(vec![t("x")])
            .with_body(vec![child(t("x"), t("x"))]);
        let q2 = ConjunctiveQuery::new("Q2")
            .with_head(vec![t("y")])
            .with_body(vec![Atom::named("Whatever", vec![t("y")])]);
        let denial = Ded::denial("no_self", vec![child(t("u"), t("u"))]);
        assert!(contained_in(&q1, &q2, &[denial], &ContainmentOptions::small()));
    }

    #[test]
    fn containment_mapping_respects_head() {
        // Q2(y) :- R(x,y) has no containment mapping into Q1(x) :- R(x,y)
        // because the head positions differ.
        let q1 = ConjunctiveQuery::new("Q1")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("R", vec![t("x"), t("y")])]);
        let q2 = ConjunctiveQuery::new("Q2")
            .with_head(vec![t("y")])
            .with_body(vec![Atom::named("R", vec![t("x"), t("y")])]);
        assert!(containment_mapping(&q1, &q1).is_some());
        assert!(containment_mapping(&q2, &q1).is_none());
    }
}
