//! Homomorphism search.
//!
//! A chase step of a query `Q` with a constraint `c` applies if there is a
//! homomorphism `h` from the premise of `c` into the body of `Q` that cannot
//! be extended to the conclusion of `c` (Section 3.1). This module provides a
//! direct backtracking implementation used by the naive chase and by the
//! containment checks; the scalable join-tree evaluation lives in
//! `mars-chase`.

use crate::atom::{Atom, Predicate};
use crate::ded::Conjunct;
use crate::substitution::Substitution;
use crate::term::{Term, Variable};
use std::collections::HashMap;

/// A per-predicate index over a set of target atoms, to avoid scanning the
/// whole target body for every candidate source atom.
#[derive(Clone, Debug, Default)]
pub struct AtomIndex {
    by_pred: HashMap<Predicate, Vec<usize>>,
    atoms: Vec<Atom>,
}

impl AtomIndex {
    /// Build an index over the given atoms.
    pub fn new(atoms: &[Atom]) -> AtomIndex {
        AtomIndex::from_atoms(atoms.to_vec())
    }

    /// Build an index taking ownership of the atoms (no clone — the form the
    /// backchase uses when it assembles target atom lists straight from
    /// resident chase branches).
    pub fn from_atoms(atoms: Vec<Atom>) -> AtomIndex {
        let mut by_pred: HashMap<Predicate, Vec<usize>> = HashMap::new();
        for (i, a) in atoms.iter().enumerate() {
            by_pred.entry(a.predicate).or_default().push(i);
        }
        AtomIndex { by_pred, atoms }
    }

    /// All atoms in the index.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Candidate target atoms for a given predicate, ascending. A predicate
    /// with no bucket yields the shared empty slice — no allocation on the
    /// miss path (the homomorphism search hits it for every source predicate
    /// absent from the target).
    pub fn candidates(&self, p: Predicate) -> &[usize] {
        self.by_pred.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Add an atom to the index (used when a chase step extends the target).
    pub fn push(&mut self, atom: Atom) {
        let i = self.atoms.len();
        self.by_pred.entry(atom.predicate).or_default().push(i);
        self.atoms.push(atom);
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Does the index contain the exact (ground or variable-identical) atom?
    pub fn contains_exact(&self, atom: &Atom) -> bool {
        self.candidates(atom.predicate).iter().any(|&i| &self.atoms[i] == atom)
    }
}

/// Undo every binding made after `mark` was taken from the trail.
fn unwind(sub: &mut Substitution, trail: &mut Vec<Variable>, mark: usize) {
    while trail.len() > mark {
        let v = trail.pop().expect("trail entries above mark");
        sub.remove(v);
    }
}

/// Try to match `source` against `target_atom` by extending `sub` **in
/// place**; newly bound variables are pushed onto `trail`. Source constants
/// must equal target terms exactly; source variables bind to whatever target
/// term occupies the same position. On a mismatch the bindings this call made
/// are already undone when it returns `false`.
fn match_atom_in_place(
    source: &Atom,
    target_atom: &Atom,
    sub: &mut Substitution,
    trail: &mut Vec<Variable>,
) -> bool {
    if source.predicate != target_atom.predicate || source.arity() != target_atom.arity() {
        return false;
    }
    let mark = trail.len();
    for (s, t) in source.args.iter().zip(target_atom.args.iter()) {
        let ok = match s {
            Term::Const(_) => s == t,
            Term::Var(v) => match sub.get(*v) {
                Some(image) => image == *t,
                None => {
                    sub.set(*v, *t);
                    trail.push(*v);
                    true
                }
            },
        };
        if !ok {
            unwind(sub, trail, mark);
            return false;
        }
    }
    true
}

/// Order the source atoms for the backtracking search: greedily pick, at each
/// step, the atom with the fewest *unbound* variable arguments (its constants
/// and already-bound variables prune candidate matches), breaking ties by the
/// number of candidate target atoms for its predicate. The set of
/// homomorphisms is independent of the order, but a join-aware order avoids
/// the exponential backtracking that body order can hit on universal plans
/// (dozens of same-predicate navigation atoms).
fn plan_order(source: &[Atom], target: &AtomIndex, initial: &Substitution) -> Vec<usize> {
    let n = source.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut bound: std::collections::HashSet<crate::term::Variable> =
        initial.iter().map(|(v, _)| v).collect();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for _ in 0..n {
        let mut best: Option<(usize, usize, usize)> = None; // (unbound, candidates, idx)
        for (i, a) in source.iter().enumerate() {
            if used[i] {
                continue;
            }
            let unbound =
                a.args.iter().filter(|t| matches!(t, Term::Var(v) if !bound.contains(v))).count();
            let cands = target.candidates(a.predicate).len();
            let key = (unbound, cands, i);
            if best.map(|b| key < b).unwrap_or(true) {
                best = Some(key);
            }
        }
        let (_, _, i) = best.expect("unused atom remains");
        used[i] = true;
        bound.extend(source[i].variables());
        order.push(i);
    }
    order
}

/// The immutable context of one backtracking search. The mutable state — a
/// **single** substitution extended in place plus the undo trail — travels as
/// `&mut` through the recursion: no per-node substitution clone is made, only
/// one clone per *reported* homomorphism.
struct SearchCtx<'a> {
    source: &'a [Atom],
    order: &'a [usize],
    target: &'a AtomIndex,
    inequalities: &'a [(Term, Term)],
    /// Target atoms at index `>= fresh_mark` are *fresh*; when restricted
    /// (`fresh_mark < usize::MAX`) every reported homomorphism must match at
    /// least one source atom to a fresh target atom. `usize::MAX` disables
    /// the restriction.
    fresh_mark: usize,
    /// `suffix_has_fresh[pos]`: can any source atom at `order[pos..]` still
    /// match a fresh target atom? When it cannot and none was used yet, the
    /// whole subtree is abandoned. Empty when unrestricted.
    suffix_has_fresh: Vec<bool>,
    limit: Option<usize>,
}

fn search(
    ctx: &SearchCtx<'_>,
    pos: usize,
    used_fresh: bool,
    sub: &mut Substitution,
    trail: &mut Vec<Variable>,
    all: &mut Option<&mut Vec<Substitution>>,
    found_one: &mut Option<Substitution>,
) -> bool {
    if pos == ctx.source.len() {
        if ctx.fresh_mark != usize::MAX && !used_fresh {
            return false;
        }
        // Check premise inequalities under the found mapping: both sides must
        // be distinct terms after substitution (we treat distinct constants as
        // unequal; distinct variables/labelled nulls are also treated as
        // unequal, which is the standard semantics on canonical instances).
        for (a, b) in ctx.inequalities {
            if sub.apply_term(*a) == sub.apply_term(*b) {
                return false;
            }
        }
        match all {
            Some(v) => {
                v.push(sub.clone());
                matches!(ctx.limit, Some(lim) if v.len() >= lim)
            }
            None => {
                *found_one = Some(sub.clone());
                true
            }
        }
    } else {
        if ctx.fresh_mark != usize::MAX && !used_fresh && !ctx.suffix_has_fresh[pos] {
            return false;
        }
        let atom = &ctx.source[ctx.order[pos]];
        let mark = trail.len();
        for &i in ctx.target.candidates(atom.predicate) {
            if match_atom_in_place(atom, &ctx.target.atoms()[i], sub, trail) {
                let fresh = used_fresh || i >= ctx.fresh_mark;
                let stop = search(ctx, pos + 1, fresh, sub, trail, all, found_one);
                unwind(sub, trail, mark);
                if stop {
                    return true;
                }
            }
        }
        false
    }
}

/// Shared driver behind the public entry points.
fn run_search(
    source: &[Atom],
    target: &AtomIndex,
    initial: &Substitution,
    inequalities: &[(Term, Term)],
    fresh_mark: Option<usize>,
    mut all: Option<&mut Vec<Substitution>>,
    limit: Option<usize>,
) -> Option<Substitution> {
    let order = plan_order(source, target, initial);
    let fresh_mark = fresh_mark.unwrap_or(usize::MAX);
    let suffix_has_fresh = if fresh_mark == usize::MAX {
        Vec::new()
    } else {
        // Candidate buckets are ascending, so the last entry decides whether
        // a position can still contribute a fresh atom.
        let mut suffix = vec![false; source.len() + 1];
        for pos in (0..source.len()).rev() {
            let has = target
                .candidates(source[order[pos]].predicate)
                .last()
                .map(|&i| i >= fresh_mark)
                .unwrap_or(false);
            suffix[pos] = suffix[pos + 1] || has;
        }
        suffix
    };
    let ctx = SearchCtx {
        source,
        order: &order,
        target,
        inequalities,
        fresh_mark,
        suffix_has_fresh,
        limit,
    };
    let mut sub = initial.clone();
    let mut trail: Vec<Variable> = Vec::new();
    let mut found_one = None;
    search(&ctx, 0, false, &mut sub, &mut trail, &mut all, &mut found_one);
    found_one
}

/// Find one homomorphism from `source` atoms into the indexed `target`,
/// extending the partial substitution `initial`.
pub fn find_homomorphism(
    source: &[Atom],
    target: &AtomIndex,
    initial: &Substitution,
) -> Option<Substitution> {
    run_search(source, target, initial, &[], None, None, None)
}

/// Find one homomorphism respecting the given source inequalities.
pub fn find_homomorphism_with_inequalities(
    source: &[Atom],
    inequalities: &[(Term, Term)],
    target: &AtomIndex,
    initial: &Substitution,
) -> Option<Substitution> {
    run_search(source, target, initial, inequalities, None, None, None)
}

/// Find one homomorphism that matches at least one source atom to a target
/// atom with index `>= fresh_mark`.
///
/// This restricted search is **complete** only under the caller's guarantee
/// that no homomorphism maps entirely into the target atoms below the mark —
/// the delta-restricted containment check of the backchase: when a memoized
/// verdict proves the carried-over prefix of a resumed chase branch admits no
/// mapping, any mapping into the grown branch must use a fresh atom, so
/// subtrees that can no longer reach one are pruned.
pub fn find_homomorphism_using_fresh(
    source: &[Atom],
    target: &AtomIndex,
    initial: &Substitution,
    fresh_mark: usize,
) -> Option<Substitution> {
    run_search(source, target, initial, &[], Some(fresh_mark), None, None)
}

/// Find all homomorphisms from `source` into `target` extending `initial`.
/// `limit` optionally caps the number of results. The enumeration extends a
/// single substitution in place (undo trail), cloning once per solution.
pub fn find_all_homomorphisms(
    source: &[Atom],
    target: &AtomIndex,
    initial: &Substitution,
    limit: Option<usize>,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    run_search(source, target, initial, &[], None, Some(&mut out), limit);
    out
}

/// Check whether the homomorphism `h` (from a DED premise into `target`)
/// extends to the given conclusion conjunct: there must exist a mapping of the
/// conjunct's existential variables into target terms such that all conclusion
/// atoms (under `h` + that mapping) are in `target` and all conclusion
/// equalities hold.
pub fn extend_to_conclusion(conjunct: &Conjunct, h: &Substitution, target: &AtomIndex) -> bool {
    // Work with the *unapplied* conclusion and carry `h` as the initial
    // (partial) substitution: premise variables are rigidly bound to their
    // images while genuinely existential conclusion variables stay free and
    // may be matched against any target term. (Applying `h` first and then
    // searching would wrongly treat target variables appearing in the image
    // as re-bindable.)
    let mut init = h.clone();

    // Equalities either resolve immediately (both sides premise-bound), force
    // a binding for a still-free existential variable, or fail the extension.
    for (a, b) in &conjunct.equalities {
        let ia = init.apply_term_deep(*a);
        let ib = init.apply_term_deep(*b);
        if ia == ib {
            continue;
        }
        if let Term::Var(v) = ia {
            if a.as_var() == Some(v) && !init.binds(v) {
                init.set(v, ib);
                continue;
            }
        }
        if let Term::Var(v) = ib {
            if b.as_var() == Some(v) && !init.binds(v) {
                init.set(v, ia);
                continue;
            }
        }
        return false;
    }

    if conjunct.atoms.is_empty() {
        return true;
    }
    find_homomorphism(&conjunct.atoms, target, &init).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::builders::*;
    use crate::ded::Conjunct;
    use crate::term::{Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }
    fn v(n: &str) -> Variable {
        Variable::named(n)
    }

    /// The running example of Section 3.1 (Example 3.1):
    /// Q(a,g) :- R(a,b), R(b,c), R(c,d), S(d,e), S(e,f), S(f,g)
    fn example_target() -> AtomIndex {
        AtomIndex::new(&[
            Atom::named("R", vec![t("a"), t("b")]),
            Atom::named("R", vec![t("b"), t("c")]),
            Atom::named("R", vec![t("c"), t("d")]),
            Atom::named("S", vec![t("d"), t("e")]),
            Atom::named("S", vec![t("e"), t("f")]),
            Atom::named("S", vec![t("f"), t("g")]),
        ])
    }

    #[test]
    fn example_3_1_homomorphism_found() {
        // premise of (c): R(x,y), R(y,z), S(z,u), S(u,v)
        let premise = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("S", vec![t("z"), t("u")]),
            Atom::named("S", vec![t("u"), t("v")]),
        ];
        let target = example_target();
        let h = find_homomorphism(&premise, &target, &Substitution::new()).unwrap();
        // The only homomorphism is {x↦b, y↦c, z↦d, u↦e, v↦f}.
        assert_eq!(h.get(v("x")), Some(t("b")));
        assert_eq!(h.get(v("y")), Some(t("c")));
        assert_eq!(h.get(v("z")), Some(t("d")));
        assert_eq!(h.get(v("u")), Some(t("e")));
        assert_eq!(h.get(v("v")), Some(t("f")));
        let all = find_all_homomorphisms(&premise, &target, &Substitution::new(), None);
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn no_homomorphism_when_pattern_absent() {
        let premise = vec![Atom::named("T", vec![t("x")])];
        let target = example_target();
        assert!(find_homomorphism(&premise, &target, &Substitution::new()).is_none());
    }

    #[test]
    fn constants_must_match_exactly() {
        let target = AtomIndex::new(&[tag(t("n"), "author"), tag(t("m"), "title")]);
        let src_ok = vec![tag(t("x"), "author")];
        let src_bad = vec![tag(t("x"), "publisher")];
        assert!(find_homomorphism(&src_ok, &target, &Substitution::new()).is_some());
        assert!(find_homomorphism(&src_bad, &target, &Substitution::new()).is_none());
    }

    #[test]
    fn repeated_variables_force_equal_images() {
        // source: R(x,x) — target has R(a,b) and R(c,c)
        let target = AtomIndex::new(&[
            Atom::named("R", vec![t("a"), t("b")]),
            Atom::named("R", vec![t("c"), t("c")]),
        ]);
        let src = vec![Atom::named("R", vec![t("x"), t("x")])];
        let all = find_all_homomorphisms(&src, &target, &Substitution::new(), None);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].get(v("x")), Some(t("c")));
    }

    #[test]
    fn initial_bindings_are_respected() {
        let target = example_target();
        let src = vec![Atom::named("R", vec![t("x"), t("y")])];
        let init = Substitution::from_pairs(vec![(v("x"), t("b"))]).unwrap();
        let all = find_all_homomorphisms(&src, &target, &init, None);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].get(v("y")), Some(t("c")));
    }

    #[test]
    fn all_homomorphisms_counted() {
        // chain child(x1,x2), child(x2,x3) into a path of 4 nodes has 2 homs
        let target = AtomIndex::new(&[
            child(t("n1"), t("n2")),
            child(t("n2"), t("n3")),
            child(t("n3"), t("n4")),
        ]);
        let src = vec![child(t("x"), t("y")), child(t("y"), t("z"))];
        let all = find_all_homomorphisms(&src, &target, &Substitution::new(), None);
        assert_eq!(all.len(), 2);
        let limited = find_all_homomorphisms(&src, &target, &Substitution::new(), Some(1));
        assert_eq!(limited.len(), 1);
    }

    #[test]
    fn inequalities_filter_homomorphisms() {
        let target = AtomIndex::new(&[
            Atom::named("R", vec![t("a"), t("a")]),
            Atom::named("R", vec![t("a"), t("b")]),
        ]);
        let src = vec![Atom::named("R", vec![t("x"), t("y")])];
        let h = find_homomorphism_with_inequalities(
            &src,
            &[(t("x"), t("y"))],
            &target,
            &Substitution::new(),
        )
        .unwrap();
        assert_ne!(h.get(v("x")), h.get(v("y")));
    }

    #[test]
    fn extension_check_blocks_applied_steps() {
        // After adding T(b,f), the constraint premise still maps but now
        // extends to the conclusion, so the step no longer applies.
        let mut target = example_target();
        let conclusion = Conjunct::atoms(vec![Atom::named("T", vec![t("x"), t("v")])]);
        let premise = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("S", vec![t("z"), t("u")]),
            Atom::named("S", vec![t("u"), t("v")]),
        ];
        let h = find_homomorphism(&premise, &target, &Substitution::new()).unwrap();
        assert!(!extend_to_conclusion(&conclusion, &h, &target));
        target.push(Atom::named("T", vec![t("b"), t("f")]));
        assert!(extend_to_conclusion(&conclusion, &h, &target));
    }

    #[test]
    fn extension_with_existential_variable() {
        // ind: A(x,y) → ∃z B(y,z); target has A(a,b) and B(b,c): extension holds.
        let target = AtomIndex::new(&[
            Atom::named("A", vec![t("a"), t("b")]),
            Atom::named("B", vec![t("b"), t("c")]),
        ]);
        let premise = vec![Atom::named("A", vec![t("x"), t("y")])];
        let conclusion =
            Conjunct::atoms(vec![Atom::named("B", vec![t("y"), t("z")])]).with_exists(vec![v("z")]);
        let h = find_homomorphism(&premise, &target, &Substitution::new()).unwrap();
        assert!(extend_to_conclusion(&conclusion, &h, &target));

        // Without any B fact, it does not extend.
        let target2 = AtomIndex::new(&[Atom::named("A", vec![t("a"), t("b")])]);
        let h2 = find_homomorphism(&premise, &target2, &Substitution::new()).unwrap();
        assert!(!extend_to_conclusion(&conclusion, &h2, &target2));
    }

    #[test]
    fn extension_with_equality_conclusion() {
        // key EGD: R(k,a) ∧ R(k,b) → a = b
        let target = AtomIndex::new(&[
            Atom::named("R", vec![t("k"), t("x")]),
            Atom::named("R", vec![t("k"), t("y")]),
        ]);
        let premise =
            vec![Atom::named("R", vec![t("p"), t("q")]), Atom::named("R", vec![t("p"), t("r")])];
        let conclusion = Conjunct::equalities(vec![(t("q"), t("r"))]);
        // There is a homomorphism mapping q,r to distinct x,y: it does NOT
        // satisfy the equality, so the EGD step applies for that mapping.
        let all = find_all_homomorphisms(&premise, &target, &Substitution::new(), None);
        assert!(all.iter().any(|h| !extend_to_conclusion(&conclusion, h, &target)));
        // And there are also homomorphisms mapping q=r (both to x), which do satisfy it.
        assert!(all.iter().any(|h| extend_to_conclusion(&conclusion, h, &target)));
    }

    #[test]
    fn fresh_restricted_search_requires_a_fresh_atom() {
        // Target: R(a,b), R(b,c) carried over | R(c,d) fresh (mark = 2).
        let target = AtomIndex::new(&[
            Atom::named("R", vec![t("a"), t("b")]),
            Atom::named("R", vec![t("b"), t("c")]),
            Atom::named("R", vec![t("c"), t("d")]),
        ]);
        // R(x,y) alone has mappings below the mark; the restricted search
        // must return one that uses the fresh atom.
        let src = vec![Atom::named("R", vec![t("x"), t("y")])];
        let h = find_homomorphism_using_fresh(&src, &target, &Substitution::new(), 2).unwrap();
        assert_eq!(h.get(v("x")), Some(t("c")));
        assert_eq!(h.get(v("y")), Some(t("d")));
        // With the mark past the last atom nothing can satisfy it.
        assert!(find_homomorphism_using_fresh(&src, &target, &Substitution::new(), 3).is_none());
        // A two-atom chain can only reach the fresh atom via its suffix:
        // R(x,y), R(y,z) restricted to the fresh atom forces b,c,d.
        let chain =
            vec![Atom::named("R", vec![t("x"), t("y")]), Atom::named("R", vec![t("y"), t("z")])];
        let h = find_homomorphism_using_fresh(&chain, &target, &Substitution::new(), 2).unwrap();
        assert_eq!(h.get(v("x")), Some(t("b")));
        assert_eq!(h.get(v("z")), Some(t("d")));
        // Unrestricted agrees with the classic search on existence.
        assert!(find_homomorphism(&chain, &target, &Substitution::new()).is_some());
    }

    #[test]
    fn atom_index_operations() {
        let mut idx = AtomIndex::new(&[child(t("a"), t("b"))]);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
        assert!(idx.contains_exact(&child(t("a"), t("b"))));
        assert!(!idx.contains_exact(&child(t("b"), t("a"))));
        idx.push(desc(t("a"), t("b")));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.candidates(Predicate::new("desc")).len(), 1);
        assert!(idx.candidates(Predicate::new("tag")).is_empty());
    }
}
