//! Substitutions (partial maps from variables to terms) and their application
//! to atoms, queries and constraints.

use crate::atom::Atom;
use crate::term::{Term, Variable};
use std::fmt;

/// A substitution `θ : Variable ⇀ Term`.
///
/// Substitutions are used both as *homomorphisms* (mapping the variables of a
/// constraint premise into the terms of a query body) and as *renamings* /
/// *unifiers* during the chase.
///
/// Backed by a flat `Vec` of unique `(variable, term)` pairs: the chase
/// builds and clones hundreds of thousands of small substitutions per
/// reformulation, and a vector (one allocation, memcpy clone, linear probes
/// over a handful of entries) is far cheaper there than a hash map.
/// Equality is *set* equality — binding insertion order does not matter.
#[derive(Clone, Default, Eq)]
pub struct Substitution {
    map: Vec<(Variable, Term)>,
}

impl PartialEq for Substitution {
    fn eq(&self, other: &Substitution) -> bool {
        self.map.len() == other.map.len() && self.map.iter().all(|(v, t)| other.get(*v) == Some(*t))
    }
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Substitution {
        Substitution { map: Vec::new() }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the substitution empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bind `v` to `t`. Returns `false` (and leaves the substitution
    /// unchanged) if `v` is already bound to a different term.
    pub fn bind(&mut self, v: Variable, t: Term) -> bool {
        match self.get(v) {
            Some(existing) => existing == t,
            None => {
                self.map.push((v, t));
                true
            }
        }
    }

    /// Forcefully (re)bind `v` to `t`.
    pub fn set(&mut self, v: Variable, t: Term) {
        match self.map.iter_mut().find(|(w, _)| *w == v) {
            Some(entry) => entry.1 = t,
            None => self.map.push((v, t)),
        }
    }

    /// Remove the binding of `v` (used by backtracking searches that extend a
    /// substitution in place and undo on failure).
    pub fn remove(&mut self, v: Variable) {
        if let Some(pos) = self.map.iter().position(|(w, _)| *w == v) {
            self.map.swap_remove(pos);
        }
    }

    /// Look up the binding of `v`.
    pub fn get(&self, v: Variable) -> Option<Term> {
        self.map.iter().find(|(w, _)| *w == v).map(|(_, t)| *t)
    }

    /// Is `v` bound?
    pub fn binds(&self, v: Variable) -> bool {
        self.map.iter().any(|(w, _)| *w == v)
    }

    /// Iterate over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Variable, Term)> + '_ {
        self.map.iter().copied()
    }

    /// Apply the substitution to a term. Unbound variables are left alone.
    pub fn apply_term(&self, t: Term) -> Term {
        match t {
            Term::Var(v) => self.get(v).unwrap_or(t),
            Term::Const(_) => t,
        }
    }

    /// Apply the substitution to a term, following chains of variable-to-variable
    /// bindings until a fixpoint (useful when the substitution is built by
    /// union-find style unification).
    pub fn apply_term_deep(&self, mut t: Term) -> Term {
        let mut steps = 0;
        loop {
            match t {
                Term::Var(v) => match self.get(v) {
                    Some(next) if next != t => {
                        t = next;
                        steps += 1;
                        if steps > self.map.len() + 1 {
                            return t; // cycle guard
                        }
                    }
                    _ => return t,
                },
                Term::Const(_) => return t,
            }
        }
    }

    /// Apply to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom { predicate: a.predicate, args: a.args.iter().map(|t| self.apply_term(*t)).collect() }
    }

    /// Apply (deeply) to an atom.
    pub fn apply_atom_deep(&self, a: &Atom) -> Atom {
        Atom {
            predicate: a.predicate,
            args: a.args.iter().map(|t| self.apply_term_deep(*t)).collect(),
        }
    }

    /// Apply to a slice of atoms.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Apply to a slice of terms.
    pub fn apply_terms(&self, terms: &[Term]) -> Vec<Term> {
        terms.iter().map(|t| self.apply_term(*t)).collect()
    }

    /// Compose: the result first applies `self`, then `other` to the result.
    pub fn then(&self, other: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for (v, t) in self.iter() {
            out.set(v, other.apply_term(t));
        }
        for (v, t) in other.iter() {
            if !out.binds(v) {
                out.set(v, t);
            }
        }
        out
    }

    /// Build a substitution from pairs; later pairs must agree with earlier ones.
    pub fn from_pairs<I: IntoIterator<Item = (Variable, Term)>>(pairs: I) -> Option<Substitution> {
        let mut s = Substitution::new();
        for (v, t) in pairs {
            if !s.bind(v, t) {
                return None;
            }
        }
        Some(s)
    }
}

impl fmt::Debug for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(v, _)| (v.name, v.index));
        write!(f, "{{")?;
        for (i, (v, t)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;

    fn v(n: &str) -> Variable {
        Variable::named(n)
    }

    #[test]
    fn bind_consistency() {
        let mut s = Substitution::new();
        assert!(s.bind(v("x"), Term::var("a")));
        assert!(s.bind(v("x"), Term::var("a")));
        assert!(!s.bind(v("x"), Term::var("b")));
        assert_eq!(s.get(v("x")), Some(Term::var("a")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_to_atom() {
        let s = Substitution::from_pairs(vec![(v("x"), Term::constant_str("c"))]).unwrap();
        let a = Atom::named("R", vec![Term::var("x"), Term::var("y")]);
        let b = s.apply_atom(&a);
        assert_eq!(b.args[0], Term::constant_str("c"));
        assert_eq!(b.args[1], Term::var("y"));
    }

    #[test]
    fn deep_application_follows_chains() {
        let mut s = Substitution::new();
        s.set(v("x"), Term::var("y"));
        s.set(v("y"), Term::constant_int(7));
        assert_eq!(s.apply_term(Term::var("x")), Term::var("y"));
        assert_eq!(s.apply_term_deep(Term::var("x")), Term::constant_int(7));
    }

    #[test]
    fn deep_application_survives_cycles() {
        let mut s = Substitution::new();
        s.set(v("x"), Term::var("y"));
        s.set(v("y"), Term::var("x"));
        // Must terminate; either variable is acceptable.
        let out = s.apply_term_deep(Term::var("x"));
        assert!(out == Term::var("x") || out == Term::var("y"));
    }

    #[test]
    fn composition() {
        let s1 = Substitution::from_pairs(vec![(v("x"), Term::var("y"))]).unwrap();
        let s2 = Substitution::from_pairs(vec![(v("y"), Term::constant_int(3))]).unwrap();
        let s = s1.then(&s2);
        assert_eq!(s.apply_term(Term::var("x")), Term::constant_int(3));
        assert_eq!(s.apply_term(Term::var("y")), Term::constant_int(3));
    }

    #[test]
    fn from_pairs_detects_conflicts() {
        let conflicting = vec![(v("x"), Term::constant_int(1)), (v("x"), Term::constant_int(2))];
        assert!(Substitution::from_pairs(conflicting).is_none());
    }

    #[test]
    fn debug_rendering_is_sorted() {
        let mut s = Substitution::new();
        s.set(v("b"), Term::constant_int(2));
        s.set(v("a"), Term::constant_int(1));
        assert_eq!(format!("{s:?}"), "{a ↦ 1, b ↦ 2}");
    }
}
