//! Growable atom-index bitsets.
//!
//! The backchase enumerates subqueries of the universal plan as sets of
//! indices into a fixed candidate atom *pool*. Historically these sets were
//! `u128` masks, which silently capped the enumerable pool at 128 atoms and
//! forced a greedy fallback beyond it. [`AtomSet`] lifts that ceiling: a
//! word-array bitset with O(words) subset/union tests and ascending-index
//! iteration, usable as a hash-map key (canonical representation — no
//! trailing zero words — so `Eq`/`Hash` are structural).

use std::fmt;

const WORD_BITS: usize = 64;

/// A set of atom indices, stored as a growable bitset.
///
/// Invariant: `words` never ends in a zero word (canonical form), so derived
/// `PartialEq`/`Eq`/`Hash` compare set contents regardless of how the set was
/// built up.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AtomSet {
    words: Vec<u64>,
}

impl AtomSet {
    /// The empty set.
    pub fn new() -> AtomSet {
        AtomSet { words: Vec::new() }
    }

    /// The singleton set `{i}`.
    pub fn singleton(i: usize) -> AtomSet {
        let mut s = AtomSet::new();
        s.insert(i);
        s
    }

    /// Build a set from indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> AtomSet {
        let mut s = AtomSet::new();
        for i in indices {
            s.insert(i);
        }
        s
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Insert index `i`. Returns `true` if it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Remove index `i`. Returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.trim();
        present
    }

    /// Is index `i` in the set?
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words.get(w).map(|word| word & (1 << b) != 0).unwrap_or(false)
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Is `self ⊆ other`? O(words).
    pub fn is_subset_of(&self, other: &AtomSet) -> bool {
        if self.words.len() > other.words.len() {
            // Canonical form: a longer word array has a set bit beyond
            // `other`'s highest word.
            return false;
        }
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// The union `self ∪ other`. O(words).
    pub fn union(&self, other: &AtomSet) -> AtomSet {
        let (long, short) =
            if self.words.len() >= other.words.len() { (self, other) } else { (other, self) };
        let mut words = long.words.clone();
        for (w, s) in words.iter_mut().zip(&short.words) {
            *w |= s;
        }
        AtomSet { words }
    }

    /// The intersection `self ∩ other`. O(words).
    pub fn intersection(&self, other: &AtomSet) -> AtomSet {
        let mut words: Vec<u64> = self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        AtomSet { words }
    }

    /// `self` with `i` added (functional insert).
    pub fn with(&self, i: usize) -> AtomSet {
        let mut s = self.clone();
        s.insert(i);
        s
    }

    /// `self` with `i` removed (functional remove).
    pub fn without(&self, i: usize) -> AtomSet {
        let mut s = self.clone();
        s.remove(i);
        s
    }

    /// Iterate the indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * WORD_BITS + b)
            })
        })
    }

    /// The set as a `u128` mask, when every index fits (used by tests that
    /// cross-check against the legacy representation).
    pub fn as_u128(&self) -> Option<u128> {
        if self.words.len() > 2 {
            return None;
        }
        let lo = self.words.first().copied().unwrap_or(0) as u128;
        let hi = self.words.get(1).copied().unwrap_or(0) as u128;
        Some(lo | (hi << 64))
    }

    /// Build the set from a `u128` mask.
    pub fn from_u128(mask: u128) -> AtomSet {
        let mut s = AtomSet { words: vec![mask as u64, (mask >> 64) as u64] };
        s.trim();
        s
    }
}

impl fmt::Debug for AtomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for AtomSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> AtomSet {
        AtomSet::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (xorshift), so the u128
    /// cross-checks cover many masks without a rand dependency.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn mask128(&mut self) -> u128 {
            (self.next() as u128) | ((self.next() as u128) << 64)
        }
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = AtomSet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(200));
        assert!(s.contains(3) && s.contains(200) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(200));
        assert!(!s.remove(200));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(200));
    }

    /// Canonical form: removing a high bit must restore structural equality
    /// with a set that never had it (hash-map key contract).
    #[test]
    fn canonical_form_after_removal() {
        let mut a = AtomSet::from_indices([1, 700]);
        a.remove(700);
        let b = AtomSet::singleton(1);
        assert_eq!(a, b);
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn subset_and_union_across_word_boundaries() {
        let small = AtomSet::from_indices([0, 63]);
        let large = AtomSet::from_indices([0, 63, 64, 129]);
        assert!(small.is_subset_of(&large));
        assert!(!large.is_subset_of(&small));
        assert_eq!(small.union(&large), large);
        assert_eq!(large.intersection(&small), small);
        // Canonical-form subset: a longer array never subsets a shorter one.
        assert!(!AtomSet::singleton(500).is_subset_of(&AtomSet::singleton(1)));
    }

    #[test]
    fn iter_is_ascending() {
        let s = AtomSet::from_indices([129, 5, 64, 0, 63]);
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 129]);
    }

    /// Roundtrip and operation agreement with the legacy `u128`
    /// representation on pools of ≤ 128 atoms.
    #[test]
    fn agrees_with_u128_semantics_below_128_atoms() {
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        for _ in 0..200 {
            let a128 = rng.mask128();
            let b128 = rng.mask128();
            let a = AtomSet::from_u128(a128);
            let b = AtomSet::from_u128(b128);
            assert_eq!(a.as_u128(), Some(a128));
            assert_eq!(a.len() as u32, a128.count_ones());
            assert_eq!(a.is_subset_of(&b), a128 & !b128 == 0);
            assert_eq!(a.union(&b).as_u128(), Some(a128 | b128));
            assert_eq!(a.intersection(&b).as_u128(), Some(a128 & b128));
            let idx = (rng.next() % 128) as usize;
            assert_eq!(a.contains(idx), a128 & (1 << idx) != 0);
            assert_eq!(a.with(idx).as_u128(), Some(a128 | (1 << idx)));
            assert_eq!(a.without(idx).as_u128(), Some(a128 & !(1 << idx)));
            let indices: Vec<usize> = a.iter().collect();
            let expect: Vec<usize> = (0..128).filter(|i| a128 & (1 << i) != 0).collect();
            assert_eq!(indices, expect);
        }
    }

    /// The whole point of the type: indices past 128 work.
    #[test]
    fn grows_past_128_atoms() {
        let s: AtomSet = (0..300).filter(|i| i % 3 == 0).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(297) && !s.contains(298));
        assert!(s.as_u128().is_none());
        let full: AtomSet = (0..300).collect();
        assert!(s.is_subset_of(&full));
        assert_eq!(s.union(&full), full);
    }
}
