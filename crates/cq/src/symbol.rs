//! Global string interner.
//!
//! Queries, constraints and the symbolic chase instances manipulate very large
//! numbers of predicate names, tag names and string constants. Interning them
//! as `u32` [`Symbol`]s makes atom comparison, hashing and homomorphism search
//! cheap. The interner is global and append-only, guarded by an `RwLock`; the
//! read path (resolving a symbol back to a string) is only used for display
//! and debugging.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, hash and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner { names: Vec::new(), map: HashMap::new() }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(s.to_string());
        self.map.insert(s.to_string(), id);
        id
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

/// Intern `s`, returning its [`Symbol`].
pub fn symbol(s: &str) -> Symbol {
    // Fast path: check under a read lock first (most symbols repeat).
    {
        let guard = interner().read().expect("symbol interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
    }
    let mut guard = interner().write().expect("symbol interner poisoned");
    Symbol(guard.intern(s))
}

/// Resolve a [`Symbol`] back to its string.
pub fn symbol_name(sym: Symbol) -> String {
    let guard = interner().read().expect("symbol interner poisoned");
    guard.names.get(sym.0 as usize).cloned().unwrap_or_else(|| format!("<sym:{}>", sym.0))
}

impl Symbol {
    /// Intern a string (convenience constructor).
    pub fn intern(s: &str) -> Symbol {
        symbol(s)
    }

    /// The interned string.
    pub fn as_str(&self) -> String {
        symbol_name(*self)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", symbol_name(*self))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", symbol_name(*self))
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        symbol(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        symbol(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = symbol("child");
        let b = symbol("child");
        assert_eq!(a, b);
        assert_eq!(symbol_name(a), "child");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = symbol("alpha-test-symbol");
        let b = symbol("beta-test-symbol");
        assert_ne!(a, b);
    }

    #[test]
    fn display_and_debug_show_name() {
        let a = symbol("desc");
        assert_eq!(format!("{a}"), "desc");
        assert_eq!(format!("{a:?}"), "desc");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "tag".into();
        let b: Symbol = String::from("tag").into();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "tag");
    }

    #[test]
    fn unknown_symbol_renders_placeholder() {
        let bogus = Symbol(u32::MAX);
        assert!(symbol_name(bogus).starts_with("<sym:"));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for j in 0..100 {
                        ids.push(symbol(&format!("conc-{}", (i * j) % 50)));
                    }
                    ids
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every name maps to exactly one id.
        for j in 0..50 {
            let s = format!("conc-{j}");
            assert_eq!(symbol(&s), symbol(&s));
        }
    }
}
