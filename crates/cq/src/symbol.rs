//! Global string interner.
//!
//! Queries, constraints and the symbolic chase instances manipulate very large
//! numbers of predicate names, tag names and string constants. Interning them
//! as `u32` [`Symbol`]s makes atom comparison, hashing and homomorphism search
//! cheap. The interner is global and append-only, guarded by an `RwLock`;
//! interned strings are leaked (`Box::leak`) so that resolving a symbol back
//! to its string ([`symbol_name`]) returns a `&'static str` without
//! allocating — the resolve path sits on hot loops (per-atom cost estimation,
//! navigation classification in the backchase reachability graph) where a
//! fresh `String` per call showed up in profiles. The leak is bounded by the
//! number of distinct strings ever interned, which the interner retains for
//! the lifetime of the process anyway.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, hash and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

struct Interner {
    names: Vec<&'static str>,
    map: HashMap<&'static str, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner { names: Vec::new(), map: HashMap::new() }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = self.names.len() as u32;
        self.names.push(leaked);
        self.map.insert(leaked, id);
        id
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

/// Intern `s`, returning its [`Symbol`].
pub fn symbol(s: &str) -> Symbol {
    // Fast path: check under a read lock first (most symbols repeat).
    {
        let guard = interner().read().expect("symbol interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
    }
    let mut guard = interner().write().expect("symbol interner poisoned");
    Symbol(guard.intern(s))
}

/// Resolve a [`Symbol`] back to its string. Allocation-free: the interner
/// leaks each distinct string once, so the resolved name is `'static`.
pub fn symbol_name(sym: Symbol) -> &'static str {
    let guard = interner().read().expect("symbol interner poisoned");
    guard.names.get(sym.0 as usize).copied().unwrap_or("<sym:invalid>")
}

impl Symbol {
    /// Intern a string (convenience constructor).
    pub fn intern(s: &str) -> Symbol {
        symbol(s)
    }

    /// The interned string.
    pub fn as_str(&self) -> &'static str {
        symbol_name(*self)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", symbol_name(*self))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", symbol_name(*self))
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        symbol(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        symbol(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = symbol("child");
        let b = symbol("child");
        assert_eq!(a, b);
        assert_eq!(symbol_name(a), "child");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = symbol("alpha-test-symbol");
        let b = symbol("beta-test-symbol");
        assert_ne!(a, b);
    }

    #[test]
    fn display_and_debug_show_name() {
        let a = symbol("desc");
        assert_eq!(format!("{a}"), "desc");
        assert_eq!(format!("{a:?}"), "desc");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "tag".into();
        let b: Symbol = String::from("tag").into();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "tag");
    }

    #[test]
    fn unknown_symbol_renders_placeholder() {
        let bogus = Symbol(u32::MAX);
        assert!(symbol_name(bogus).starts_with("<sym:"));
    }

    /// The resolve path must not allocate: two resolves of the same symbol
    /// return the same `&'static str` (pointer-identical).
    #[test]
    fn resolution_returns_stable_static_str() {
        let a = symbol("stable-name-test");
        let s1 = symbol_name(a);
        let s2 = a.as_str();
        assert!(std::ptr::eq(s1, s2));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for j in 0..100 {
                        ids.push(symbol(&format!("conc-{}", (i * j) % 50)));
                    }
                    ids
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every name maps to exactly one id.
        for j in 0..50 {
            let s = format!("conc-{j}");
            assert_eq!(symbol(&s), symbol(&s));
        }
    }
}
