//! Pretty-printing helpers: Datalog-style rendering of queries and
//! dependencies, used by the examples, the experiment binaries and error
//! messages.

use crate::ded::Ded;
use crate::query::{ConjunctiveQuery, UnionQuery};

/// Render a conjunctive query in Datalog style over multiple lines.
pub fn render_query(q: &ConjunctiveQuery) -> String {
    let head: Vec<String> = q.head.iter().map(|t| format!("{t}")).collect();
    let mut out = format!("{}({}) :-\n", q.name, head.join(", "));
    for (i, a) in q.body.iter().enumerate() {
        let sep = if i + 1 < q.body.len() || !q.inequalities.is_empty() { "," } else { "" };
        out.push_str(&format!("    {a}{sep}\n"));
    }
    for (i, (a, b)) in q.inequalities.iter().enumerate() {
        let sep = if i + 1 < q.inequalities.len() { "," } else { "" };
        out.push_str(&format!("    {a} != {b}{sep}\n"));
    }
    out
}

/// Render a union query.
pub fn render_union(u: &UnionQuery) -> String {
    let mut out = String::new();
    for (i, q) in u.disjuncts.iter().enumerate() {
        if i > 0 {
            out.push_str("UNION\n");
        }
        out.push_str(&render_query(q));
    }
    out
}

/// Render a set of dependencies, one per line.
pub fn render_deds(deds: &[Ded]) -> String {
    let mut out = String::new();
    for d in deds {
        out.push_str(&format!("{d}\n"));
    }
    out
}

/// A compact one-line summary of a query, used in experiment output:
/// name, atom count, join count, head arity.
pub fn summarize_query(q: &ConjunctiveQuery) -> String {
    format!("{}: {} atoms, {} joins, arity {}", q.name, q.body.len(), q.join_count(), q.head.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::builders::*;
    use crate::atom::Atom;
    use crate::ded::Ded;
    use crate::term::Term;

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn render_query_is_multiline_datalog() {
        let q = ConjunctiveQuery::new("Bo")
            .with_head(vec![t("a")])
            .with_body(vec![root(t("r")), desc(t("r"), t("d"))])
            .with_inequality(t("a"), Term::constant_str("x"));
        let s = render_query(&q);
        assert!(s.starts_with("Bo(a) :-"));
        assert!(s.contains("root(r),"));
        assert!(s.contains("desc(r, d),"));
        assert!(s.contains("a != \"x\""));
    }

    #[test]
    fn render_union_includes_separator() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("R", vec![t("x")])]);
        let u = UnionQuery::new("U", vec![q.clone(), q]);
        let s = render_union(&u);
        assert_eq!(s.matches("UNION").count(), 1);
    }

    #[test]
    fn render_deds_one_per_line() {
        let d1 = Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]);
        let d2 = Ded::denial("no_self", vec![child(t("x"), t("x"))]);
        let s = render_deds(&[d1, d2]);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("[base]"));
        assert!(s.contains("⊥"));
    }

    #[test]
    fn summarize_counts() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x")]).with_body(vec![
            root(t("x")),
            child(t("x"), t("y")),
            tag(t("y"), "a"),
        ]);
        assert_eq!(summarize_query(&q), "Q: 3 atoms, 2 joins, arity 1");
    }
}
