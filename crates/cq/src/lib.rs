//! # mars-cq — relational logic core for the MARS system
//!
//! This crate implements the relational framework that the MARS system
//! (Deutsch & Tannen, VLDB 2003) compiles XML publishing problems into:
//!
//! * interned [`Symbol`]s, [`Term`]s, [`Atom`]s and [`ConjunctiveQuery`]s
//!   (with inequalities and unions), plus [`AtomSet`] — the growable
//!   atom-index bitset the backchase enumerates subqueries with,
//! * [`Ded`]s — *disjunctive embedded dependencies* — the constraint language
//!   used for relational integrity constraints, compiled XML integrity
//!   constraints (XICs) and compiled XQuery views,
//! * homomorphism search between atom sets ([`homomorphism`]),
//! * the **naive chase** ([`chase`]) — a direct, per-homomorphism
//!   implementation corresponding to the original C&B prototype that the
//!   paper uses as its baseline ("old implementation"),
//! * containment, equivalence and tableau minimization under constraints
//!   ([`containment`]).
//!
//! The scalable join-tree based chase of Section 3.1 of the paper lives in
//! the `mars-chase` crate; it shares all data types defined here.

pub mod atom;
pub mod atomset;
pub mod chase;
pub mod containment;
pub mod ded;
pub mod homomorphism;
pub mod pretty;
pub mod query;
pub mod substitution;
pub mod symbol;
pub mod term;

pub use atom::{Atom, Predicate};
pub use atomset::AtomSet;
pub use chase::{naive_chase, ChaseBudget, ChaseOutcome, ChaseTree};
pub use containment::{
    contained_in, equivalent, minimize, ContainmentOptions, ContainmentTarget, DeltaTarget,
};
pub use ded::{Conjunct, Ded};
pub use homomorphism::{
    extend_to_conclusion, find_all_homomorphisms, find_homomorphism, find_homomorphism_using_fresh,
    AtomIndex,
};
pub use query::{ConjunctiveQuery, UnionQuery};
pub use substitution::Substitution;
pub use symbol::{symbol, symbol_name, Symbol};
pub use term::{Constant, Term, VarGen, Variable};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_api_smoke() {
        let p = Predicate::new("R");
        let x = Variable::named("x");
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![Term::Var(x)])
            .with_body(vec![Atom::new(p, vec![Term::Var(x), Term::constant_str("a")])]);
        assert_eq!(q.body.len(), 1);
        assert_eq!(q.head.len(), 1);
    }
}
