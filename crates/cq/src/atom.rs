//! Relational atoms and predicates.

use crate::symbol::{symbol, Symbol};
use crate::term::{Term, Variable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A predicate (relation) name, e.g. `child`, `desc`, `patient`, `V3`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate(pub u32);

impl Predicate {
    /// Intern a predicate name.
    pub fn new(name: &str) -> Predicate {
        Predicate(symbol(name).0)
    }

    /// The predicate name. Allocation-free (interned strings are `'static`).
    pub fn name(&self) -> &'static str {
        Symbol(self.0).as_str()
    }

    /// The underlying interned symbol.
    pub fn symbol(&self) -> Symbol {
        Symbol(self.0)
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Predicate {
    fn from(s: &str) -> Predicate {
        Predicate::new(s)
    }
}

/// A relational atom `P(t1, ..., tn)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Atom {
    pub predicate: Predicate,
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(predicate: Predicate, args: Vec<Term>) -> Atom {
        Atom { predicate, args }
    }

    /// Build an atom from a predicate name and terms.
    pub fn named(predicate: &str, args: Vec<Term>) -> Atom {
        Atom { predicate: Predicate::new(predicate), args }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// All variables appearing in the atom, in argument order (may repeat).
    pub fn variables(&self) -> impl Iterator<Item = Variable> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Does the atom mention the variable?
    pub fn mentions(&self, v: Variable) -> bool {
        self.args.iter().any(|t| t.as_var() == Some(v))
    }

    /// True if no argument is a variable.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_const)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convenience macro-free builders for the GReX relations used pervasively in
/// tests and in the `mars-grex` crate.
pub mod builders {
    use super::*;

    /// `root(x)`
    pub fn root(x: Term) -> Atom {
        Atom::named("root", vec![x])
    }
    /// `el(x)`
    pub fn el(x: Term) -> Atom {
        Atom::named("el", vec![x])
    }
    /// `child(x, y)`
    pub fn child(x: Term, y: Term) -> Atom {
        Atom::named("child", vec![x, y])
    }
    /// `desc(x, y)`
    pub fn desc(x: Term, y: Term) -> Atom {
        Atom::named("desc", vec![x, y])
    }
    /// `tag(x, "t")`
    pub fn tag(x: Term, t: &str) -> Atom {
        Atom::named("tag", vec![x, Term::constant_str(t)])
    }
    /// `text(x, v)`
    pub fn text(x: Term, v: Term) -> Atom {
        Atom::named("text", vec![x, v])
    }
    /// `attr(x, "name", v)`
    pub fn attr(x: Term, name: &str, v: Term) -> Atom {
        Atom::named("attr", vec![x, Term::constant_str(name), v])
    }
    /// `id(x, i)`
    pub fn id(x: Term, i: Term) -> Atom {
        Atom::named("id", vec![x, i])
    }
}

#[cfg(test)]
mod tests {
    use super::builders::*;
    use super::*;
    use crate::term::Variable;

    #[test]
    fn predicate_interning() {
        assert_eq!(Predicate::new("child"), Predicate::new("child"));
        assert_ne!(Predicate::new("child"), Predicate::new("desc"));
        assert_eq!(Predicate::new("child").name(), "child");
    }

    #[test]
    fn atom_basics() {
        let a = Atom::named("R", vec![Term::var("x"), Term::constant_str("c")]);
        assert_eq!(a.arity(), 2);
        assert!(a.mentions(Variable::named("x")));
        assert!(!a.mentions(Variable::named("y")));
        assert!(!a.is_ground());
        let g = Atom::named("R", vec![Term::constant_int(1), Term::constant_str("c")]);
        assert!(g.is_ground());
    }

    #[test]
    fn atom_variables_in_order() {
        let a = Atom::named("S", vec![Term::var("x"), Term::constant_int(2), Term::var("y")]);
        let vars: Vec<_> = a.variables().collect();
        assert_eq!(vars, vec![Variable::named("x"), Variable::named("y")]);
    }

    #[test]
    fn atom_display() {
        let a = child(Term::var("p"), Term::var("c"));
        assert_eq!(format!("{a}"), "child(p, c)");
        let t = tag(Term::var("c"), "author");
        assert_eq!(format!("{t}"), "tag(c, \"author\")");
    }

    #[test]
    fn grex_builders() {
        assert_eq!(root(Term::var("r")).predicate.name(), "root");
        assert_eq!(el(Term::var("r")).arity(), 1);
        assert_eq!(desc(Term::var("a"), Term::var("b")).arity(), 2);
        assert_eq!(attr(Term::var("x"), "id", Term::var("v")).arity(), 3);
        assert_eq!(id(Term::var("x"), Term::var("i")).predicate.name(), "id");
        assert_eq!(text(Term::var("x"), Term::var("v")).predicate.name(), "text");
    }

    #[test]
    fn atoms_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(child(Term::var("x"), Term::var("y")));
        set.insert(child(Term::var("x"), Term::var("y")));
        assert_eq!(set.len(), 1);
    }
}
