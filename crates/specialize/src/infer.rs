//! Inference of specialization mappings from document shapes.
//!
//! "A more desirable alternative is to infer them automatically, by detecting
//! the parts of the XML document which are highly structured, and associating
//! a relation to them" (Section 5.1). This is hybrid inlining: an element
//! type that repeats under its parent becomes an entity relation, and every
//! descendant leaf reachable through single-occurrence elements is inlined as
//! a column.

use crate::mapping::{FieldMapping, SpecializationMapping};
use mars_xml::{Multiplicity, Path, ShapeElement, Step, XmlShape};

/// Collect the inlineable leaf fields of an entity shape: leaves reachable via
/// chains of at-most-once children.
fn collect_fields(shape: &ShapeElement, prefix: Vec<Step>, out: &mut Vec<FieldMapping>) {
    for (tag, (child, mult)) in &shape.children {
        if !mult.is_single() {
            continue; // repeated children become their own entities, not columns
        }
        let mut steps = prefix.clone();
        steps.push(Step::Child(tag.clone()));
        if child.is_leaf() && child.has_text {
            let mut value_steps = steps.clone();
            value_steps.push(Step::Text);
            out.push(FieldMapping {
                column: column_name(&steps),
                path: Path::relative(value_steps),
            });
        } else {
            collect_fields(child, steps, out);
        }
    }
}

fn column_name(steps: &[Step]) -> String {
    steps
        .iter()
        .filter_map(|s| match s {
            Step::Child(n) => Some(n.clone()),
            _ => None,
        })
        .collect::<Vec<_>>()
        .join("_")
}

fn walk(
    document: &str,
    shape: &ShapeElement,
    parent_mult: Multiplicity,
    out: &mut Vec<SpecializationMapping>,
) {
    // An element type becomes an entity if it repeats (like `author` under
    // `authors`) — the hallmark of a relational dump — and has at least one
    // inlineable field.
    if parent_mult == Multiplicity::Many {
        let mut fields = Vec::new();
        collect_fields(shape, Vec::new(), &mut fields);
        if !fields.is_empty() {
            out.push(SpecializationMapping {
                relation: capitalize(&shape.tag),
                document: document.to_string(),
                entity_path: Path::absolute(vec![Step::Descendant(shape.tag.clone())]),
                fields,
                // Inlined fields are reached through at-most-once child
                // chains (see `collect_fields`), so they are single-valued.
                single_valued: true,
            });
        }
    }
    for (child, mult) in shape.children.values() {
        walk(document, child, *mult, out);
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Infer specialization mappings from a document shape (hybrid inlining).
/// Every inferred mapping satisfies the Proposition 5.1 restriction by
/// construction, so specialization runs in PTIME (Corollary 5.2).
pub fn infer_specializations(shape: &XmlShape) -> Vec<SpecializationMapping> {
    let mut out = Vec::new();
    walk(&shape.document, &shape.root, Multiplicity::One, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_document;

    #[test]
    fn figure_6_author_entities_are_inferred() {
        let doc = parse_document(
            "pubs.xml",
            r#"<pubs>
                 <author><name><first>A</first><last>D</last></name>
                   <address><street>s</street><city>SD</city><state>CA</state><zip>1</zip></address></author>
                 <author><name><first>V</first><last>T</last></name>
                   <address><street>t</street><city>PH</city><state>PA</state><zip>2</zip></address></author>
                 <publisher><name2>X</name2></publisher>
               </pubs>"#,
        )
        .unwrap();
        let shape = mars_xml::XmlShape::infer(&doc).unwrap();
        let mappings = infer_specializations(&shape);
        let author = mappings.iter().find(|m| m.relation == "Author").expect("Author inferred");
        assert_eq!(author.fields.len(), 6);
        assert!(author.is_restricted());
        assert_eq!(author.entity_path.to_string(), "//author");
        let cols: Vec<&str> = author.fields.iter().map(|f| f.column.as_str()).collect();
        assert!(cols.contains(&"name_last"));
        assert!(cols.contains(&"address_city"));
        // publisher appears only once ⇒ not an entity.
        assert!(!mappings.iter().any(|m| m.relation == "Publisher"));
    }

    #[test]
    fn repeated_subelements_are_not_inlined_as_columns() {
        let doc = parse_document(
            "catalog.xml",
            r#"<catalog>
                 <drug><name>a</name><note>n1</note><note>n2</note></drug>
                 <drug><name>b</name><note>n3</note></drug>
               </catalog>"#,
        )
        .unwrap();
        let shape = mars_xml::XmlShape::infer(&doc).unwrap();
        let mappings = infer_specializations(&shape);
        let drug = mappings.iter().find(|m| m.relation == "Drug").unwrap();
        let cols: Vec<&str> = drug.fields.iter().map(|f| f.column.as_str()).collect();
        assert_eq!(cols, vec!["name"]);
    }

    #[test]
    fn documents_without_regularity_yield_no_mappings() {
        let doc = parse_document("one.xml", "<root><only><thing>x</thing></only></root>").unwrap();
        let shape = mars_xml::XmlShape::infer(&doc).unwrap();
        assert!(infer_specializations(&shape).is_empty());
    }
}
