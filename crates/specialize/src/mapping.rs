//! Specialization mappings: tree pattern → virtual relation.

use mars_xml::Path;

/// One inlined field of a specialization relation: a column name and the
/// relative path (from the entity element) whose value fills it.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldMapping {
    /// Column name in the specialization relation.
    pub column: String,
    /// Relative path from the entity element to the field value (must end in
    /// `text()` or an attribute step — Proposition 5.1's restriction).
    pub path: Path,
}

/// A specialization mapping in the style of Figure 6/7: instances of an
/// element type reached by `entity_path` become tuples
/// `Relation(id, pid, field_1, …, field_n)`.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecializationMapping {
    /// Name of the virtual relation (e.g. `Author`).
    pub relation: String,
    /// Document the entities live in.
    pub document: String,
    /// Absolute path reaching the entity elements (e.g. `//author`).
    pub entity_path: Path,
    /// Inlined fields.
    pub fields: Vec<FieldMapping>,
}

impl SpecializationMapping {
    /// Build a mapping; field paths are given as `(column, relative path)`
    /// strings.
    pub fn new(
        relation: &str,
        document: &str,
        entity_path: &str,
        fields: &[(&str, &str)],
    ) -> SpecializationMapping {
        SpecializationMapping {
            relation: relation.to_string(),
            document: document.to_string(),
            entity_path: mars_xml::parse_path(entity_path).expect("valid entity path"),
            fields: fields
                .iter()
                .map(|(c, p)| FieldMapping {
                    column: c.to_string(),
                    path: mars_xml::parse_path(p).expect("valid field path"),
                })
                .collect(),
        }
    }

    /// The arity of the specialization relation: `id` + one column per field.
    pub fn arity(&self) -> usize {
        1 + self.fields.len()
    }

    /// Check the restriction of Proposition 5.1: every field path is a chain
    /// of child steps ending in a value step (`text()` or attribute), so that
    /// specializing a query never requires chasing — plain pattern matching
    /// suffices and runs in PTIME.
    pub fn is_restricted(&self) -> bool {
        self.fields.iter().all(|f| {
            f.path.returns_value()
                && f.path.steps.iter().all(|s| {
                    matches!(
                        s,
                        mars_xml::Step::Child(_)
                            | mars_xml::Step::Text
                            | mars_xml::Step::Attribute(_)
                    )
                })
        })
    }

    /// Column index of a field reached by the given relative path, if any.
    pub fn column_for_path(&self, path: &Path) -> Option<usize> {
        self.fields.iter().position(|f| &f.path == path).map(|i| i + 1)
    }
}

/// The Figure 6 `Author` mapping, used in tests and documentation.
pub fn author_mapping() -> SpecializationMapping {
    SpecializationMapping::new(
        "Author",
        "pubs.xml",
        "//author",
        &[
            ("first", "./name/first/text()"),
            ("last", "./name/last/text()"),
            ("street", "./address/street/text()"),
            ("city", "./address/city/text()"),
            ("state", "./address/state/text()"),
            ("zip", "./address/zip/text()"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_path;

    #[test]
    fn author_mapping_matches_figure_6() {
        let m = author_mapping();
        assert_eq!(m.relation, "Author");
        assert_eq!(m.arity(), 7); // id + 6 fields
        assert!(m.is_restricted());
        assert_eq!(m.column_for_path(&parse_path("./address/city/text()").unwrap()), Some(4));
        assert_eq!(m.column_for_path(&parse_path("./phone/text()").unwrap()), None);
    }

    #[test]
    fn unrestricted_mappings_are_detected() {
        let m = SpecializationMapping::new(
            "Weird",
            "d.xml",
            "//entity",
            &[("deep", ".//anywhere/text()"), ("node", "./sub")],
        );
        assert!(!m.is_restricted());
    }
}
