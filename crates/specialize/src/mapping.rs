//! Specialization mappings: tree pattern → virtual relation.

use mars_xml::Path;

/// One inlined field of a specialization relation: a column name and the
/// relative path (from the entity element) whose value fills it.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldMapping {
    /// Column name in the specialization relation.
    pub column: String,
    /// Relative path from the entity element to the field value (must end in
    /// `text()` or an attribute step — Proposition 5.1's restriction).
    pub path: Path,
}

/// A specialization mapping in the style of Figure 6/7: instances of an
/// element type reached by `entity_path` become tuples
/// `Relation(id, pid, field_1, …, field_n)`.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecializationMapping {
    /// Name of the virtual relation (e.g. `Author`).
    pub relation: String,
    /// Document the entities live in.
    pub document: String,
    /// Absolute path reaching the entity elements (e.g. `//author`).
    pub entity_path: Path,
    /// Inlined fields.
    pub fields: Vec<FieldMapping>,
    /// Declares every field path single-valued per entity (each entity
    /// element has at most one value under each field path — the common case
    /// for DTD-style `<!ELEMENT R (K, A1, …)>` schemas). When set, the
    /// compiled correspondence carries the functional dependency
    /// `Rel(id, f…) ∧ Rel(id, g…) → f = g`, without which a chase that
    /// re-creates an entity from several sources (e.g. two materialized
    /// views over the same hub) cannot unify the duplicated field values and
    /// derives a cross-product of partially-equal tuples.
    pub single_valued: bool,
}

impl SpecializationMapping {
    /// Build a mapping; field paths are given as `(column, relative path)`
    /// strings.
    pub fn new(
        relation: &str,
        document: &str,
        entity_path: &str,
        fields: &[(&str, &str)],
    ) -> SpecializationMapping {
        SpecializationMapping {
            relation: relation.to_string(),
            document: document.to_string(),
            entity_path: mars_xml::parse_path(entity_path).expect("valid entity path"),
            fields: fields
                .iter()
                .map(|(c, p)| FieldMapping {
                    column: c.to_string(),
                    path: mars_xml::parse_path(p).expect("valid field path"),
                })
                .collect(),
            single_valued: false,
        }
    }

    /// Builder: declare every field single-valued per entity (see
    /// [`SpecializationMapping::single_valued`]).
    pub fn with_single_valued_fields(mut self) -> SpecializationMapping {
        self.single_valued = true;
        self
    }

    /// The arity of the specialization relation: `id` + one column per field.
    pub fn arity(&self) -> usize {
        1 + self.fields.len()
    }

    /// Check the restriction of Proposition 5.1: every field path is a chain
    /// of child steps ending in a value step (`text()` or attribute), so that
    /// specializing a query never requires chasing — plain pattern matching
    /// suffices and runs in PTIME.
    pub fn is_restricted(&self) -> bool {
        self.fields.iter().all(|f| {
            f.path.returns_value()
                && f.path.steps.iter().all(|s| {
                    matches!(
                        s,
                        mars_xml::Step::Child(_)
                            | mars_xml::Step::Text
                            | mars_xml::Step::Attribute(_)
                    )
                })
        })
    }

    /// Column index of a field reached by the given relative path, if any.
    pub fn column_for_path(&self, path: &Path) -> Option<usize> {
        self.fields.iter().position(|f| &f.path == path).map(|i| i + 1)
    }

    /// The defining XBind body of the specialization relation:
    /// `Relation(id, f_0, …, f_n) :- entity_path ⇒ id, field paths ⇒ f_i`.
    /// Used both to compile the definitional constraints linking the relation
    /// to the navigation it abbreviates and to materialize the relation for
    /// execution.
    pub fn definition_body(&self) -> mars_xquery::XBindQuery {
        let mut body = mars_xquery::XBindQuery::new(&format!("{}_def", self.relation)).with_atom(
            mars_xquery::XBindAtom::AbsolutePath {
                document: self.document.clone(),
                path: self.entity_path.clone(),
                var: "id".to_string(),
            },
        );
        let mut head: Vec<String> = vec!["id".to_string()];
        for (i, f) in self.fields.iter().enumerate() {
            let var = format!("f{i}");
            body = body.with_atom(mars_xquery::XBindAtom::RelativePath {
                path: f.path.clone(),
                source: "id".to_string(),
                var: var.clone(),
            });
            head.push(var);
        }
        body.head = head;
        body
    }

    /// The specialization relation as a relational view over its document,
    /// ready for compilation or materialization.
    pub fn definition_view(&self) -> mars_grex::ViewDef {
        mars_grex::ViewDef::relational(&self.relation, self.definition_body())
    }

    /// The functional dependency `Rel(id, f…) ∧ Rel(id, g…) → f = g` for
    /// single-valued mappings, `None` otherwise.
    pub fn functional_dependency(&self) -> Option<mars_cq::Ded> {
        if !self.single_valued || self.fields.is_empty() {
            return None;
        }
        let id = mars_cq::Term::var("id");
        let fs: Vec<mars_cq::Term> =
            (0..self.fields.len()).map(|i| mars_cq::Term::var(&format!("f{i}"))).collect();
        let gs: Vec<mars_cq::Term> =
            (0..self.fields.len()).map(|i| mars_cq::Term::var(&format!("g{i}"))).collect();
        let mut left = vec![id];
        left.extend(fs.iter().copied());
        let mut right = vec![id];
        right.extend(gs.iter().copied());
        Some(mars_cq::Ded::disjunctive(
            &format!("{}_fd", self.relation),
            vec![
                mars_cq::Atom::named(&self.relation, left),
                mars_cq::Atom::named(&self.relation, right),
            ],
            vec![mars_cq::ded::Conjunct::equalities(
                fs.iter().copied().zip(gs.iter().copied()).collect(),
            )],
        ))
    }
}

/// The Figure 6 `Author` mapping, used in tests and documentation.
pub fn author_mapping() -> SpecializationMapping {
    SpecializationMapping::new(
        "Author",
        "pubs.xml",
        "//author",
        &[
            ("first", "./name/first/text()"),
            ("last", "./name/last/text()"),
            ("street", "./address/street/text()"),
            ("city", "./address/city/text()"),
            ("state", "./address/state/text()"),
            ("zip", "./address/zip/text()"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_xml::parse_path;

    #[test]
    fn author_mapping_matches_figure_6() {
        let m = author_mapping();
        assert_eq!(m.relation, "Author");
        assert_eq!(m.arity(), 7); // id + 6 fields
        assert!(m.is_restricted());
        assert_eq!(m.column_for_path(&parse_path("./address/city/text()").unwrap()), Some(4));
        assert_eq!(m.column_for_path(&parse_path("./phone/text()").unwrap()), None);
    }

    #[test]
    fn definition_body_reads_every_field() {
        let m = author_mapping();
        let body = m.definition_body();
        assert_eq!(body.head.len(), m.arity());
        assert_eq!(body.head[0], "id");
        assert_eq!(body.atoms.len(), 1 + m.fields.len());
        let view = m.definition_view();
        assert_eq!(view.name, "Author");
    }

    #[test]
    fn functional_dependency_requires_single_valued() {
        let m = author_mapping();
        assert!(m.functional_dependency().is_none(), "not declared single-valued");
        let m = m.with_single_valued_fields();
        let fd = m.functional_dependency().expect("single-valued mapping has an FD");
        assert_eq!(fd.premise.len(), 2);
        assert_eq!(fd.conclusions.len(), 1);
        assert_eq!(fd.conclusions[0].equalities.len(), m.fields.len());
        assert!(fd.conclusions[0].atoms.is_empty());
        // Both premise atoms share the id but differ in every field variable.
        assert_eq!(fd.premise[0].args[0], fd.premise[1].args[0]);
        for i in 1..=m.fields.len() {
            assert_ne!(fd.premise[0].args[i], fd.premise[1].args[i]);
        }
    }

    #[test]
    fn unrestricted_mappings_are_detected() {
        let m = SpecializationMapping::new(
            "Weird",
            "d.xml",
            "//entity",
            &[("deep", ".//anywhere/text()"), ("node", "./sub")],
        );
        assert!(!m.is_restricted());
    }
}
