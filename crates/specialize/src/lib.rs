//! # mars-specialize — schema specialization (Section 5)
//!
//! Schema specialization exploits regularity in the structure of XML
//! documents: a tree pattern that always looks the same (e.g. the `author`
//! entity of Figure 6) is modelled as a single tuple of a virtual relation
//! (`Author(id, pid, first, last, street, city, state, zip)`), so that the
//! relational queries and constraints produced by the GReX compilation have
//! far fewer atoms. Since chasing is NP-hard in the number of atoms, the
//! savings compound: a faster chase, a smaller universal plan, and a faster
//! backchase (Figure 8 shows the ratio growing exponentially with the star
//! size).
//!
//! In this reproduction specialization operates on the XBind level, exactly
//! following Figure 7's pipeline: the query (and every view body / XIC) is
//! rewritten to use the specialization relations *before* the GReX
//! compilation, and reformulations are post-processed back by re-expanding
//! the specialization relations. The mappings themselves are either written
//! by a domain expert ([`SpecializationMapping`]) or inferred from an
//! [`XmlShape`](mars_xml::XmlShape) by hybrid inlining
//! ([`infer_specializations`]), and they satisfy the restrictions of
//! Proposition 5.1 (each mapping is a single entity pattern with leaf
//! fields), which keeps the specialization step linear in the query size.

pub mod infer;
pub mod mapping;
pub mod rewrite;

pub use infer::infer_specializations;
pub use mapping::{FieldMapping, SpecializationMapping};
pub use rewrite::{specialize_query, specialize_view, specialize_xic};
