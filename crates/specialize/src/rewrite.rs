//! Specializing queries, views and XICs, and post-processing back.
//!
//! Specialization replaces a *group* of XBind atoms — the atom binding an
//! entity element plus the relative atoms reading its inlined fields — by a
//! single relational atom over the specialization relation, exactly as the
//! verbose constraint (12) of the paper turns into the one-atom constraint
//! (13). Navigation that does not match any mapping (e.g. the `publisher`
//! part of the Section 5.1 example) is left untouched.

use crate::mapping::SpecializationMapping;
use mars_grex::ViewDef;
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm, Xic, XicConjunct};

/// Specialize the atoms of one query body. Returns the rewritten atoms and
/// the number of atoms eliminated.
fn specialize_atoms(
    atoms: &[XBindAtom],
    mappings: &[SpecializationMapping],
) -> (Vec<XBindAtom>, usize) {
    let mut consumed = vec![false; atoms.len()];
    let mut out: Vec<XBindAtom> = Vec::new();
    let mut eliminated = 0usize;

    for (i, atom) in atoms.iter().enumerate() {
        if consumed[i] {
            continue;
        }
        // Try to match an entity atom.
        let matched = mappings.iter().find_map(|m| match atom {
            XBindAtom::AbsolutePath { document, path, var }
                if document == &m.document && path == &m.entity_path =>
            {
                Some((m, var.clone()))
            }
            _ => None,
        });
        let Some((mapping, entity_var)) = matched else {
            out.push(atom.clone());
            continue;
        };
        consumed[i] = true;

        // Collect field reads hanging off the entity variable.
        let mut columns: Vec<XBindTerm> = vec![XBindTerm::var(&entity_var)];
        for field in &mapping.fields {
            let mut bound: Option<String> = None;
            for (j, other) in atoms.iter().enumerate() {
                if consumed[j] {
                    continue;
                }
                if let XBindAtom::RelativePath { path, source, var } = other {
                    if source == &entity_var && path == &field.path {
                        bound = Some(var.clone());
                        consumed[j] = true;
                        eliminated += 1;
                        break;
                    }
                }
            }
            // Unread columns get a canonical don't-care variable so the
            // specialized atom has the mapping's full arity.
            columns.push(XBindTerm::var(
                &bound.unwrap_or_else(|| format!("{entity_var}_{}", field.column)),
            ));
        }
        // Navigation the mapping does not cover (an attribute read, an
        // element-valued step) may still hang off the entity variable. The
        // entity's own navigation atom must then survive next to the
        // specialized atom: it both carries the constraint that the entity
        // lies on `entity_path` and anchors the document that the leftover
        // relative paths compile against.
        let leftover = atoms.iter().enumerate().any(|(j, other)| {
            !consumed[j]
                && matches!(other, XBindAtom::RelativePath { source, .. } if source == &entity_var)
        });
        if leftover {
            out.push(atom.clone());
        }
        out.push(XBindAtom::Relational { relation: mapping.relation.clone(), args: columns });
    }
    (out, eliminated)
}

/// Specialize an XBind query (Figure 7: `CQ → CQ'`).
pub fn specialize_query(query: &XBindQuery, mappings: &[SpecializationMapping]) -> XBindQuery {
    let (atoms, _) = specialize_atoms(&query.atoms, mappings);
    XBindQuery {
        name: format!("{}_spec", query.name),
        head: query.head.clone(),
        atoms,
        distinct: query.distinct,
    }
}

/// Specialize a view definition (Figure 7: `∆ → spec(∆)`).
pub fn specialize_view(view: &ViewDef, mappings: &[SpecializationMapping]) -> ViewDef {
    ViewDef {
        name: view.name.clone(),
        body: {
            let mut b = specialize_query(&view.body, mappings);
            b.name = view.body.name.clone();
            b
        },
        output: view.output.clone(),
    }
}

/// Specialize an XIC.
pub fn specialize_xic(xic: &Xic, mappings: &[SpecializationMapping]) -> Xic {
    let (premise, _) = specialize_atoms(&xic.premise, mappings);
    let conclusions = xic
        .conclusions
        .iter()
        .map(|c| XicConjunct {
            exists: c.exists.clone(),
            atoms: specialize_atoms(&c.atoms, mappings).0,
            equalities: c.equalities.clone(),
        })
        .collect();
    Xic { name: format!("{}_spec", xic.name), premise, conclusions }
}

/// Post-processing (Figure 7's final step): re-expand specialization-relation
/// atoms of a reformulation back into XML navigation over the original
/// proprietary schema.
pub fn expand_query(query: &XBindQuery, mappings: &[SpecializationMapping]) -> XBindQuery {
    let mut atoms = Vec::new();
    for atom in &query.atoms {
        match atom {
            XBindAtom::Relational { relation, args } => {
                if let Some(m) = mappings.iter().find(|m| &m.relation == relation) {
                    let entity = args[0].as_var().unwrap_or("e").to_string();
                    atoms.push(XBindAtom::AbsolutePath {
                        document: m.document.clone(),
                        path: m.entity_path.clone(),
                        var: entity.clone(),
                    });
                    for (i, field) in m.fields.iter().enumerate() {
                        if let Some(v) = args.get(i + 1).and_then(|t| t.as_var()) {
                            atoms.push(XBindAtom::RelativePath {
                                path: field.path.clone(),
                                source: entity.clone(),
                                var: v.to_string(),
                            });
                        }
                    }
                } else {
                    atoms.push(atom.clone());
                }
            }
            other => atoms.push(other.clone()),
        }
    }
    XBindQuery {
        name: format!("{}_expanded", query.name),
        head: query.head.clone(),
        atoms,
        distinct: query.distinct,
    }
}

/// The specialization relation predicates contributed by a set of mappings
/// (they become part of the compilation target schema).
pub fn specialization_predicates(mappings: &[SpecializationMapping]) -> Vec<mars_cq::Predicate> {
    mappings.iter().map(|m| mars_cq::Predicate::new(&m.relation)).collect()
}

/// Keep `ViewOutput` re-exported locally so downstream code can pattern-match
/// without importing `mars-grex` directly.
pub use mars_grex::ViewOutput as SpecializedViewOutput;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::author_mapping;
    use mars_grex::{compile_xbind, CompileContext};
    use mars_xml::parse_path;

    /// The Section 5.1 query: authors living in a city where a publisher is
    /// located.
    fn section_5_1_query() -> XBindQuery {
        XBindQuery::new("Xb")
            .with_head(&["l"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "pubs.xml".to_string(),
                path: parse_path("//author").unwrap(),
                var: "id".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./name/last/text()").unwrap(),
                source: "id".to_string(),
                var: "l".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./address/city/text()").unwrap(),
                source: "id".to_string(),
                var: "c".to_string(),
            })
            .with_atom(XBindAtom::AbsolutePath {
                document: "pubs.xml".to_string(),
                path: parse_path("//publisher").unwrap(),
                var: "p".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./address/city/text()").unwrap(),
                source: "p".to_string(),
                var: "c".to_string(),
            })
    }

    #[test]
    fn section_5_1_query_specializes_only_the_author_part() {
        let q = section_5_1_query();
        let spec = specialize_query(&q, &[author_mapping()]);
        // The author entity + 2 field reads collapse into one Author atom;
        // the publisher navigation is untouched.
        assert_eq!(spec.atoms.len(), 3);
        assert!(matches!(&spec.atoms[0], XBindAtom::Relational { relation, args }
            if relation == "Author" && args.len() == 7));
        assert!(spec
            .atoms
            .iter()
            .any(|a| matches!(a, XBindAtom::AbsolutePath { var, .. } if var == "p")));
        // Field variables that were read keep their names.
        if let XBindAtom::Relational { args, .. } = &spec.atoms[0] {
            assert_eq!(args[2], XBindTerm::var("l")); // last
            assert_eq!(args[4], XBindTerm::var("c")); // city
        }
    }

    #[test]
    fn specialization_reduces_compiled_atom_count() {
        let q = section_5_1_query();
        let spec = specialize_query(&q, &[author_mapping()]);
        let mut ctx = CompileContext::new();
        let compiled_plain = compile_xbind(&mut ctx, &q);
        let compiled_spec = compile_xbind(&mut ctx, &spec);
        assert!(
            compiled_spec.body.len() + 8 <= compiled_plain.body.len(),
            "specialization must save many atoms: {} vs {}",
            compiled_spec.body.len(),
            compiled_plain.body.len()
        );
    }

    #[test]
    fn expansion_round_trips_the_navigation() {
        let q = section_5_1_query();
        let m = [author_mapping()];
        let spec = specialize_query(&q, &m);
        let back = expand_query(&spec, &m);
        // The re-expanded query mentions the author entity and its city field
        // again (extra don't-care field reads are allowed).
        assert!(back.atoms.iter().any(|a| matches!(a, XBindAtom::AbsolutePath { path, .. }
            if path == &parse_path("//author").unwrap())));
        assert!(back.atoms.iter().any(|a| matches!(a, XBindAtom::RelativePath { path, var, .. }
            if path == &parse_path("./address/city/text()").unwrap() && var == "c")));
        assert!(back.atoms.len() >= q.atoms.len());
    }

    #[test]
    fn views_and_xics_are_specialized_consistently() {
        // The V(l,c) view of Section 5.1.
        let view_body = XBindQuery::new("Vbody")
            .with_head(&["l", "c"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "pubs.xml".to_string(),
                path: parse_path("//author").unwrap(),
                var: "id".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./name/last/text()").unwrap(),
                source: "id".to_string(),
                var: "l".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./address/city/text()").unwrap(),
                source: "id".to_string(),
                var: "c".to_string(),
            });
        let view = ViewDef::relational("V", view_body);
        let m = [author_mapping()];
        let sview = specialize_view(&view, &m);
        assert_eq!(sview.body.atoms.len(), 1);
        assert!(matches!(sview.output, mars_grex::ViewOutput::Relation { .. }));

        let xic =
            mars_xquery::Xic::exists_child("author_has_name", "pubs.xml", "//author", "./name")
                .unwrap();
        let sxic = specialize_xic(&xic, &m);
        // The premise //author(p) specializes to Author(p, ...).
        assert!(
            matches!(&sxic.premise[0], XBindAtom::Relational { relation, .. } if relation == "Author")
        );
    }

    /// Regression: navigation the mapping does not cover (here an attribute
    /// read) must keep the entity's own navigation atom next to the
    /// specialized atom — dropping it leaves the leftover relative path with
    /// no document anchor (it then compiles against a default document and
    /// never matches the instance).
    #[test]
    fn uncovered_navigation_keeps_the_entity_atom() {
        let q = XBindQuery::new("Q")
            .with_head(&["l", "ssn"])
            .with_atom(XBindAtom::AbsolutePath {
                document: "pubs.xml".to_string(),
                path: parse_path("//author").unwrap(),
                var: "id".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./name/last/text()").unwrap(),
                source: "id".to_string(),
                var: "l".to_string(),
            })
            .with_atom(XBindAtom::RelativePath {
                path: parse_path("./@ssn").unwrap(),
                source: "id".to_string(),
                var: "ssn".to_string(),
            });
        let spec = specialize_query(&q, &[author_mapping()]);
        // Entity nav atom + Author atom + the uncovered attribute read.
        assert_eq!(spec.atoms.len(), 3);
        assert!(spec.atoms.iter().any(
            |a| matches!(a, XBindAtom::AbsolutePath { var, document, .. } if var == "id" && document == "pubs.xml")
        ));
        assert!(spec
            .atoms
            .iter()
            .any(|a| matches!(a, XBindAtom::Relational { relation, .. } if relation == "Author")));
        assert!(spec
            .atoms
            .iter()
            .any(|a| matches!(a, XBindAtom::RelativePath { var, .. } if var == "ssn")));
    }

    #[test]
    fn queries_without_matching_entities_are_unchanged() {
        let q = XBindQuery::new("Q").with_head(&["x"]).with_atom(XBindAtom::AbsolutePath {
            document: "other.xml".to_string(),
            path: parse_path("//thing").unwrap(),
            var: "x".to_string(),
        });
        let spec = specialize_query(&q, &[author_mapping()]);
        assert_eq!(spec.atoms, q.atoms);
        assert_eq!(specialization_predicates(&[author_mapping()]).len(), 1);
    }
}
