//! The backchase: bottom-up enumeration of subqueries of the universal plan
//! with cost-based pruning (Section 2.3) and the XML-specific navigation
//! pruning of Section 3.2.
//!
//! Reformulations may only mention the *proprietary* schema, so the
//! enumeration is restricted to the subquery `M` of the universal plan induced
//! by proprietary-schema atoms (the *initial reformulation*); all minimal
//! reformulations are subqueries of `M`. Subqueries are inspected in order of
//! increasing size; when one is found equivalent to the original query it is a
//! *minimal* reformulation (no smaller subquery was equivalent), the best cost
//! is updated, and supersets are pruned.
//!
//! # Hot-path structure
//!
//! The expensive step per candidate is the "back" chase (the `candidate ⊆
//! original` half of the equivalence check). Three optimizations keep it off
//! the critical path:
//!
//! * **Chase memoization**: completed back-chases are cached keyed on the
//!   candidate's atom bitmask. A candidate grown from an already-chased
//!   subset resumes from the cached chase result plus the one new atom
//!   ([`chase_branches_with_atoms`]) instead of re-chasing from scratch —
//!   the seed is already at fixpoint, so only consequences of the new atom
//!   fire. Because the BFS visits subsets level by level, only the previous
//!   and current size levels are retained.
//! * **O(1) subset costs**: for additive cost models
//!   ([`CostEstimator::atom_costs`]) the per-atom costs of the pool are
//!   computed once and a candidate's cost is a bitmask fold.
//! * **Prepared containment targets**: the `original ⊆ candidate` half checks
//!   the candidate against every universal-plan branch; the branches' atom
//!   indexes are built once ([`ContainmentTarget`]), and subqueries of a
//!   branch hit the identity fast path.

use crate::chase::{
    chase_branches_with_atoms, chase_to_universal_plan, ChaseOptions, UniversalPlan,
};
use crate::reach::{prune_parallel_desc, ReachabilityGraph};
use mars_cost::CostEstimator;
use mars_cq::containment::{containment_mapping, ContainmentTarget};
use mars_cq::{ConjunctiveQuery, Ded, Predicate, Substitution, Variable};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Options controlling the backchase.
#[derive(Clone, Debug)]
pub struct BackchaseOptions {
    /// Enumerate *all* minimal reformulations, even those costing more than
    /// the best found so far. Needed by the experiments that count
    /// reformulations (and by the paper's proposed cost-model testbed); when
    /// `false`, cost-based pruning discards expensive candidates early.
    pub exhaustive: bool,
    /// Apply pruning criterion 1 (drop parallel `desc` atoms) to the pool.
    pub prune_parallel_desc: bool,
    /// Apply criteria 2–3 (navigation contiguity + entry-point anchoring).
    pub navigation_pruning: bool,
    /// Upper bound on the number of candidate subqueries inspected. When the
    /// bound stops the enumeration, [`BackchaseOutcome::truncated`] is set.
    pub max_candidates: usize,
    /// Upper bound on the number of memoized back-chase results retained per
    /// BFS size level (memory guard for very wide pools).
    pub chase_cache_per_level: usize,
    /// Chase options used for the "back" chases (equivalence checks).
    pub chase: ChaseOptions,
}

impl Default for BackchaseOptions {
    fn default() -> Self {
        BackchaseOptions {
            exhaustive: false,
            prune_parallel_desc: true,
            navigation_pruning: true,
            max_candidates: 200_000,
            chase_cache_per_level: 8_192,
            chase: ChaseOptions::default(),
        }
    }
}

impl BackchaseOptions {
    /// Options that enumerate every minimal reformulation.
    pub fn exhaustive() -> BackchaseOptions {
        BackchaseOptions { exhaustive: true, ..Default::default() }
    }
}

/// Result of the backchase.
#[derive(Clone, Debug, Default)]
pub struct BackchaseOutcome {
    /// All minimal reformulations found (query + estimated cost), in the
    /// order they were discovered (increasing subquery size).
    pub minimal: Vec<(ConjunctiveQuery, f64)>,
    /// The minimum-cost reformulation.
    pub best: Option<(ConjunctiveQuery, f64)>,
    /// Number of candidate subqueries inspected.
    pub candidates_inspected: usize,
    /// Number of (chase-based) equivalence checks performed.
    pub equivalence_checks: usize,
    /// Number of back-chases resumed from a memoized subset chase instead of
    /// run from scratch.
    pub chase_cache_hits: usize,
    /// Number of candidates discarded by cost-based pruning.
    pub pruned_by_cost: usize,
    /// `true` when the enumeration did not cover the full search space:
    /// either [`BackchaseOptions::max_candidates`] stopped the breadth-first
    /// enumeration early, or the candidate pool exceeded the enumerable
    /// width (> 128 atoms) and only greedy minimization ran. The reported
    /// `minimal` set may then be incomplete and (in exhaustive mode) `best`
    /// may not be the optimum. A complete enumeration leaves this `false`.
    pub truncated: bool,
    /// Wall-clock duration of the backchase.
    pub duration: Duration,
}

/// The *initial reformulation*: the largest subquery of the universal plan
/// induced by proprietary-schema atoms. If any reformulation exists, this is
/// one (not necessarily minimal), and every minimal reformulation is a
/// subquery of it.
pub fn initial_reformulation(
    universal_plan: &ConjunctiveQuery,
    proprietary: &HashSet<Predicate>,
) -> ConjunctiveQuery {
    let indices: Vec<usize> = universal_plan
        .body
        .iter()
        .enumerate()
        .filter(|(_, a)| proprietary.contains(&a.predicate))
        .map(|(i, _)| i)
        .collect();
    let mut q = universal_plan.subquery(&indices);
    q.name = format!("{}_initial", universal_plan.name);
    q
}

/// Is `candidate` (a subquery of the universal plan, same head) equivalent to
/// the original query under the dependencies?
///
/// * `original ⊆ candidate` holds iff `candidate` maps into every branch of
///   the (already computed) universal plan preserving the head — for
///   subqueries of a branch this is the identity mapping, but we check
///   explicitly so that multi-branch (disjunctive) plans are handled.
/// * `candidate ⊆ original` holds iff chasing `candidate` ("back") yields a
///   plan into which the original maps preserving the head.
fn is_reformulation(
    candidate: &ConjunctiveQuery,
    original: &ConjunctiveQuery,
    universal_plan_branches: &[ConjunctiveQuery],
    deds: &[Ded],
    chase_opts: &ChaseOptions,
) -> bool {
    if !candidate.is_safe() {
        return false;
    }
    // original ⊆ candidate
    if !universal_plan_branches.iter().all(|b| containment_mapping(candidate, b).is_some()) {
        return false;
    }
    // candidate ⊆ original
    let back: UniversalPlan = chase_to_universal_plan(candidate, deds, chase_opts);
    back_chase_confirms(original, &back)
}

/// The `candidate ⊆ original` half of the equivalence test, over a back
/// chase that has already been computed (from scratch or resumed from a
/// memoized subset): the chase must have completed with at least one
/// surviving branch, and the original must map into every branch preserving
/// the head. Shared by [`is_reformulation`] (greedy fallback) and the
/// enumerating BFS so the two paths cannot drift.
fn back_chase_confirms(original: &ConjunctiveQuery, back: &UniversalPlan) -> bool {
    back.stats.completed
        && !back.branches.is_empty()
        && back.branches.iter().all(|b| containment_mapping(original, b).is_some())
}

/// Chased branches of a candidate, cached for reuse by its supersets.
type ChasedBranches = Vec<(ConjunctiveQuery, Substitution)>;

/// Run the backchase.
///
/// `original` is the query being reformulated, `universal_plan` the result of
/// the chase (its `branches`), `proprietary` the set of predicates that may
/// appear in a reformulation.
pub fn backchase(
    original: &ConjunctiveQuery,
    universal_plan: &UniversalPlan,
    proprietary: &HashSet<Predicate>,
    deds: &[Ded],
    estimator: &dyn CostEstimator,
    options: &BackchaseOptions,
) -> BackchaseOutcome {
    let start = Instant::now();
    let mut outcome = BackchaseOutcome::default();
    if universal_plan.branches.is_empty() {
        outcome.duration = start.elapsed();
        return outcome;
    }
    let primary = universal_plan.primary();
    let pruned_plan =
        if options.prune_parallel_desc { prune_parallel_desc(primary) } else { primary.clone() };

    // Pool of candidate atoms: proprietary atoms of the (pruned) plan.
    let pool: Vec<_> =
        pruned_plan.body.iter().filter(|a| proprietary.contains(&a.predicate)).cloned().collect();
    if pool.is_empty() || pool.len() > 128 {
        // Either nothing to enumerate, or the pool is too large for subset
        // enumeration: fall back to greedy minimization of the initial
        // reformulation (documented limitation; the paper relies on schema
        // specialization to keep pools small). Greedy minimization yields at
        // most one reformulation, never the full minimal set.
        if !pool.is_empty() {
            outcome.truncated = true;
            let initial = ConjunctiveQuery {
                name: format!("{}_initial", primary.name),
                head: primary.head.clone(),
                body: pool.clone(),
                inequalities: primary.inequalities.clone(),
            };
            if let Some(minimized) = greedy_minimize(
                &initial,
                original,
                &universal_plan.branches,
                deds,
                &options.chase,
                &mut outcome,
            ) {
                let cost = estimator.estimate(&minimized);
                outcome.best = Some((minimized.clone(), cost));
                outcome.minimal.push((minimized, cost));
            }
        }
        outcome.duration = start.elapsed();
        return outcome;
    }

    let pool_query = ConjunctiveQuery {
        name: format!("{}_pool", primary.name),
        head: primary.head.clone(),
        body: pool.clone(),
        inequalities: primary.inequalities.clone(),
    };
    let graph = ReachabilityGraph::new(&pool_query);

    // Precomputed per-candidate machinery (see the module docs).
    //
    // Back-chases invent variables strictly above every pool variable index,
    // so a cached chase can later absorb any further pool atom without an
    // invented variable colliding with a pool variable of the same base name.
    let max_pool_index = pool_query
        .variables()
        .iter()
        .map(|v| v.index)
        .chain(original.variables().iter().map(|v| v.index))
        .max()
        .unwrap_or(0);
    let back_chase_opts = ChaseOptions {
        min_fresh_index: options.chase.min_fresh_index.max(max_pool_index + 1),
        ..options.chase.clone()
    };
    let branch_targets: Vec<ContainmentTarget> =
        universal_plan.branches.iter().map(ContainmentTarget::new).collect();
    let atom_costs = estimator.atom_costs(&pool_query);
    let mask_cost = |mask: u128| -> Option<f64> {
        atom_costs
            .as_ref()
            .map(|w| (0..pool.len()).filter(|i| mask & (1 << i) != 0).map(|i| w[i]).sum::<f64>())
    };
    // Safety as a bitset fold over the head variables — exactly the
    // `is_safe()` condition (inequality variables are NOT required:
    // `subquery` projects away inequalities its atoms do not cover).
    let safety_vars: Vec<Variable> = pool_query.head_variables().into_iter().collect();
    // More than 63 safety variables do not fit the u64 prefilter: disable it
    // (every candidate passes) and let `candidate.is_safe()` do the gating.
    let safety_prefilter_active = safety_vars.len() < 64;
    let full_safety: u64 =
        if safety_prefilter_active { (1u64 << safety_vars.len()) - 1 } else { 0 };
    let atom_safety: Vec<u64> = pool
        .iter()
        .map(|a| {
            safety_vars
                .iter()
                .take(63)
                .enumerate()
                .filter(|(_, v)| a.mentions(**v))
                .fold(0u64, |acc, (j, _)| acc | (1 << j))
        })
        .collect();

    // Breadth-first enumeration by subset size, represented as u128 bitsets.
    let mut visited: HashSet<u128> = HashSet::new();
    let mut frontier: VecDeque<u128> = VecDeque::new();
    let mut found_masks: Vec<u128> = Vec::new();
    let mut best_cost = f64::INFINITY;

    // Memoized back-chases of the previous / current BFS size level.
    let mut prev_level: HashMap<u128, ChasedBranches> = HashMap::new();
    let mut cur_level: HashMap<u128, ChasedBranches> = HashMap::new();
    let mut level: u32 = 1;

    let seeds: Vec<usize> =
        if options.navigation_pruning { graph.roots.clone() } else { (0..pool.len()).collect() };
    for s in seeds {
        let mask = 1u128 << s;
        if visited.insert(mask) {
            frontier.push_back(mask);
        }
    }

    while let Some(mask) = frontier.pop_front() {
        if outcome.candidates_inspected >= options.max_candidates {
            outcome.truncated = true;
            break;
        }
        // Minimality pruning: supersets of a found reformulation are not minimal.
        // (Subset test on bitmasks, not membership — clippy's `contains`
        // suggestion would change the semantics.)
        #[allow(clippy::manual_contains)]
        if found_masks.iter().any(|&f| f & mask == f) {
            continue;
        }
        let size = mask.count_ones();
        if size > level {
            // The BFS moved one size level up: caches of level - 1 can no
            // longer be parents of anything still in the frontier.
            prev_level = std::mem::take(&mut cur_level);
            level = size;
        }
        let subset: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
        outcome.candidates_inspected += 1;

        let cost = match mask_cost(mask) {
            Some(c) => c,
            None => estimator.estimate(&pool_query.subquery(&subset)),
        };

        // Cost-based pruning: a subquery costing more than the best found so
        // far cannot lead to the optimum (monotone cost model), so neither it
        // nor its supersets are considered further.
        if !options.exhaustive && cost > best_cost {
            outcome.pruned_by_cost += 1;
            continue;
        }

        let legal = !options.navigation_pruning || graph.is_legal_subset(&subset);
        let safe = !safety_prefilter_active
            || subset.iter().fold(0u64, |acc, &i| acc | atom_safety[i]) == full_safety;
        if legal && safe {
            let candidate = {
                let mut q = pool_query.subquery(&subset);
                q.name = format!("{}_candidate{}", original.name, outcome.candidates_inspected);
                q
            };
            if candidate.is_safe() {
                outcome.equivalence_checks += 1;
                // original ⊆ candidate: the candidate must map into every
                // universal-plan branch (identity fast path on the primary).
                let maps_into_plan =
                    branch_targets.iter().all(|t| t.mapping_from(&candidate).is_some());
                if maps_into_plan {
                    // candidate ⊆ original: back-chase (memoized) and map the
                    // original into every surviving branch.
                    let seed = subset.iter().find_map(|&i| {
                        let parent = mask & !(1 << i);
                        prev_level.get(&parent).map(|s| (s, i))
                    });
                    let back = match seed {
                        Some((seed_branches, added)) => {
                            outcome.chase_cache_hits += 1;
                            chase_branches_with_atoms(
                                seed_branches,
                                std::slice::from_ref(&pool[added]),
                                &candidate.name,
                                deds,
                                &back_chase_opts,
                            )
                        }
                        None => chase_to_universal_plan(&candidate, deds, &back_chase_opts),
                    };
                    if back_chase_confirms(original, &back) {
                        found_masks.push(mask);
                        if cost < best_cost {
                            best_cost = cost;
                            outcome.best = Some((candidate.clone(), cost));
                        }
                        outcome.minimal.push((candidate, cost));
                        continue; // supersets are not minimal
                    }
                    // Not (yet) a reformulation: its supersets will be
                    // chased next level — memoize this chase as their seed.
                    if back.stats.completed
                        && !back.branches.is_empty()
                        && cur_level.len() < options.chase_cache_per_level
                    {
                        let cached: ChasedBranches =
                            back.branches.into_iter().zip(back.renamings).collect();
                        cur_level.insert(mask, cached);
                    }
                }
            }
        }

        // Grow the subset by one atom.
        let grow: Vec<usize> = if options.navigation_pruning {
            graph.enabled(&subset)
        } else {
            (0..pool.len()).filter(|i| mask & (1 << i) == 0).collect()
        };
        for g in grow {
            let next = mask | (1 << g);
            if visited.insert(next) {
                frontier.push_back(next);
            }
        }
    }

    outcome.duration = start.elapsed();
    outcome
}

/// Greedy minimization used when the candidate pool is too large for subset
/// enumeration: repeatedly drop atoms from the initial reformulation while it
/// remains a reformulation.
fn greedy_minimize(
    initial: &ConjunctiveQuery,
    original: &ConjunctiveQuery,
    branches: &[ConjunctiveQuery],
    deds: &[Ded],
    chase_opts: &ChaseOptions,
    outcome: &mut BackchaseOutcome,
) -> Option<ConjunctiveQuery> {
    outcome.equivalence_checks += 1;
    if !is_reformulation(initial, original, branches, deds, chase_opts) {
        return None;
    }
    let mut current = initial.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..current.body.len() {
            if current.body.len() == 1 {
                break;
            }
            let mut cand = current.clone();
            cand.body.remove(i);
            outcome.equivalence_checks += 1;
            if is_reformulation(&cand, original, branches, deds, chase_opts) {
                current = cand;
                changed = true;
                break;
            }
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cost::WeightedAtomEstimator;
    use mars_cq::ded::view_dependencies;
    use mars_cq::{Atom, Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    /// The running Section 2.3 example: public schema {A, B}, storage {V},
    /// LAV view V(x,z) :- A(x,y), B(y,z), semantic constraint (ind).
    fn section_2_3_setup() -> (ConjunctiveQuery, Vec<Ded>, HashSet<Predicate>) {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![Variable::named("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let deds = vec![ind, c_v, b_v];
        let proprietary: HashSet<Predicate> = [Predicate::new("V")].into_iter().collect();
        (q, deds, proprietary)
    }

    /// Section 2.3 setup with a second, redundant proprietary copy of A.
    fn redundant_setup() -> (ConjunctiveQuery, Vec<Ded>, HashSet<Predicate>) {
        let (q, mut deds, _) = section_2_3_setup();
        let defa = ConjunctiveQuery::new("Astored")
            .with_head(vec![t("x"), t("y")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let (c_a, b_a) = view_dependencies("Astored", &defa);
        deds.push(c_a);
        deds.push(b_a);
        let proprietary: HashSet<Predicate> =
            [Predicate::new("V"), Predicate::new("Astored")].into_iter().collect();
        (q, deds, proprietary)
    }

    #[test]
    fn section_2_3_backchase_finds_view_rewriting() {
        let (q, deds, proprietary) = section_2_3_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::default());
        assert_eq!(out.minimal.len(), 1);
        assert!(!out.truncated);
        let (best, _) = out.best.as_ref().unwrap();
        assert_eq!(best.body.len(), 1);
        assert_eq!(best.body[0].predicate.name(), "V");
    }

    #[test]
    fn initial_reformulation_restricts_to_proprietary_atoms() {
        let (q, deds, proprietary) = section_2_3_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let initial = initial_reformulation(up.primary(), &proprietary);
        assert_eq!(initial.body.len(), 1);
        assert_eq!(initial.body[0].predicate.name(), "V");
    }

    /// A redundant-storage scenario: the proprietary schema stores the public
    /// relation A itself *and* the view V. Both the A-only and the V-only
    /// rewritings are minimal reformulations; the best one is chosen by cost.
    #[test]
    fn redundant_storage_yields_multiple_minimal_reformulations() {
        let (q, deds, proprietary) = redundant_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::exhaustive());
        assert_eq!(out.minimal.len(), 2, "both the view and the stored copy are minimal");
        let best = out.best.as_ref().unwrap();
        assert_eq!(best.0.body.len(), 1);
        // Cost pruning (non-exhaustive) still finds at least one and the best.
        let pruned = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::default());
        assert!(pruned.best.is_some());
    }

    #[test]
    fn no_reformulation_without_supporting_constraint() {
        // Without (ind) the view cannot answer Q.
        let (q, deds, proprietary) = section_2_3_setup();
        let deds_no_ind: Vec<Ded> = deds.iter().skip(1).cloned().collect();
        let up = chase_to_universal_plan(&q, &deds_no_ind, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out =
            backchase(&q, &up, &proprietary, &deds_no_ind, &est, &BackchaseOptions::default());
        assert!(out.minimal.is_empty());
        assert!(out.best.is_none());
    }

    #[test]
    fn unsafe_subqueries_are_rejected() {
        // Head variable x must be bound by the reformulation body.
        let (q, deds, _) = section_2_3_setup();
        // Make only B proprietary: B(y,z) does not bind x, so no reformulation.
        let proprietary: HashSet<Predicate> = [Predicate::new("B")].into_iter().collect();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::default());
        assert!(out.minimal.is_empty());
    }

    #[test]
    fn cost_pruning_reduces_inspected_candidates() {
        let (q, deds, proprietary) = redundant_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let exhaustive =
            backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::exhaustive());
        let pruned = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::default());
        assert!(pruned.candidates_inspected <= exhaustive.candidates_inspected);
        assert_eq!(
            pruned.best.as_ref().map(|(_, c)| *c),
            exhaustive.best.as_ref().map(|(_, c)| *c),
            "pruning must not change the optimum under a monotone cost model"
        );
    }

    /// Regression: a truncated enumeration must be distinguishable from a
    /// complete one.
    #[test]
    fn truncation_is_reported() {
        let (q, deds, proprietary) = redundant_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let opts = BackchaseOptions { max_candidates: 1, ..BackchaseOptions::exhaustive() };
        let out = backchase(&q, &up, &proprietary, &deds, &est, &opts);
        assert!(out.truncated, "hitting max_candidates must set the flag");
        assert!(out.minimal.len() < 2);
        let complete =
            backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::exhaustive());
        assert!(!complete.truncated);
    }

    /// Regression for the memoized back-chase: resuming from a cached subset
    /// chase must find exactly the reformulations a from-scratch chase finds.
    #[test]
    fn memoized_and_scratch_backchase_agree() {
        let (q, deds, proprietary) = redundant_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let memo = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::exhaustive());
        let opts = BackchaseOptions { chase_cache_per_level: 0, ..BackchaseOptions::exhaustive() };
        let scratch = backchase(&q, &up, &proprietary, &deds, &est, &opts);
        assert_eq!(scratch.chase_cache_hits, 0);
        assert_eq!(memo.minimal.len(), scratch.minimal.len());
        assert_eq!(memo.best.as_ref().map(|(_, c)| *c), scratch.best.as_ref().map(|(_, c)| *c));
    }
}
