//! The backchase: bottom-up enumeration of subqueries of the universal plan
//! with cost-based pruning (Section 2.3) and the XML-specific navigation
//! pruning of Section 3.2.
//!
//! Reformulations may only mention the *proprietary* schema, so the
//! enumeration is restricted to the subquery `M` of the universal plan induced
//! by proprietary-schema atoms (the *initial reformulation*); all minimal
//! reformulations are subqueries of `M`. Subqueries are inspected in order of
//! increasing size; when one is found equivalent to the original query it is a
//! *minimal* reformulation (no smaller subquery was equivalent), the best cost
//! is updated, and supersets are pruned.

use crate::chase::{chase_to_universal_plan, ChaseOptions, UniversalPlan};
use crate::reach::{prune_parallel_desc, ReachabilityGraph};
use mars_cost::CostEstimator;
use mars_cq::containment::containment_mapping;
use mars_cq::{ConjunctiveQuery, Ded, Predicate};
use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Options controlling the backchase.
#[derive(Clone, Debug)]
pub struct BackchaseOptions {
    /// Enumerate *all* minimal reformulations, even those costing more than
    /// the best found so far. Needed by the experiments that count
    /// reformulations (and by the paper's proposed cost-model testbed); when
    /// `false`, cost-based pruning discards expensive candidates early.
    pub exhaustive: bool,
    /// Apply pruning criterion 1 (drop parallel `desc` atoms) to the pool.
    pub prune_parallel_desc: bool,
    /// Apply criteria 2–3 (navigation contiguity + entry-point anchoring).
    pub navigation_pruning: bool,
    /// Upper bound on the number of candidate subqueries inspected.
    pub max_candidates: usize,
    /// Chase options used for the "back" chases (equivalence checks).
    pub chase: ChaseOptions,
}

impl Default for BackchaseOptions {
    fn default() -> Self {
        BackchaseOptions {
            exhaustive: false,
            prune_parallel_desc: true,
            navigation_pruning: true,
            max_candidates: 200_000,
            chase: ChaseOptions::default(),
        }
    }
}

impl BackchaseOptions {
    /// Options that enumerate every minimal reformulation.
    pub fn exhaustive() -> BackchaseOptions {
        BackchaseOptions { exhaustive: true, ..Default::default() }
    }
}

/// Result of the backchase.
#[derive(Clone, Debug)]
pub struct BackchaseOutcome {
    /// All minimal reformulations found (query + estimated cost), in the
    /// order they were discovered (increasing subquery size).
    pub minimal: Vec<(ConjunctiveQuery, f64)>,
    /// The minimum-cost reformulation.
    pub best: Option<(ConjunctiveQuery, f64)>,
    /// Number of candidate subqueries inspected.
    pub candidates_inspected: usize,
    /// Number of (chase-based) equivalence checks performed.
    pub equivalence_checks: usize,
    /// Number of candidates discarded by cost-based pruning.
    pub pruned_by_cost: usize,
    /// Wall-clock duration of the backchase.
    pub duration: Duration,
}

impl BackchaseOutcome {
    fn empty() -> BackchaseOutcome {
        BackchaseOutcome {
            minimal: Vec::new(),
            best: None,
            candidates_inspected: 0,
            equivalence_checks: 0,
            pruned_by_cost: 0,
            duration: Duration::default(),
        }
    }
}

/// The *initial reformulation*: the largest subquery of the universal plan
/// induced by proprietary-schema atoms. If any reformulation exists, this is
/// one (not necessarily minimal), and every minimal reformulation is a
/// subquery of it.
pub fn initial_reformulation(
    universal_plan: &ConjunctiveQuery,
    proprietary: &HashSet<Predicate>,
) -> ConjunctiveQuery {
    let indices: Vec<usize> = universal_plan
        .body
        .iter()
        .enumerate()
        .filter(|(_, a)| proprietary.contains(&a.predicate))
        .map(|(i, _)| i)
        .collect();
    let mut q = universal_plan.subquery(&indices);
    q.name = format!("{}_initial", universal_plan.name);
    q
}

/// Is `candidate` (a subquery of the universal plan, same head) equivalent to
/// the original query under the dependencies?
///
/// * `original ⊆ candidate` holds iff `candidate` maps into every branch of
///   the (already computed) universal plan preserving the head — for
///   subqueries of a branch this is the identity mapping, but we check
///   explicitly so that multi-branch (disjunctive) plans are handled.
/// * `candidate ⊆ original` holds iff chasing `candidate` ("back") yields a
///   plan into which the original maps preserving the head.
fn is_reformulation(
    candidate: &ConjunctiveQuery,
    original: &ConjunctiveQuery,
    universal_plan_branches: &[ConjunctiveQuery],
    deds: &[Ded],
    chase_opts: &ChaseOptions,
) -> bool {
    if !candidate.is_safe() {
        return false;
    }
    // original ⊆ candidate
    if !universal_plan_branches.iter().all(|b| containment_mapping(candidate, b).is_some()) {
        return false;
    }
    // candidate ⊆ original
    let back: UniversalPlan = chase_to_universal_plan(candidate, deds, chase_opts);
    if !back.stats.completed || back.branches.is_empty() {
        return false;
    }
    back.branches.iter().all(|b| containment_mapping(original, b).is_some())
}

/// Run the backchase.
///
/// `original` is the query being reformulated, `universal_plan` the result of
/// the chase (its `branches`), `proprietary` the set of predicates that may
/// appear in a reformulation.
pub fn backchase(
    original: &ConjunctiveQuery,
    universal_plan: &UniversalPlan,
    proprietary: &HashSet<Predicate>,
    deds: &[Ded],
    estimator: &dyn CostEstimator,
    options: &BackchaseOptions,
) -> BackchaseOutcome {
    let start = Instant::now();
    let mut outcome = BackchaseOutcome::empty();
    if universal_plan.branches.is_empty() {
        outcome.duration = start.elapsed();
        return outcome;
    }
    let primary = universal_plan.primary();
    let pruned_plan =
        if options.prune_parallel_desc { prune_parallel_desc(primary) } else { primary.clone() };

    // Pool of candidate atoms: proprietary atoms of the (pruned) plan.
    let pool: Vec<_> =
        pruned_plan.body.iter().filter(|a| proprietary.contains(&a.predicate)).cloned().collect();
    if pool.is_empty() || pool.len() > 128 {
        // Either nothing to enumerate, or the pool is too large for subset
        // enumeration: fall back to greedy minimization of the initial
        // reformulation (documented limitation; the paper relies on schema
        // specialization to keep pools small).
        if !pool.is_empty() {
            let initial = ConjunctiveQuery {
                name: format!("{}_initial", primary.name),
                head: primary.head.clone(),
                body: pool.clone(),
                inequalities: primary.inequalities.clone(),
            };
            if let Some(minimized) = greedy_minimize(
                &initial,
                original,
                &universal_plan.branches,
                deds,
                &options.chase,
                &mut outcome,
            ) {
                let cost = estimator.estimate(&minimized);
                outcome.best = Some((minimized.clone(), cost));
                outcome.minimal.push((minimized, cost));
            }
        }
        outcome.duration = start.elapsed();
        return outcome;
    }

    let pool_query = ConjunctiveQuery {
        name: format!("{}_pool", primary.name),
        head: primary.head.clone(),
        body: pool.clone(),
        inequalities: primary.inequalities.clone(),
    };
    let graph = ReachabilityGraph::new(&pool_query);

    // Breadth-first enumeration by subset size, represented as u128 bitsets.
    let mut visited: HashSet<u128> = HashSet::new();
    let mut frontier: VecDeque<u128> = VecDeque::new();
    let mut found_masks: Vec<u128> = Vec::new();
    let mut best_cost = f64::INFINITY;

    let seeds: Vec<usize> =
        if options.navigation_pruning { graph.roots.clone() } else { (0..pool.len()).collect() };
    for s in seeds {
        let mask = 1u128 << s;
        if visited.insert(mask) {
            frontier.push_back(mask);
        }
    }

    while let Some(mask) = frontier.pop_front() {
        if outcome.candidates_inspected >= options.max_candidates {
            break;
        }
        // Minimality pruning: supersets of a found reformulation are not minimal.
        // (Subset test on bitmasks, not membership — clippy's `contains`
        // suggestion would change the semantics.)
        #[allow(clippy::manual_contains)]
        if found_masks.iter().any(|&f| f & mask == f) {
            continue;
        }
        let subset: Vec<usize> = (0..pool.len()).filter(|i| mask & (1 << i) != 0).collect();
        outcome.candidates_inspected += 1;

        let candidate = {
            let mut q = pool_query.subquery(&subset);
            q.name = format!("{}_candidate{}", original.name, outcome.candidates_inspected);
            q
        };
        let cost = estimator.estimate(&candidate);

        // Cost-based pruning: a subquery costing more than the best found so
        // far cannot lead to the optimum (monotone cost model), so neither it
        // nor its supersets are considered further.
        if !options.exhaustive && cost > best_cost {
            outcome.pruned_by_cost += 1;
            continue;
        }

        let legal = !options.navigation_pruning || graph.is_legal_subset(&subset);
        if legal && candidate.is_safe() {
            outcome.equivalence_checks += 1;
            if is_reformulation(
                &candidate,
                original,
                &universal_plan.branches,
                deds,
                &options.chase,
            ) {
                found_masks.push(mask);
                if cost < best_cost {
                    best_cost = cost;
                    outcome.best = Some((candidate.clone(), cost));
                }
                outcome.minimal.push((candidate, cost));
                continue; // supersets are not minimal
            }
        }

        // Grow the subset by one atom.
        let grow: Vec<usize> = if options.navigation_pruning {
            graph.enabled(&subset)
        } else {
            (0..pool.len()).filter(|i| mask & (1 << i) == 0).collect()
        };
        for g in grow {
            let next = mask | (1 << g);
            if visited.insert(next) {
                frontier.push_back(next);
            }
        }
    }

    outcome.duration = start.elapsed();
    outcome
}

/// Greedy minimization used when the candidate pool is too large for subset
/// enumeration: repeatedly drop atoms from the initial reformulation while it
/// remains a reformulation.
fn greedy_minimize(
    initial: &ConjunctiveQuery,
    original: &ConjunctiveQuery,
    branches: &[ConjunctiveQuery],
    deds: &[Ded],
    chase_opts: &ChaseOptions,
    outcome: &mut BackchaseOutcome,
) -> Option<ConjunctiveQuery> {
    outcome.equivalence_checks += 1;
    if !is_reformulation(initial, original, branches, deds, chase_opts) {
        return None;
    }
    let mut current = initial.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..current.body.len() {
            if current.body.len() == 1 {
                break;
            }
            let mut cand = current.clone();
            cand.body.remove(i);
            outcome.equivalence_checks += 1;
            if is_reformulation(&cand, original, branches, deds, chase_opts) {
                current = cand;
                changed = true;
                break;
            }
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cost::WeightedAtomEstimator;
    use mars_cq::ded::view_dependencies;
    use mars_cq::{Atom, Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    /// The running Section 2.3 example: public schema {A, B}, storage {V},
    /// LAV view V(x,z) :- A(x,y), B(y,z), semantic constraint (ind).
    fn section_2_3_setup() -> (ConjunctiveQuery, Vec<Ded>, HashSet<Predicate>) {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![Variable::named("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let deds = vec![ind, c_v, b_v];
        let proprietary: HashSet<Predicate> = [Predicate::new("V")].into_iter().collect();
        (q, deds, proprietary)
    }

    #[test]
    fn section_2_3_backchase_finds_view_rewriting() {
        let (q, deds, proprietary) = section_2_3_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::default());
        assert_eq!(out.minimal.len(), 1);
        let (best, _) = out.best.as_ref().unwrap();
        assert_eq!(best.body.len(), 1);
        assert_eq!(best.body[0].predicate.name(), "V");
    }

    #[test]
    fn initial_reformulation_restricts_to_proprietary_atoms() {
        let (q, deds, proprietary) = section_2_3_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let initial = initial_reformulation(up.primary(), &proprietary);
        assert_eq!(initial.body.len(), 1);
        assert_eq!(initial.body[0].predicate.name(), "V");
    }

    /// A redundant-storage scenario: the proprietary schema stores the public
    /// relation A itself *and* the view V. Both the A-only and the V-only
    /// rewritings are minimal reformulations; the best one is chosen by cost.
    #[test]
    fn redundant_storage_yields_multiple_minimal_reformulations() {
        let (q, mut deds, _) = section_2_3_setup();
        // Proprietary copy of A, described by a GAV-style identity view.
        let defa = ConjunctiveQuery::new("Astored")
            .with_head(vec![t("x"), t("y")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let (c_a, b_a) = view_dependencies("Astored", &defa);
        deds.push(c_a);
        deds.push(b_a);
        let proprietary: HashSet<Predicate> =
            [Predicate::new("V"), Predicate::new("Astored")].into_iter().collect();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::exhaustive());
        assert_eq!(out.minimal.len(), 2, "both the view and the stored copy are minimal");
        let best = out.best.as_ref().unwrap();
        assert_eq!(best.0.body.len(), 1);
        // Cost pruning (non-exhaustive) still finds at least one and the best.
        let pruned = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::default());
        assert!(pruned.best.is_some());
    }

    #[test]
    fn no_reformulation_without_supporting_constraint() {
        // Without (ind) the view cannot answer Q.
        let (q, deds, proprietary) = section_2_3_setup();
        let deds_no_ind: Vec<Ded> = deds.iter().skip(1).cloned().collect();
        let up = chase_to_universal_plan(&q, &deds_no_ind, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out =
            backchase(&q, &up, &proprietary, &deds_no_ind, &est, &BackchaseOptions::default());
        assert!(out.minimal.is_empty());
        assert!(out.best.is_none());
    }

    #[test]
    fn unsafe_subqueries_are_rejected() {
        // Head variable x must be bound by the reformulation body.
        let (q, deds, _) = section_2_3_setup();
        // Make only B proprietary: B(y,z) does not bind x, so no reformulation.
        let proprietary: HashSet<Predicate> = [Predicate::new("B")].into_iter().collect();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::default());
        assert!(out.minimal.is_empty());
    }

    #[test]
    fn cost_pruning_reduces_inspected_candidates() {
        let (q, mut deds, _) = section_2_3_setup();
        let defa = ConjunctiveQuery::new("Astored")
            .with_head(vec![t("x"), t("y")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let (c_a, b_a) = view_dependencies("Astored", &defa);
        deds.push(c_a);
        deds.push(b_a);
        let proprietary: HashSet<Predicate> =
            [Predicate::new("V"), Predicate::new("Astored")].into_iter().collect();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let exhaustive =
            backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::exhaustive());
        let pruned = backchase(&q, &up, &proprietary, &deds, &est, &BackchaseOptions::default());
        assert!(pruned.candidates_inspected <= exhaustive.candidates_inspected);
        assert_eq!(
            pruned.best.as_ref().map(|(_, c)| *c),
            exhaustive.best.as_ref().map(|(_, c)| *c),
            "pruning must not change the optimum under a monotone cost model"
        );
    }
}
