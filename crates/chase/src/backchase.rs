//! The backchase: bottom-up enumeration of subqueries of the universal plan
//! with cost-based pruning (Section 2.3) and the XML-specific navigation
//! pruning of Section 3.2.
//!
//! Reformulations may only mention the *proprietary* schema, so the
//! enumeration is restricted to the subquery `M` of the universal plan induced
//! by proprietary-schema atoms (the *initial reformulation*); all minimal
//! reformulations are subqueries of `M`. Subqueries are inspected in order of
//! increasing size; when one is found equivalent to the original query it is a
//! *minimal* reformulation (no smaller subquery was equivalent), the best cost
//! is updated, and supersets are pruned.
//!
//! # Engine structure
//!
//! The enumeration is a **level-synchronous** BFS over candidate atom sets
//! ([`AtomSet`] — growable bitsets, so pools wider than 128 atoms enumerate
//! exhaustively; the old `u128` ceiling and its silent greedy fallback are
//! gone). Each level holds every candidate of one subquery size, and a
//! candidate's evaluation reads only state frozen at the start of its level:
//! the memoized chases of the *previous* level, the best cost and the minimal
//! reformulations found on previous levels. Evaluations are therefore
//! independent and run on a [`std::thread::scope`] worker pool
//! ([`BackchaseOptions::threads`]); results are merged back **in level
//! order**, so the outcome is byte-identical for any thread count — parallel
//! and sequential runs agree on every reformulation, statistic and flag.
//!
//! The expensive step per candidate is the "back" chase (the `candidate ⊆
//! original` half of the equivalence check). Four optimizations keep it off
//! the critical path:
//!
//! * **Shared compilation**: the dependency set arrives as a
//!   [`CompiledDeps`] built once per engine; no chase anywhere in the
//!   enumeration recompiles it.
//! * **Resident chase memoization**: completed back-chases are cached keyed
//!   on the candidate's [`AtomSet`], as *resident* branches
//!   ([`ResidentBranch`]) — frozen symbolic instances that keep their column
//!   indexes, distinct statistics and scan-work ledgers. A candidate grown
//!   from an already-chased subset thaws the cached instances and resumes
//!   with the one new atom ([`chase_resident_with_atoms_compiled`]) instead
//!   of re-parsing a memoized query and re-deriving every access path — the
//!   seed is already at fixpoint, so only consequences of the new atom fire.
//!   Because the BFS visits subsets level by level, only the previous and
//!   current size levels are retained.
//! * **O(1) subset costs**: for additive cost models
//!   ([`CostEstimator::atom_costs`]) the per-atom costs of the pool are
//!   computed once and a candidate's cost is a bitset fold
//!   ([`fold_atom_costs`]).
//! * **Prepared containment targets**: the `original ⊆ candidate` half checks
//!   the candidate against every universal-plan branch; the branches' atom
//!   indexes are built once ([`ContainmentTarget`]), and subqueries of a
//!   branch hit the identity fast path.

use crate::chase::{
    chase_resident_with_atoms_compiled, chase_to_resident_compiled,
    chase_to_universal_plan_compiled, ChaseOptions, ChaseStats, ChaseStop, ResidentBranch,
    ResidentChase, UniversalPlan,
};
use crate::compiled::CompiledDeps;
use crate::reach::{prune_parallel_desc, ReachabilityGraph};
use mars_cost::{fold_atom_costs, CostEstimator};
use mars_cq::containment::{containment_mapping, ContainmentTarget, DeltaTarget};
use mars_cq::{Atom, AtomSet, ConjunctiveQuery, Predicate, Variable};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Why an anytime backchase stopped short of a complete enumeration.
///
/// MARS's soundness does not depend on minimality: *any* equivalent
/// reformulation answers the query correctly, minimization is an
/// optimization. A budgeted run therefore degrades instead of erroring — it
/// keeps the best (cheapest, minimal-so-far) reformulations found before the
/// budget ran out, and tags the outcome with the reason. The universal plan
/// itself is the floor of this degradation ladder: a sound answer always
/// exists even when the enumeration found nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// The wall-clock deadline expired mid-search (the chase to the
    /// universal plan, a back-chase, or the BFS level loop).
    DeadlineExceeded,
    /// [`BackchaseOptions::max_candidates`] stopped the enumeration.
    CandidateBudget,
    /// A structural chase ceiling ([`ChaseOptions::max_atoms`],
    /// `max_rounds` or `max_branches`) stopped the universal-plan chase or a
    /// back-chase, so some candidates could not be confirmed.
    AtomCeiling,
}

impl Degradation {
    /// Severity rank used by [`Degradation::merge`] (higher = reported in
    /// preference).
    fn rank(self) -> u8 {
        match self {
            Degradation::DeadlineExceeded => 2,
            Degradation::CandidateBudget => 1,
            Degradation::AtomCeiling => 0,
        }
    }

    /// Keep the most severe of two optional degradation reasons (a deadline
    /// stop outranks the candidate budget, which outranks a size ceiling).
    pub fn merge(a: Option<Degradation>, b: Option<Degradation>) -> Option<Degradation> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if y.rank() > x.rank() { y } else { x }),
            (x, y) => x.or(y),
        }
    }

    /// The degradation reason carried by an incomplete chase, `None` for a
    /// completed one. Structural ceilings (rounds/atoms/branches) all map to
    /// [`Degradation::AtomCeiling`]; a clock stop maps to
    /// [`Degradation::DeadlineExceeded`].
    pub fn of_chase(stats: &ChaseStats) -> Option<Degradation> {
        if stats.completed {
            return None;
        }
        Some(match stats.stop {
            Some(ChaseStop::Deadline) => Degradation::DeadlineExceeded,
            _ => Degradation::AtomCeiling,
        })
    }
}

/// Options controlling the backchase.
#[derive(Clone, Debug)]
pub struct BackchaseOptions {
    /// Enumerate *all* minimal reformulations, even those costing more than
    /// the best found so far. Needed by the experiments that count
    /// reformulations (and by the paper's proposed cost-model testbed); when
    /// `false`, cost-based pruning discards expensive candidates early.
    pub exhaustive: bool,
    /// Apply pruning criterion 1 (drop parallel `desc` atoms) to the pool.
    pub prune_parallel_desc: bool,
    /// Apply criteria 2–3 (navigation contiguity + entry-point anchoring).
    pub navigation_pruning: bool,
    /// Upper bound on the number of candidate subqueries inspected. When the
    /// bound stops the enumeration, [`BackchaseOutcome::truncated`] is set.
    pub max_candidates: usize,
    /// Upper bound on the number of memoized back-chase results retained per
    /// BFS size level (memory guard for very wide pools).
    pub chase_cache_per_level: usize,
    /// Number of worker threads evaluating the candidates of a BFS level.
    /// `1` (the default) runs sequentially; any value produces byte-identical
    /// outcomes (deterministic in-order merge of per-level results). When a
    /// level has fewer candidates than threads, the spare workers check the
    /// per-branch containment targets of a candidate concurrently (the
    /// verdicts are normalized to the sequential short-circuit shape, so the
    /// outcome stays thread-count-invariant).
    pub threads: usize,
    /// Reuse per-branch containment verdicts memoized alongside the chases
    /// of the previous BFS level: a memoized *success* transfers to a resumed
    /// branch whose carried-over atoms survive intact (no search at all), and
    /// a memoized *failure* restricts the homomorphism search to mappings
    /// that touch the branch's fresh delta. `false` re-derives every
    /// homomorphism from scratch — the `--scratch-containment` ablation.
    /// Either setting produces byte-identical reformulations and search
    /// statistics (only the `containment_*` reuse counters differ).
    pub containment_memo: bool,
    /// Replace subset enumeration with greedy minimization of the initial
    /// reformulation: repeatedly drop atoms while the query stays a
    /// reformulation. Yields **at most one** reformulation, never the full
    /// minimal set, and it need not be the optimum — an explicit trade of
    /// completeness for speed on very wide pools (opt in through
    /// `MarsOptions::with_greedy_minimization`). This is never applied
    /// silently: without the opt-in every pool, however wide, is enumerated
    /// exhaustively.
    pub greedy: bool,
    /// Absolute wall-clock deadline for the enumeration, checked between BFS
    /// levels (level-synchronously, so an undegraded run stays byte-identical
    /// for any thread count). When it expires the backchase returns
    /// **anytime**: the minimal reformulations and best found so far, with
    /// [`BackchaseOutcome::degradation`] set to
    /// [`Degradation::DeadlineExceeded`]. Callers should set the same
    /// deadline on [`BackchaseOptions::chase`] (via
    /// [`ChaseOptions::deadline`]) so individual back-chases are bounded too.
    pub deadline: Option<Instant>,
    /// Chase options used for the "back" chases (equivalence checks).
    pub chase: ChaseOptions,
}

impl Default for BackchaseOptions {
    fn default() -> Self {
        BackchaseOptions {
            exhaustive: false,
            prune_parallel_desc: true,
            navigation_pruning: true,
            max_candidates: 200_000,
            chase_cache_per_level: 8_192,
            threads: 1,
            containment_memo: true,
            greedy: false,
            deadline: None,
            chase: ChaseOptions::default(),
        }
    }
}

impl BackchaseOptions {
    /// Options that enumerate every minimal reformulation.
    pub fn exhaustive() -> BackchaseOptions {
        BackchaseOptions { exhaustive: true, ..Default::default() }
    }

    /// Builder: evaluate each BFS level on `n` worker threads.
    pub fn with_threads(mut self, n: usize) -> BackchaseOptions {
        self.threads = n.max(1);
        self
    }
}

/// Result of the backchase.
#[derive(Clone, Debug, Default)]
pub struct BackchaseOutcome {
    /// All minimal reformulations found (query + estimated cost), in the
    /// order they were discovered (increasing subquery size).
    pub minimal: Vec<(ConjunctiveQuery, f64)>,
    /// The minimum-cost reformulation.
    pub best: Option<(ConjunctiveQuery, f64)>,
    /// Number of candidate subqueries inspected.
    pub candidates_inspected: usize,
    /// Number of (chase-based) equivalence checks performed.
    pub equivalence_checks: usize,
    /// Number of back-chases resumed from a memoized subset chase instead of
    /// run from scratch.
    pub chase_cache_hits: usize,
    /// Number of candidates discarded by cost-based pruning.
    pub pruned_by_cost: usize,
    /// `true` when a budget ([`BackchaseOptions::max_candidates`] or
    /// [`BackchaseOptions::deadline`]) stopped the breadth-first enumeration
    /// before it exhausted the search space: the reported `minimal` set may
    /// then be incomplete and (in exhaustive mode) `best` may not be the
    /// optimum — `degradation` records which budget it was. A complete
    /// enumeration leaves this `false`. These budgets are the only
    /// truncation the engine performs — pool width no longer truncates
    /// anything (the former 128-atom ceiling), and the explicitly requested
    /// [`BackchaseOptions::greedy`] mode documents its own incompleteness
    /// rather than reporting it here.
    pub truncated: bool,
    /// Why the enumeration fell short of a complete search, when it did: the
    /// most severe budget hit ([`Degradation::merge`]). `None` exactly when
    /// nothing was cut — no level truncated, no deadline tripped, and every
    /// back-chase completed — which is the precondition under which a
    /// budgeted run is byte-identical to the unbounded one (property-tested
    /// in `tests/property_based.rs`).
    pub degradation: Option<Degradation>,
    /// Containment verdicts answered by transferring a memoized success from
    /// the seed candidate's branch (the carried-over atoms survived intact,
    /// so the seed's mapping is still a witness — no search ran).
    pub containment_success_transfers: usize,
    /// Homomorphism searches restricted to the fresh delta of a resumed
    /// branch (a memoized failure proves no mapping avoids the fresh atoms).
    pub containment_delta_searches: usize,
    /// Candidates whose entire superset cone was skipped because they failed
    /// to map into a universal-plan branch: a homomorphism from a superset
    /// restricts to one from the subset, so no superset can pass either —
    /// none can be a reformulation (the antichain dead-cone rule).
    pub containment_dead_cone_skips: usize,
    /// Wall-clock spent computing candidate costs (phase profile; the three
    /// phase counters partition the per-candidate work of `duration`).
    pub cost_phase: Duration,
    /// Wall-clock spent in back-chases, from scratch or resumed.
    pub chase_phase: Duration,
    /// Wall-clock spent in containment checks (homomorphism searches, both
    /// halves of the equivalence test).
    pub containment_phase: Duration,
    /// Wall-clock duration of the backchase.
    pub duration: Duration,
}

/// The *initial reformulation*: the largest subquery of the universal plan
/// induced by proprietary-schema atoms. If any reformulation exists, this is
/// one (not necessarily minimal), and every minimal reformulation is a
/// subquery of it.
pub fn initial_reformulation(
    universal_plan: &ConjunctiveQuery,
    proprietary: &HashSet<Predicate>,
) -> ConjunctiveQuery {
    let indices: Vec<usize> = universal_plan
        .body
        .iter()
        .enumerate()
        .filter(|(_, a)| proprietary.contains(&a.predicate))
        .map(|(i, _)| i)
        .collect();
    let mut q = universal_plan.subquery(&indices);
    q.name = format!("{}_initial", universal_plan.name);
    q
}

/// Is `candidate` (a subquery of the universal plan, same head) equivalent to
/// the original query under the dependencies?
///
/// * `original ⊆ candidate` holds iff `candidate` maps into every branch of
///   the (already computed) universal plan preserving the head — for
///   subqueries of a branch this is the identity mapping, but we check
///   explicitly so that multi-branch (disjunctive) plans are handled.
/// * `candidate ⊆ original` holds iff chasing `candidate` ("back") yields a
///   plan into which the original maps preserving the head.
fn is_reformulation(
    candidate: &ConjunctiveQuery,
    original: &ConjunctiveQuery,
    universal_plan_branches: &[ConjunctiveQuery],
    deds: &CompiledDeps,
    chase_opts: &ChaseOptions,
) -> bool {
    if !candidate.is_safe() {
        return false;
    }
    // original ⊆ candidate
    if !universal_plan_branches.iter().all(|b| containment_mapping(candidate, b).is_some()) {
        return false;
    }
    // candidate ⊆ original
    let back: UniversalPlan = chase_to_universal_plan_compiled(candidate, deds, chase_opts);
    back_chase_confirms(original, &back)
}

/// The `candidate ⊆ original` half of the equivalence test, over a back
/// chase that has already been computed (from scratch or resumed from a
/// memoized subset): the chase must have completed with at least one
/// surviving branch, and the original must map into every branch preserving
/// the head. Shared by [`is_reformulation`] (greedy opt-in) and the
/// enumerating BFS so the two paths cannot drift.
fn back_chase_confirms(original: &ConjunctiveQuery, back: &UniversalPlan) -> bool {
    back.stats.completed
        && !back.branches.is_empty()
        && back.branches.iter().all(|b| containment_mapping(original, b).is_some())
}

/// Memoized result of one candidate's back-chase, cached for reuse by its
/// supersets on the next BFS level.
///
/// The branches are kept **resident** ([`ResidentBranch`]): the frozen
/// symbolic instances carry their warm column indexes, distinct statistics
/// and scan-work ledgers, so a superset's resumed chase thaws them instead of
/// re-parsing a memoized `ConjunctiveQuery` from scratch and re-deriving
/// every access path. Alongside each branch the per-branch containment
/// verdict (`original ⊆ branch`) is recorded in branch order up to the first
/// failure (`None` past it: the confirm short-circuited there) — the seed of
/// the sibling-sharing containment memo (success transfer + delta-restricted
/// search, see [`check_branch`]).
struct ContainmentMemo {
    branches: Vec<ResidentBranch>,
    verdicts: Vec<Option<bool>>,
}

/// How one branch verdict of [`confirm_with_memo`] was obtained.
enum BranchCheck {
    /// Full homomorphism search over the whole branch.
    Full,
    /// The seed branch's memoized success transferred: its atoms survive
    /// verbatim in the resumed branch (per-relation prefix) with the same
    /// head, so the seed's mapping is still a witness — no search ran.
    SuccessTransfer,
    /// The seed branch's memoized failure restricted the search to mappings
    /// that use the resumed branch's fresh delta.
    DeltaSearch,
}

/// Is every relation of `seed` an element-wise prefix of the same relation
/// in `resumed`? Resumed chases only append tuples unless an EGD rewrote the
/// relation, so this holds for every untouched relation — and where it
/// holds, every seed atom is present verbatim in the resumed branch.
fn prefix_preserved(
    seed: &crate::instance::FrozenInstance,
    resumed: &crate::instance::FrozenInstance,
) -> bool {
    seed.predicates().all(|p| {
        let s = seed.relation(p);
        let r = resumed.relation(p);
        r.len() >= s.len() && &r[..s.len()] == s
    })
}

/// The resumed branch as an unrestricted containment target, assembled
/// straight from the frozen relations (no sorted query rendering, no atom
/// set materialization — the hot-path replacement for
/// `containment_mapping(original, &branch.to_query(..))`).
fn full_target(branch: &ResidentBranch) -> DeltaTarget {
    let inst = branch.instance();
    let mut atoms: Vec<Atom> = Vec::with_capacity(inst.len());
    for p in inst.sorted_predicates() {
        for t in inst.relation(p) {
            atoms.push(Atom::new(p, t.clone()));
        }
    }
    DeltaTarget::new(branch.head().to_vec(), atoms)
}

/// The resumed branch as a delta-restricted containment target: atoms are
/// partitioned per relation into the prefix carried over intact from `seed`
/// and the fresh remainder (relations an EGD rewrote count as entirely
/// fresh — the conservative side). Sound because the seed's memoized failure
/// proves no head-preserving mapping lands entirely in carried-over atoms:
/// such a mapping would be a mapping into the seed branch itself.
fn delta_target(seed: &ResidentBranch, branch: &ResidentBranch) -> DeltaTarget {
    let inst = branch.instance();
    let seed_inst = seed.instance();
    let mut carried: Vec<Atom> = Vec::new();
    let mut fresh: Vec<Atom> = Vec::new();
    for p in inst.sorted_predicates() {
        let r = inst.relation(p);
        let s = seed_inst.relation(p);
        let keep = if r.len() >= s.len() && &r[..s.len()] == s { s.len() } else { 0 };
        for t in &r[..keep] {
            carried.push(Atom::new(p, t.clone()));
        }
        for t in &r[keep..] {
            fresh.push(Atom::new(p, t.clone()));
        }
    }
    let mark = carried.len();
    carried.extend(fresh);
    DeltaTarget::with_fresh_mark(branch.head().to_vec(), carried, mark)
}

/// One branch of the `original ⊆ candidate` check, with memo transfer when a
/// seed branch verdict is available and the heads agree.
fn check_branch(
    original: &ConjunctiveQuery,
    branch: &ResidentBranch,
    seed: Option<(&ResidentBranch, bool)>,
) -> (bool, BranchCheck) {
    if let Some((seed_branch, verdict)) = seed {
        if seed_branch.head() == branch.head() {
            if verdict {
                if prefix_preserved(seed_branch.instance(), branch.instance()) {
                    return (true, BranchCheck::SuccessTransfer);
                }
            } else {
                let target = delta_target(seed_branch, branch);
                return (target.mapping_from(original).is_some(), BranchCheck::DeltaSearch);
            }
        }
    }
    (full_target(branch).mapping_from(original).is_some(), BranchCheck::Full)
}

/// The `candidate ⊆ original` confirm over a resident back-chase: completed,
/// at least one surviving branch, and the original maps into every branch
/// preserving the head. Branch checks reuse the memoized verdicts of the
/// candidate's seed where they transfer ([`check_branch`]), and run
/// concurrently when the level left `threads > 1` workers idle — the result
/// is normalized to the sequential short-circuit shape (verdicts in branch
/// order up to the first failure, reuse counters summed over exactly those
/// checks), so memo contents and statistics are thread-count-invariant.
fn confirm_with_memo(
    original: &ConjunctiveQuery,
    back: &ResidentChase,
    seed: Option<&ContainmentMemo>,
    threads: usize,
    eval: &mut CandidateEval,
) -> (bool, Vec<Option<bool>>) {
    if !back.stats().completed || back.is_empty() {
        return (false, Vec::new());
    }
    let branches = back.branches();
    let seed_for = |i: usize| -> Option<(&ResidentBranch, bool)> {
        let memo = seed?;
        Some((memo.branches.get(i)?, (*memo.verdicts.get(i)?)?))
    };
    let results: Vec<(bool, BranchCheck)> = if threads > 1 && branches.len() > 1 {
        let mut out: Vec<Option<(bool, BranchCheck)>> = Vec::new();
        out.resize_with(branches.len(), || None);
        std::thread::scope(|scope| {
            for (slot, (i, b)) in out.iter_mut().zip(branches.iter().enumerate()) {
                let seed_i = seed_for(i);
                scope.spawn(move || {
                    *slot = Some(check_branch(original, b, seed_i));
                });
            }
        });
        out.into_iter().map(|r| r.expect("every branch checked")).collect()
    } else {
        let mut out = Vec::new();
        for (i, b) in branches.iter().enumerate() {
            let result = check_branch(original, b, seed_for(i));
            let failed = !result.0;
            out.push(result);
            if failed {
                break;
            }
        }
        out
    };
    // Normalize (parallel runs computed past the first failure; drop that).
    let mut verdicts: Vec<Option<bool>> = vec![None; branches.len()];
    for (i, (ok, kind)) in results.iter().enumerate() {
        verdicts[i] = Some(*ok);
        match kind {
            BranchCheck::SuccessTransfer => eval.success_transfers += 1,
            BranchCheck::DeltaSearch => eval.delta_searches += 1,
            BranchCheck::Full => {}
        }
        if !*ok {
            return (false, verdicts);
        }
    }
    (true, verdicts)
}

/// Head-variable coverage prefilter: safety as a bitset fold over the head
/// variables — exactly the `is_safe()` condition (inequality variables are
/// NOT required: `subquery` projects away inequalities its atoms do not
/// cover). More than 63 head variables disable the prefilter (every
/// candidate passes) and `candidate.is_safe()` does the gating.
struct SafetyPrefilter {
    active: bool,
    full: u64,
    per_atom: Vec<u64>,
}

impl SafetyPrefilter {
    fn new(pool_query: &ConjunctiveQuery, pool: &[Atom]) -> SafetyPrefilter {
        let safety_vars: Vec<Variable> = pool_query.head_variables().into_iter().collect();
        let active = safety_vars.len() < 64;
        let full = if active { (1u64 << safety_vars.len()) - 1 } else { 0 };
        let per_atom: Vec<u64> = pool
            .iter()
            .map(|a| {
                safety_vars
                    .iter()
                    .take(63)
                    .enumerate()
                    .filter(|(_, v)| a.mentions(**v))
                    .fold(0u64, |acc, (j, _)| acc | (1 << j))
            })
            .collect();
        SafetyPrefilter { active, full, per_atom }
    }

    fn passes(&self, subset: &[usize]) -> bool {
        !self.active || subset.iter().fold(0u64, |acc, &i| acc | self.per_atom[i]) == self.full
    }
}

/// Everything a candidate evaluation reads — all of it frozen for the
/// duration of one BFS level, which is what makes the per-level parallelism
/// deterministic (workers share this by reference; nothing is written until
/// the in-order merge).
struct LevelContext<'a> {
    original: &'a ConjunctiveQuery,
    pool: &'a [Atom],
    pool_query: &'a ConjunctiveQuery,
    graph: &'a ReachabilityGraph,
    branch_targets: &'a [ContainmentTarget],
    /// Order in which the plan-branch targets are checked: indices into
    /// `branch_targets`, most-frequently-first-to-fail first (recorded over
    /// the previous levels), so non-equivalent candidates fail fast. The
    /// conjunction is order-independent, so any order gives the same verdict.
    target_order: &'a [usize],
    atom_costs: Option<&'a [f64]>,
    estimator: &'a dyn CostEstimator,
    deds: &'a CompiledDeps,
    back_chase_opts: &'a ChaseOptions,
    safety: &'a SafetyPrefilter,
    /// Memoized back-chases (+ per-branch containment verdicts) of the
    /// previous BFS level (read-only).
    prev_level: &'a HashMap<AtomSet, ContainmentMemo>,
    navigation_pruning: bool,
    exhaustive: bool,
    /// Reuse memoized containment verdicts ([`BackchaseOptions::containment_memo`]).
    containment_memo: bool,
    /// Workers available to one candidate's per-branch containment checks
    /// (spare capacity when the level is narrower than the thread pool).
    containment_threads: usize,
    /// Best reformulation cost as of the end of the previous level. Frozen
    /// for the whole level — the price of thread-count-independent results:
    /// a reformulation discovered mid-level cannot cost-prune its own level,
    /// only the next one. Sound (monotone cost model) and bounded: at most
    /// one level of same-size candidates is evaluated without the tighter
    /// bound.
    best_cost: f64,
    /// Cache budget ([`BackchaseOptions::chase_cache_per_level`]). Only the
    /// first `cache_budget` candidates of a level may return a chase for
    /// memoization, which bounds the memory held between evaluation and
    /// merge by the budget instead of by the level width.
    cache_budget: usize,
}

/// What evaluating one candidate produced; merged in level order.
#[derive(Default)]
struct CandidateEval {
    cost: f64,
    pruned_by_cost: bool,
    /// An equivalence check (the chase-based test) ran.
    checked: bool,
    /// The back-chase resumed from a memoized subset chase.
    cache_hit: bool,
    /// The candidate is a minimal reformulation.
    found: Option<ConjunctiveQuery>,
    /// Completed (non-reformulation) chase + verdicts to memoize for the
    /// next level.
    cache_entry: Option<ContainmentMemo>,
    /// Pool indices the BFS may grow this candidate by.
    grow: Vec<usize>,
    /// The first plan-branch target (index into `branch_targets`) the
    /// candidate failed to map into, if any — feeds the failure-frequency
    /// target ordering of the next level.
    first_failed_target: Option<usize>,
    /// The candidate failed `original ⊆ candidate`, so its whole superset
    /// cone was cut (antichain dead-cone rule).
    dead_cone: bool,
    /// The back-chase ran out of budget before reaching a fixpoint (the
    /// candidate could then not be confirmed): the degradation reason to
    /// surface on the outcome.
    chase_degradation: Option<Degradation>,
    /// Branch verdicts answered by memo success transfer.
    success_transfers: usize,
    /// Branch verdicts answered by a delta-restricted search.
    delta_searches: usize,
    /// Phase profile of this evaluation (cost / chase / containment).
    cost_time: Duration,
    chase_time: Duration,
    containment_time: Duration,
}

/// Evaluate one candidate against the frozen level context. Pure: reads only
/// `ctx`, writes nothing shared.
fn evaluate_candidate(
    ctx: &LevelContext<'_>,
    index: usize,
    position: usize,
    mask: &AtomSet,
) -> CandidateEval {
    let subset: Vec<usize> = mask.iter().collect();
    let cost_start = Instant::now();
    let cost = match ctx.atom_costs {
        Some(w) => fold_atom_costs(w, mask),
        None => ctx.estimator.estimate(&ctx.pool_query.subquery(&subset)),
    };
    let mut eval = CandidateEval { cost, ..Default::default() };
    eval.cost_time = cost_start.elapsed();

    // Cost-based pruning: a subquery costing more than the best found so far
    // cannot lead to the optimum (monotone cost model), so neither it nor its
    // supersets are considered further (no growth).
    if !ctx.exhaustive && cost > ctx.best_cost {
        eval.pruned_by_cost = true;
        return eval;
    }

    let legal = !ctx.navigation_pruning || ctx.graph.is_legal_subset(&subset);
    if legal && ctx.safety.passes(&subset) {
        let candidate = {
            let mut q = ctx.pool_query.subquery(&subset);
            q.name = format!("{}_candidate{}", ctx.original.name, index);
            q
        };
        if candidate.is_safe() {
            eval.checked = true;
            // original ⊆ candidate: the candidate must map into every
            // universal-plan branch (identity fast path on the primary),
            // checked in failure-frequency order so the usual culprit is
            // tried first.
            let containment_start = Instant::now();
            let mut maps_into_plan = true;
            for &ti in ctx.target_order {
                if ctx.branch_targets[ti].mapping_from(&candidate).is_none() {
                    eval.first_failed_target = Some(ti);
                    maps_into_plan = false;
                    break;
                }
            }
            eval.containment_time += containment_start.elapsed();
            if maps_into_plan {
                // candidate ⊆ original: back-chase (memoized) and map the
                // original into every surviving branch.
                let chase_start = Instant::now();
                let seed = subset
                    .iter()
                    .find_map(|&i| ctx.prev_level.get(&mask.without(i)).map(|s| (s, i)));
                let back = match seed {
                    Some((memo, added)) => {
                        eval.cache_hit = true;
                        // Resume from the memoized *resident* branches: the
                        // seed instances thaw with their indexes, statistics
                        // and scan ledgers warm — nothing is re-parsed.
                        chase_resident_with_atoms_compiled(
                            &memo.branches,
                            std::slice::from_ref(&ctx.pool[added]),
                            ctx.deds,
                            ctx.back_chase_opts,
                        )
                    }
                    None => chase_to_resident_compiled(&candidate, ctx.deds, ctx.back_chase_opts),
                };
                eval.chase_time = chase_start.elapsed();
                eval.chase_degradation = Degradation::of_chase(back.stats());
                let confirm_start = Instant::now();
                let memo_seed = if ctx.containment_memo { seed.map(|(m, _)| m) } else { None };
                let (confirmed, verdicts) = confirm_with_memo(
                    ctx.original,
                    &back,
                    memo_seed,
                    ctx.containment_threads,
                    &mut eval,
                );
                eval.containment_time += confirm_start.elapsed();
                if confirmed {
                    eval.found = Some(candidate);
                    return eval; // supersets are not minimal: no growth
                }
                // Not (yet) a reformulation: its supersets are chased next
                // level — hand this chase (and the branch verdicts it
                // produced) back as their memoization seed (position-gated
                // so a wide level cannot hold more chases than the cache
                // budget between evaluation and merge).
                if position < ctx.cache_budget && back.stats().completed && !back.is_empty() {
                    let verdicts = if ctx.containment_memo { verdicts } else { Vec::new() };
                    eval.cache_entry =
                        Some(ContainmentMemo { branches: back.into_branches(), verdicts });
                }
            } else {
                // Antichain dead cone: a homomorphism from any superset into
                // the failed plan branch would restrict to one from this
                // candidate, so every superset fails the same check — none
                // can be a reformulation. Cut the whole cone.
                eval.dead_cone = true;
                return eval;
            }
        }
    }

    eval.grow = if ctx.navigation_pruning {
        ctx.graph.enabled(&subset)
    } else {
        (0..ctx.pool.len()).filter(|&i| !mask.contains(i)).collect()
    };
    eval
}

/// Evaluate every candidate of one BFS level, on `threads` workers when that
/// pays off. Results come back in level order regardless of thread count —
/// each worker writes into its own disjoint slice of the result vector.
/// `base` is the number of candidates inspected before this level (candidate
/// indices, used for naming, continue from it).
fn evaluate_level(
    level: &[AtomSet],
    ctx: &LevelContext<'_>,
    threads: usize,
    base: usize,
) -> Vec<CandidateEval> {
    let threads = threads.max(1).min(level.len());
    if threads <= 1 {
        return level
            .iter()
            .enumerate()
            .map(|(j, mask)| evaluate_candidate(ctx, base + j + 1, j, mask))
            .collect();
    }
    let chunk = level.len().div_ceil(threads);
    let mut evals: Vec<Option<CandidateEval>> = Vec::new();
    evals.resize_with(level.len(), || None);
    std::thread::scope(|scope| {
        for (ci, (masks, out)) in level.chunks(chunk).zip(evals.chunks_mut(chunk)).enumerate() {
            let offset = ci * chunk;
            scope.spawn(move || {
                for (j, mask) in masks.iter().enumerate() {
                    out[j] = Some(evaluate_candidate(ctx, base + offset + j + 1, offset + j, mask));
                }
            });
        }
    });
    evals.into_iter().map(|e| e.expect("every level slot evaluated")).collect()
}

/// Run the backchase.
///
/// `original` is the query being reformulated, `universal_plan` the result of
/// the chase (its `branches`), `proprietary` the set of predicates that may
/// appear in a reformulation, `deds` the dependency set in its shared
/// compiled form ([`CompiledDeps`] — built once per engine, reused by every
/// back-chase here).
pub fn backchase(
    original: &ConjunctiveQuery,
    universal_plan: &UniversalPlan,
    proprietary: &HashSet<Predicate>,
    deds: &CompiledDeps,
    estimator: &dyn CostEstimator,
    options: &BackchaseOptions,
) -> BackchaseOutcome {
    let start = Instant::now();
    let mut outcome = BackchaseOutcome::default();
    if universal_plan.branches.is_empty() {
        outcome.duration = start.elapsed();
        return outcome;
    }
    let primary = universal_plan.primary();
    let pruned_plan =
        if options.prune_parallel_desc { prune_parallel_desc(primary) } else { primary.clone() };

    // Pool of candidate atoms: proprietary atoms of the (pruned) plan.
    let pool: Vec<_> =
        pruned_plan.body.iter().filter(|a| proprietary.contains(&a.predicate)).cloned().collect();
    if pool.is_empty() {
        outcome.duration = start.elapsed();
        return outcome;
    }

    if options.greedy {
        // Explicitly requested greedy minimization (at most one
        // reformulation; see the option's docs for the trade-off).
        let initial = ConjunctiveQuery {
            name: format!("{}_initial", primary.name),
            head: primary.head.clone(),
            body: pool.clone(),
            inequalities: primary.inequalities.clone(),
        };
        if let Some(minimized) = greedy_minimize(
            &initial,
            original,
            &universal_plan.branches,
            deds,
            &options.chase,
            &mut outcome,
        ) {
            let cost = estimator.estimate(&minimized);
            outcome.best = Some((minimized.clone(), cost));
            outcome.minimal.push((minimized, cost));
        }
        outcome.duration = start.elapsed();
        return outcome;
    }

    let pool_query = ConjunctiveQuery {
        name: format!("{}_pool", primary.name),
        head: primary.head.clone(),
        body: pool.clone(),
        inequalities: primary.inequalities.clone(),
    };
    let graph = ReachabilityGraph::new(&pool_query);

    // Precomputed per-candidate machinery (see the module docs).
    //
    // Back-chases invent variables strictly above every pool variable index,
    // so a cached chase can later absorb any further pool atom without an
    // invented variable colliding with a pool variable of the same base name.
    let max_pool_index = pool_query
        .variables()
        .iter()
        .map(|v| v.index)
        .chain(original.variables().iter().map(|v| v.index))
        .max()
        .unwrap_or(0);
    let back_chase_opts = ChaseOptions {
        min_fresh_index: options.chase.min_fresh_index.max(max_pool_index + 1),
        ..options.chase.clone()
    };
    let branch_targets: Vec<ContainmentTarget> =
        universal_plan.branches.iter().map(ContainmentTarget::new).collect();
    let atom_costs = estimator.atom_costs(&pool_query);
    let safety = SafetyPrefilter::new(&pool_query, &pool);

    // Level-synchronous breadth-first enumeration by subset size.
    let mut visited: HashSet<AtomSet> = HashSet::new();
    let mut frontier: Vec<AtomSet> = Vec::new();
    let mut found: Vec<AtomSet> = Vec::new();
    let mut best_cost = f64::INFINITY;
    // Memoized back-chases (+ containment verdicts) of the previous BFS size
    // level.
    let mut prev_level: HashMap<AtomSet, ContainmentMemo> = HashMap::new();
    // Failure-frequency ordering of the plan-branch containment targets:
    // how often each target was the first to reject a candidate (all levels
    // so far), and the resulting check order (most failures first, index
    // tiebreak). Updated between levels from the deterministic merge, so it
    // is identical for every thread count.
    let mut target_fail_counts: Vec<usize> = vec![0; branch_targets.len()];
    let mut target_order: Vec<usize> = (0..branch_targets.len()).collect();

    let seeds: Vec<usize> =
        if options.navigation_pruning { graph.roots.clone() } else { (0..pool.len()).collect() };
    for s in seeds {
        let mask = AtomSet::singleton(s);
        if visited.insert(mask.clone()) {
            frontier.push(mask);
        }
    }

    while !frontier.is_empty() {
        // Anytime deadline, checked level-synchronously: an expired deadline
        // stops the enumeration *between* levels, keeping everything found
        // so far — never mid-level, so an undegraded run is byte-identical
        // for any thread count.
        if options.deadline.map(|d| Instant::now() >= d).unwrap_or(false) {
            outcome.truncated = true;
            outcome.degradation =
                Degradation::merge(outcome.degradation, Some(Degradation::DeadlineExceeded));
            break;
        }
        // Minimality pruning: supersets of a found reformulation are not
        // minimal and are dropped without counting as inspected. (Within a
        // level no candidate can be a strict superset of another of the same
        // size, so found reformulations of previous levels suffice.)
        let mut level: Vec<AtomSet> = std::mem::take(&mut frontier)
            .into_iter()
            .filter(|m| !found.iter().any(|f| f.is_subset_of(m)))
            .collect();
        let remaining = options.max_candidates.saturating_sub(outcome.candidates_inspected);
        if level.len() > remaining {
            outcome.truncated = true;
            outcome.degradation =
                Degradation::merge(outcome.degradation, Some(Degradation::CandidateBudget));
            level.truncate(remaining);
        }
        if level.is_empty() {
            break;
        }

        // Spare thread capacity: a level narrower than the pool hands the
        // leftover workers to each candidate's per-branch containment checks.
        let threads = options.threads.max(1);
        let containment_threads = (threads / level.len().max(1)).max(1);
        let ctx = LevelContext {
            original,
            pool: &pool,
            pool_query: &pool_query,
            graph: &graph,
            branch_targets: &branch_targets,
            target_order: &target_order,
            atom_costs: atom_costs.as_deref(),
            estimator,
            deds,
            back_chase_opts: &back_chase_opts,
            safety: &safety,
            prev_level: &prev_level,
            navigation_pruning: options.navigation_pruning,
            exhaustive: options.exhaustive,
            containment_memo: options.containment_memo,
            containment_threads,
            best_cost,
            cache_budget: options.chase_cache_per_level,
        };
        let evals = evaluate_level(&level, &ctx, options.threads, outcome.candidates_inspected);

        // Deterministic merge, in level order.
        let mut cur_level: HashMap<AtomSet, ContainmentMemo> = HashMap::new();
        for (mask, eval) in level.iter().zip(evals) {
            outcome.candidates_inspected += 1;
            outcome.cost_phase += eval.cost_time;
            if eval.pruned_by_cost {
                outcome.pruned_by_cost += 1;
                continue;
            }
            outcome.chase_phase += eval.chase_time;
            outcome.containment_phase += eval.containment_time;
            outcome.containment_success_transfers += eval.success_transfers;
            outcome.containment_delta_searches += eval.delta_searches;
            if eval.checked {
                outcome.equivalence_checks += 1;
            }
            outcome.degradation = Degradation::merge(outcome.degradation, eval.chase_degradation);
            if eval.cache_hit {
                outcome.chase_cache_hits += 1;
            }
            if let Some(ti) = eval.first_failed_target {
                target_fail_counts[ti] += 1;
            }
            if eval.dead_cone {
                outcome.containment_dead_cone_skips += 1;
                continue; // no superset can be a reformulation: no growth
            }
            if let Some(candidate) = eval.found {
                found.push(mask.clone());
                if eval.cost < best_cost {
                    best_cost = eval.cost;
                    outcome.best = Some((candidate.clone(), eval.cost));
                }
                outcome.minimal.push((candidate, eval.cost));
                continue; // supersets are not minimal
            }
            if let Some(cached) = eval.cache_entry {
                if cur_level.len() < options.chase_cache_per_level {
                    cur_level.insert(mask.clone(), cached);
                }
            }
            // Grow the subset by one atom.
            for g in eval.grow {
                let next = mask.with(g);
                if visited.insert(next.clone()) {
                    frontier.push(next);
                }
            }
        }
        prev_level = cur_level;
        // Re-rank the plan-branch targets for the next level by recorded
        // first-failure frequency (stable: index breaks ties).
        target_order.sort_by_key(|&ti| (std::cmp::Reverse(target_fail_counts[ti]), ti));
        if outcome.truncated {
            break;
        }
    }

    outcome.duration = start.elapsed();
    outcome
}

/// Greedy minimization (the explicit [`BackchaseOptions::greedy`] opt-in):
/// repeatedly drop atoms from the initial reformulation while it remains a
/// reformulation.
fn greedy_minimize(
    initial: &ConjunctiveQuery,
    original: &ConjunctiveQuery,
    branches: &[ConjunctiveQuery],
    deds: &CompiledDeps,
    chase_opts: &ChaseOptions,
    outcome: &mut BackchaseOutcome,
) -> Option<ConjunctiveQuery> {
    outcome.equivalence_checks += 1;
    if !is_reformulation(initial, original, branches, deds, chase_opts) {
        return None;
    }
    let mut current = initial.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..current.body.len() {
            if current.body.len() == 1 {
                break;
            }
            let mut cand = current.clone();
            cand.body.remove(i);
            outcome.equivalence_checks += 1;
            if is_reformulation(&cand, original, branches, deds, chase_opts) {
                current = cand;
                changed = true;
                break;
            }
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::chase_to_universal_plan;
    use mars_cost::WeightedAtomEstimator;
    use mars_cq::atom::builders::{child, root};
    use mars_cq::ded::view_dependencies;
    use mars_cq::{Atom, Ded, Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    /// The running Section 2.3 example: public schema {A, B}, storage {V},
    /// LAV view V(x,z) :- A(x,y), B(y,z), semantic constraint (ind).
    fn section_2_3_setup() -> (ConjunctiveQuery, Vec<Ded>, HashSet<Predicate>) {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![Variable::named("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let deds = vec![ind, c_v, b_v];
        let proprietary: HashSet<Predicate> = [Predicate::new("V")].into_iter().collect();
        (q, deds, proprietary)
    }

    /// Section 2.3 setup with a second, redundant proprietary copy of A.
    fn redundant_setup() -> (ConjunctiveQuery, Vec<Ded>, HashSet<Predicate>) {
        let (q, mut deds, _) = section_2_3_setup();
        let defa = ConjunctiveQuery::new("Astored")
            .with_head(vec![t("x"), t("y")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let (c_a, b_a) = view_dependencies("Astored", &defa);
        deds.push(c_a);
        deds.push(b_a);
        let proprietary: HashSet<Predicate> =
            [Predicate::new("V"), Predicate::new("Astored")].into_iter().collect();
        (q, deds, proprietary)
    }

    fn run(
        q: &ConjunctiveQuery,
        deds: &[Ded],
        proprietary: &HashSet<Predicate>,
        options: &BackchaseOptions,
    ) -> BackchaseOutcome {
        let compiled = CompiledDeps::new(deds);
        let up = chase_to_universal_plan_compiled(q, &compiled, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        backchase(q, &up, proprietary, &compiled, &est, options)
    }

    #[test]
    fn section_2_3_backchase_finds_view_rewriting() {
        let (q, deds, proprietary) = section_2_3_setup();
        let out = run(&q, &deds, &proprietary, &BackchaseOptions::default());
        assert_eq!(out.minimal.len(), 1);
        assert!(!out.truncated);
        let (best, _) = out.best.as_ref().unwrap();
        assert_eq!(best.body.len(), 1);
        assert_eq!(best.body[0].predicate.name(), "V");
    }

    #[test]
    fn initial_reformulation_restricts_to_proprietary_atoms() {
        let (q, deds, proprietary) = section_2_3_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let initial = initial_reformulation(up.primary(), &proprietary);
        assert_eq!(initial.body.len(), 1);
        assert_eq!(initial.body[0].predicate.name(), "V");
    }

    /// A redundant-storage scenario: the proprietary schema stores the public
    /// relation A itself *and* the view V. Both the A-only and the V-only
    /// rewritings are minimal reformulations; the best one is chosen by cost.
    #[test]
    fn redundant_storage_yields_multiple_minimal_reformulations() {
        let (q, deds, proprietary) = redundant_setup();
        let out = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert_eq!(out.minimal.len(), 2, "both the view and the stored copy are minimal");
        let best = out.best.as_ref().unwrap();
        assert_eq!(best.0.body.len(), 1);
        // Cost pruning (non-exhaustive) still finds at least one and the best.
        let pruned = run(&q, &deds, &proprietary, &BackchaseOptions::default());
        assert!(pruned.best.is_some());
    }

    #[test]
    fn no_reformulation_without_supporting_constraint() {
        // Without (ind) the view cannot answer Q.
        let (q, deds, proprietary) = section_2_3_setup();
        let deds_no_ind: Vec<Ded> = deds.iter().skip(1).cloned().collect();
        let out = run(&q, &deds_no_ind, &proprietary, &BackchaseOptions::default());
        assert!(out.minimal.is_empty());
        assert!(out.best.is_none());
    }

    #[test]
    fn unsafe_subqueries_are_rejected() {
        // Head variable x must be bound by the reformulation body.
        let (q, deds, _) = section_2_3_setup();
        // Make only B proprietary: B(y,z) does not bind x, so no reformulation.
        let proprietary: HashSet<Predicate> = [Predicate::new("B")].into_iter().collect();
        let out = run(&q, &deds, &proprietary, &BackchaseOptions::default());
        assert!(out.minimal.is_empty());
    }

    #[test]
    fn cost_pruning_reduces_inspected_candidates() {
        let (q, deds, proprietary) = redundant_setup();
        let exhaustive = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        let pruned = run(&q, &deds, &proprietary, &BackchaseOptions::default());
        assert!(pruned.candidates_inspected <= exhaustive.candidates_inspected);
        assert_eq!(
            pruned.best.as_ref().map(|(_, c)| *c),
            exhaustive.best.as_ref().map(|(_, c)| *c),
            "pruning must not change the optimum under a monotone cost model"
        );
    }

    /// Regression: a truncated enumeration must be distinguishable from a
    /// complete one.
    #[test]
    fn truncation_is_reported() {
        let (q, deds, proprietary) = redundant_setup();
        let opts = BackchaseOptions { max_candidates: 1, ..BackchaseOptions::exhaustive() };
        let out = run(&q, &deds, &proprietary, &opts);
        assert!(out.truncated, "hitting max_candidates must set the flag");
        assert!(out.minimal.len() < 2);
        let complete = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert!(!complete.truncated);
    }

    /// The candidate budget degrades anytime-style: whatever was found before
    /// the cut is kept (tagged, not thrown away as an error).
    #[test]
    fn candidate_budget_degrades_to_best_so_far() {
        let (q, deds, proprietary) = redundant_setup();
        let opts = BackchaseOptions { max_candidates: 1, ..BackchaseOptions::exhaustive() };
        let out = run(&q, &deds, &proprietary, &opts);
        assert!(out.truncated);
        assert_eq!(out.degradation, Some(Degradation::CandidateBudget));
        assert_eq!(out.minimal.len(), 1, "the anytime result keeps what was found before the cut");
        assert!(out.best.is_some());
        let complete = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert_eq!(complete.degradation, None);
        assert!(!complete.truncated);
    }

    /// An already-expired deadline stops the enumeration before the first
    /// level — no error, an empty tagged outcome (the universal plan upstream
    /// remains the sound floor of the ladder).
    #[test]
    fn expired_deadline_yields_anytime_degradation() {
        let (q, deds, proprietary) = redundant_setup();
        let opts = BackchaseOptions {
            deadline: Some(Instant::now() - Duration::from_secs(1)),
            ..BackchaseOptions::exhaustive()
        };
        let out = run(&q, &deds, &proprietary, &opts);
        assert!(out.truncated);
        assert_eq!(out.degradation, Some(Degradation::DeadlineExceeded));
        assert!(out.minimal.is_empty());
        assert_eq!(out.candidates_inspected, 0);
        // A generous deadline is byte-identical to no deadline at all.
        let generous = BackchaseOptions {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..BackchaseOptions::exhaustive()
        };
        let bounded = run(&q, &deds, &proprietary, &generous);
        let unbounded = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert_eq!(
            format!("{:?}", strip_duration(&bounded)),
            format!("{:?}", strip_duration(&unbounded))
        );
    }

    /// Degradation reasons merge by severity: a deadline stop outranks the
    /// candidate budget, which outranks a size ceiling.
    #[test]
    fn degradation_merge_keeps_the_most_severe_reason() {
        use Degradation::*;
        assert_eq!(Degradation::merge(None, None), None);
        assert_eq!(Degradation::merge(Some(AtomCeiling), None), Some(AtomCeiling));
        assert_eq!(Degradation::merge(None, Some(CandidateBudget)), Some(CandidateBudget));
        assert_eq!(
            Degradation::merge(Some(CandidateBudget), Some(DeadlineExceeded)),
            Some(DeadlineExceeded)
        );
        assert_eq!(
            Degradation::merge(Some(DeadlineExceeded), Some(AtomCeiling)),
            Some(DeadlineExceeded)
        );
    }

    /// Regression for the memoized back-chase: resuming from a cached subset
    /// chase must find exactly the reformulations a from-scratch chase finds.
    #[test]
    fn memoized_and_scratch_backchase_agree() {
        let (q, deds, proprietary) = redundant_setup();
        let memo = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        let opts = BackchaseOptions { chase_cache_per_level: 0, ..BackchaseOptions::exhaustive() };
        let scratch = run(&q, &deds, &proprietary, &opts);
        assert_eq!(scratch.chase_cache_hits, 0);
        assert_eq!(memo.minimal.len(), scratch.minimal.len());
        assert_eq!(memo.best.as_ref().map(|(_, c)| *c), scratch.best.as_ref().map(|(_, c)| *c));
    }

    /// The determinism contract of the parallel engine: any thread count
    /// produces an outcome byte-identical to the sequential run — same
    /// reformulations (names, bodies, costs, order), same statistics, same
    /// flags.
    #[test]
    fn parallel_and_sequential_backchase_are_identical() {
        let (q, deds, proprietary) = redundant_setup();
        for exhaustive in [false, true] {
            let base = BackchaseOptions {
                exhaustive,
                ..if exhaustive { BackchaseOptions::exhaustive() } else { Default::default() }
            };
            let seq = run(&q, &deds, &proprietary, &base);
            for threads in [2usize, 4, 7] {
                let par = run(&q, &deds, &proprietary, &base.clone().with_threads(threads));
                assert_eq!(
                    format!("{:?}", strip_duration(&seq)),
                    format!("{:?}", strip_duration(&par)),
                    "threads = {threads}, exhaustive = {exhaustive}"
                );
            }
        }
    }

    /// `outcome` with the wall-clock fields zeroed (everything else must be
    /// bit-for-bit reproducible across thread counts).
    fn strip_duration(outcome: &BackchaseOutcome) -> BackchaseOutcome {
        BackchaseOutcome {
            duration: Duration::default(),
            cost_phase: Duration::default(),
            chase_phase: Duration::default(),
            containment_phase: Duration::default(),
            ..outcome.clone()
        }
    }

    /// [`strip_duration`] with the containment-reuse counters additionally
    /// zeroed — the shape compared between memoized and scratch containment
    /// (like `chase_cache_hits` for the chase memo, the reuse counters are
    /// the *only* fields allowed to differ).
    fn strip_memo_counters(outcome: &BackchaseOutcome) -> BackchaseOutcome {
        BackchaseOutcome {
            containment_success_transfers: 0,
            containment_delta_searches: 0,
            ..strip_duration(outcome)
        }
    }

    /// Memoized containment (success transfer + delta-restricted search)
    /// must be byte-identical to scratch containment on everything except
    /// the reuse counters, at every thread count.
    #[test]
    fn scratch_containment_agrees_with_memoized() {
        let (q, deds, proprietary) = redundant_setup();
        for exhaustive in [false, true] {
            let memo = BackchaseOptions {
                exhaustive,
                ..if exhaustive { BackchaseOptions::exhaustive() } else { Default::default() }
            };
            let scratch = BackchaseOptions { containment_memo: false, ..memo.clone() };
            let memoized = run(&q, &deds, &proprietary, &memo);
            for threads in [1usize, 3] {
                let scratched =
                    run(&q, &deds, &proprietary, &scratch.clone().with_threads(threads));
                assert_eq!(scratched.containment_success_transfers, 0);
                assert_eq!(scratched.containment_delta_searches, 0);
                assert_eq!(
                    format!("{:?}", strip_memo_counters(&memoized)),
                    format!("{:?}", strip_memo_counters(&scratched)),
                    "threads = {threads}, exhaustive = {exhaustive}"
                );
            }
        }
    }

    /// The phase profiler partitions the per-candidate work: the recorded
    /// phases are non-zero where work happened and sum to at most the total
    /// backchase duration.
    #[test]
    fn phase_profile_is_recorded() {
        let (q, deds, proprietary) = redundant_setup();
        let out = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert!(out.chase_phase > Duration::default());
        assert!(out.containment_phase > Duration::default());
        assert!(out.cost_phase + out.chase_phase + out.containment_phase <= out.duration);
    }

    /// Regression for the removed 128-atom ceiling: a candidate pool wider
    /// than 128 atoms is enumerated exhaustively (no silent greedy fallback,
    /// no truncation flag). The pool is a 139-atom navigation chain, so the
    /// reachability pruning keeps the search space linear: the prefixes.
    #[test]
    fn pool_wider_than_128_atoms_is_enumerated_exhaustively() {
        let steps = 138usize;
        let mut body = vec![root(t("x0"))];
        for i in 0..steps {
            body.push(child(t(&format!("x{i}")), t(&format!("x{}", i + 1))));
        }
        let q =
            ConjunctiveQuery::new("deep").with_head(vec![t(&format!("x{steps}"))]).with_body(body);
        let proprietary: HashSet<Predicate> =
            [Predicate::new("root"), Predicate::new("child")].into_iter().collect();
        let compiled = CompiledDeps::new(&[]);
        let up = chase_to_universal_plan_compiled(&q, &compiled, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out =
            backchase(&q, &up, &proprietary, &compiled, &est, &BackchaseOptions::exhaustive());
        assert!(!out.truncated, "a wide pool must enumerate completely, not truncate");
        assert_eq!(out.minimal.len(), 1, "only the full chain binds the head");
        assert_eq!(out.minimal[0].0.body.len(), steps + 1);
        // Navigation pruning keeps it linear: one prefix per size.
        assert_eq!(out.candidates_inspected, steps + 1);
        // And the parallel engine agrees on the wide pool too.
        let par = backchase(
            &q,
            &up,
            &proprietary,
            &compiled,
            &est,
            &BackchaseOptions::exhaustive().with_threads(4),
        );
        assert_eq!(format!("{:?}", strip_duration(&out)), format!("{:?}", strip_duration(&par)));
    }

    /// Greedy minimization only runs as an explicit opt-in, and still finds
    /// a correct (single) reformulation.
    #[test]
    fn greedy_minimization_is_an_explicit_opt_in() {
        let (q, deds, proprietary) = redundant_setup();
        let greedy = BackchaseOptions { greedy: true, ..Default::default() };
        let out = run(&q, &deds, &proprietary, &greedy);
        assert_eq!(out.minimal.len(), 1, "greedy yields at most one reformulation");
        assert!(!out.truncated, "greedy is requested incompleteness, not truncation");
        let (m, _) = &out.minimal[0];
        assert_eq!(m.body.len(), 1, "greedy minimizes down to a single atom here");
        // The exhaustive default, by contrast, enumerates both.
        let full = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert_eq!(full.minimal.len(), 2);
    }
}
