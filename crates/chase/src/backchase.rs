//! The backchase: bottom-up enumeration of subqueries of the universal plan
//! with cost-based pruning (Section 2.3) and the XML-specific navigation
//! pruning of Section 3.2.
//!
//! Reformulations may only mention the *proprietary* schema, so the
//! enumeration is restricted to the subquery `M` of the universal plan induced
//! by proprietary-schema atoms (the *initial reformulation*); all minimal
//! reformulations are subqueries of `M`. Subqueries are inspected in order of
//! increasing size; when one is found equivalent to the original query it is a
//! *minimal* reformulation (no smaller subquery was equivalent), the best cost
//! is updated, and supersets are pruned.
//!
//! # Engine structure
//!
//! The enumeration is a **level-synchronous** BFS over candidate atom sets
//! ([`AtomSet`] — growable bitsets, so pools wider than 128 atoms enumerate
//! exhaustively; the old `u128` ceiling and its silent greedy fallback are
//! gone). Each level holds every candidate of one subquery size, and a
//! candidate's evaluation reads only state frozen at the start of its level:
//! the memoized chases of the *previous* level, the best cost and the minimal
//! reformulations found on previous levels. Evaluations are therefore
//! independent and run on a [`std::thread::scope`] worker pool
//! ([`BackchaseOptions::threads`]); results are merged back **in level
//! order**, so the outcome is byte-identical for any thread count — parallel
//! and sequential runs agree on every reformulation, statistic and flag.
//!
//! The expensive step per candidate is the "back" chase (the `candidate ⊆
//! original` half of the equivalence check). Four optimizations keep it off
//! the critical path:
//!
//! * **Shared compilation**: the dependency set arrives as a
//!   [`CompiledDeps`] built once per engine; no chase anywhere in the
//!   enumeration recompiles it.
//! * **Resident chase memoization**: completed back-chases are cached keyed
//!   on the candidate's [`AtomSet`], as *resident* branches
//!   ([`ResidentBranch`]) — frozen symbolic instances that keep their column
//!   indexes, distinct statistics and scan-work ledgers. A candidate grown
//!   from an already-chased subset thaws the cached instances and resumes
//!   with the one new atom ([`chase_resident_with_atoms_compiled`]) instead
//!   of re-parsing a memoized query and re-deriving every access path — the
//!   seed is already at fixpoint, so only consequences of the new atom fire.
//!   Because the BFS visits subsets level by level, only the previous and
//!   current size levels are retained.
//! * **O(1) subset costs**: for additive cost models
//!   ([`CostEstimator::atom_costs`]) the per-atom costs of the pool are
//!   computed once and a candidate's cost is a bitset fold
//!   ([`fold_atom_costs`]).
//! * **Prepared containment targets**: the `original ⊆ candidate` half checks
//!   the candidate against every universal-plan branch; the branches' atom
//!   indexes are built once ([`ContainmentTarget`]), and subqueries of a
//!   branch hit the identity fast path.

use crate::chase::{
    chase_resident_with_atoms_compiled, chase_to_resident_compiled,
    chase_to_universal_plan_compiled, ChaseOptions, ResidentBranch, ResidentChase, UniversalPlan,
};
use crate::compiled::CompiledDeps;
use crate::reach::{prune_parallel_desc, ReachabilityGraph};
use mars_cost::{fold_atom_costs, CostEstimator};
use mars_cq::containment::{containment_mapping, ContainmentTarget};
use mars_cq::{Atom, AtomSet, ConjunctiveQuery, Predicate, Variable};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Options controlling the backchase.
#[derive(Clone, Debug)]
pub struct BackchaseOptions {
    /// Enumerate *all* minimal reformulations, even those costing more than
    /// the best found so far. Needed by the experiments that count
    /// reformulations (and by the paper's proposed cost-model testbed); when
    /// `false`, cost-based pruning discards expensive candidates early.
    pub exhaustive: bool,
    /// Apply pruning criterion 1 (drop parallel `desc` atoms) to the pool.
    pub prune_parallel_desc: bool,
    /// Apply criteria 2–3 (navigation contiguity + entry-point anchoring).
    pub navigation_pruning: bool,
    /// Upper bound on the number of candidate subqueries inspected. When the
    /// bound stops the enumeration, [`BackchaseOutcome::truncated`] is set.
    pub max_candidates: usize,
    /// Upper bound on the number of memoized back-chase results retained per
    /// BFS size level (memory guard for very wide pools).
    pub chase_cache_per_level: usize,
    /// Number of worker threads evaluating the candidates of a BFS level.
    /// `1` (the default) runs sequentially; any value produces byte-identical
    /// outcomes (deterministic in-order merge of per-level results).
    pub threads: usize,
    /// Replace subset enumeration with greedy minimization of the initial
    /// reformulation: repeatedly drop atoms while the query stays a
    /// reformulation. Yields **at most one** reformulation, never the full
    /// minimal set, and it need not be the optimum — an explicit trade of
    /// completeness for speed on very wide pools (opt in through
    /// `MarsOptions::with_greedy_minimization`). This is never applied
    /// silently: without the opt-in every pool, however wide, is enumerated
    /// exhaustively.
    pub greedy: bool,
    /// Chase options used for the "back" chases (equivalence checks).
    pub chase: ChaseOptions,
}

impl Default for BackchaseOptions {
    fn default() -> Self {
        BackchaseOptions {
            exhaustive: false,
            prune_parallel_desc: true,
            navigation_pruning: true,
            max_candidates: 200_000,
            chase_cache_per_level: 8_192,
            threads: 1,
            greedy: false,
            chase: ChaseOptions::default(),
        }
    }
}

impl BackchaseOptions {
    /// Options that enumerate every minimal reformulation.
    pub fn exhaustive() -> BackchaseOptions {
        BackchaseOptions { exhaustive: true, ..Default::default() }
    }

    /// Builder: evaluate each BFS level on `n` worker threads.
    pub fn with_threads(mut self, n: usize) -> BackchaseOptions {
        self.threads = n.max(1);
        self
    }
}

/// Result of the backchase.
#[derive(Clone, Debug, Default)]
pub struct BackchaseOutcome {
    /// All minimal reformulations found (query + estimated cost), in the
    /// order they were discovered (increasing subquery size).
    pub minimal: Vec<(ConjunctiveQuery, f64)>,
    /// The minimum-cost reformulation.
    pub best: Option<(ConjunctiveQuery, f64)>,
    /// Number of candidate subqueries inspected.
    pub candidates_inspected: usize,
    /// Number of (chase-based) equivalence checks performed.
    pub equivalence_checks: usize,
    /// Number of back-chases resumed from a memoized subset chase instead of
    /// run from scratch.
    pub chase_cache_hits: usize,
    /// Number of candidates discarded by cost-based pruning.
    pub pruned_by_cost: usize,
    /// `true` when [`BackchaseOptions::max_candidates`] stopped the
    /// breadth-first enumeration before it exhausted the search space: the
    /// reported `minimal` set may then be incomplete and (in exhaustive
    /// mode) `best` may not be the optimum. A complete enumeration leaves
    /// this `false`. This is the only truncation the engine performs — pool
    /// width no longer truncates anything (the former 128-atom ceiling), and
    /// the explicitly requested [`BackchaseOptions::greedy`] mode documents
    /// its own incompleteness rather than reporting it here.
    pub truncated: bool,
    /// Wall-clock duration of the backchase.
    pub duration: Duration,
}

/// The *initial reformulation*: the largest subquery of the universal plan
/// induced by proprietary-schema atoms. If any reformulation exists, this is
/// one (not necessarily minimal), and every minimal reformulation is a
/// subquery of it.
pub fn initial_reformulation(
    universal_plan: &ConjunctiveQuery,
    proprietary: &HashSet<Predicate>,
) -> ConjunctiveQuery {
    let indices: Vec<usize> = universal_plan
        .body
        .iter()
        .enumerate()
        .filter(|(_, a)| proprietary.contains(&a.predicate))
        .map(|(i, _)| i)
        .collect();
    let mut q = universal_plan.subquery(&indices);
    q.name = format!("{}_initial", universal_plan.name);
    q
}

/// Is `candidate` (a subquery of the universal plan, same head) equivalent to
/// the original query under the dependencies?
///
/// * `original ⊆ candidate` holds iff `candidate` maps into every branch of
///   the (already computed) universal plan preserving the head — for
///   subqueries of a branch this is the identity mapping, but we check
///   explicitly so that multi-branch (disjunctive) plans are handled.
/// * `candidate ⊆ original` holds iff chasing `candidate` ("back") yields a
///   plan into which the original maps preserving the head.
fn is_reformulation(
    candidate: &ConjunctiveQuery,
    original: &ConjunctiveQuery,
    universal_plan_branches: &[ConjunctiveQuery],
    deds: &CompiledDeps,
    chase_opts: &ChaseOptions,
) -> bool {
    if !candidate.is_safe() {
        return false;
    }
    // original ⊆ candidate
    if !universal_plan_branches.iter().all(|b| containment_mapping(candidate, b).is_some()) {
        return false;
    }
    // candidate ⊆ original
    let back: UniversalPlan = chase_to_universal_plan_compiled(candidate, deds, chase_opts);
    back_chase_confirms(original, &back)
}

/// The `candidate ⊆ original` half of the equivalence test, over a back
/// chase that has already been computed (from scratch or resumed from a
/// memoized subset): the chase must have completed with at least one
/// surviving branch, and the original must map into every branch preserving
/// the head. Shared by [`is_reformulation`] (greedy opt-in) and the
/// enumerating BFS so the two paths cannot drift.
fn back_chase_confirms(original: &ConjunctiveQuery, back: &UniversalPlan) -> bool {
    back.stats.completed
        && !back.branches.is_empty()
        && back.branches.iter().all(|b| containment_mapping(original, b).is_some())
}

/// Chased branches of a candidate, cached for reuse by its supersets.
///
/// Kept **resident** ([`ResidentBranch`]): the frozen symbolic instances
/// carry their warm column indexes, distinct statistics and scan-work
/// ledgers, so a superset's resumed chase thaws them instead of re-parsing a
/// memoized `ConjunctiveQuery` from scratch and re-deriving every access
/// path.
type ChasedBranches = Vec<ResidentBranch>;

/// [`back_chase_confirms`] over a resident chase: completed, at least one
/// surviving branch, and the original maps into every branch preserving the
/// head. Containment is invariant under the branch naming, so the rendered
/// queries use a fixed placeholder name.
fn resident_confirms(original: &ConjunctiveQuery, back: &ResidentChase) -> bool {
    back.stats().completed
        && !back.is_empty()
        && back
            .branches()
            .iter()
            .all(|b| containment_mapping(original, &b.to_query("back")).is_some())
}

/// Head-variable coverage prefilter: safety as a bitset fold over the head
/// variables — exactly the `is_safe()` condition (inequality variables are
/// NOT required: `subquery` projects away inequalities its atoms do not
/// cover). More than 63 head variables disable the prefilter (every
/// candidate passes) and `candidate.is_safe()` does the gating.
struct SafetyPrefilter {
    active: bool,
    full: u64,
    per_atom: Vec<u64>,
}

impl SafetyPrefilter {
    fn new(pool_query: &ConjunctiveQuery, pool: &[Atom]) -> SafetyPrefilter {
        let safety_vars: Vec<Variable> = pool_query.head_variables().into_iter().collect();
        let active = safety_vars.len() < 64;
        let full = if active { (1u64 << safety_vars.len()) - 1 } else { 0 };
        let per_atom: Vec<u64> = pool
            .iter()
            .map(|a| {
                safety_vars
                    .iter()
                    .take(63)
                    .enumerate()
                    .filter(|(_, v)| a.mentions(**v))
                    .fold(0u64, |acc, (j, _)| acc | (1 << j))
            })
            .collect();
        SafetyPrefilter { active, full, per_atom }
    }

    fn passes(&self, subset: &[usize]) -> bool {
        !self.active || subset.iter().fold(0u64, |acc, &i| acc | self.per_atom[i]) == self.full
    }
}

/// Everything a candidate evaluation reads — all of it frozen for the
/// duration of one BFS level, which is what makes the per-level parallelism
/// deterministic (workers share this by reference; nothing is written until
/// the in-order merge).
struct LevelContext<'a> {
    original: &'a ConjunctiveQuery,
    pool: &'a [Atom],
    pool_query: &'a ConjunctiveQuery,
    graph: &'a ReachabilityGraph,
    branch_targets: &'a [ContainmentTarget],
    atom_costs: Option<&'a [f64]>,
    estimator: &'a dyn CostEstimator,
    deds: &'a CompiledDeps,
    back_chase_opts: &'a ChaseOptions,
    safety: &'a SafetyPrefilter,
    /// Memoized back-chases of the previous BFS level (read-only).
    prev_level: &'a HashMap<AtomSet, ChasedBranches>,
    navigation_pruning: bool,
    exhaustive: bool,
    /// Best reformulation cost as of the end of the previous level. Frozen
    /// for the whole level — the price of thread-count-independent results:
    /// a reformulation discovered mid-level cannot cost-prune its own level,
    /// only the next one. Sound (monotone cost model) and bounded: at most
    /// one level of same-size candidates is evaluated without the tighter
    /// bound.
    best_cost: f64,
    /// Cache budget ([`BackchaseOptions::chase_cache_per_level`]). Only the
    /// first `cache_budget` candidates of a level may return a chase for
    /// memoization, which bounds the memory held between evaluation and
    /// merge by the budget instead of by the level width.
    cache_budget: usize,
}

/// What evaluating one candidate produced; merged in level order.
#[derive(Default)]
struct CandidateEval {
    cost: f64,
    pruned_by_cost: bool,
    /// An equivalence check (the chase-based test) ran.
    checked: bool,
    /// The back-chase resumed from a memoized subset chase.
    cache_hit: bool,
    /// The candidate is a minimal reformulation.
    found: Option<ConjunctiveQuery>,
    /// Completed (non-reformulation) chase to memoize for the next level.
    cache_entry: Option<ChasedBranches>,
    /// Pool indices the BFS may grow this candidate by.
    grow: Vec<usize>,
}

/// Evaluate one candidate against the frozen level context. Pure: reads only
/// `ctx`, writes nothing shared.
fn evaluate_candidate(
    ctx: &LevelContext<'_>,
    index: usize,
    position: usize,
    mask: &AtomSet,
) -> CandidateEval {
    let subset: Vec<usize> = mask.iter().collect();
    let cost = match ctx.atom_costs {
        Some(w) => fold_atom_costs(w, mask),
        None => ctx.estimator.estimate(&ctx.pool_query.subquery(&subset)),
    };
    let mut eval = CandidateEval { cost, ..Default::default() };

    // Cost-based pruning: a subquery costing more than the best found so far
    // cannot lead to the optimum (monotone cost model), so neither it nor its
    // supersets are considered further (no growth).
    if !ctx.exhaustive && cost > ctx.best_cost {
        eval.pruned_by_cost = true;
        return eval;
    }

    let legal = !ctx.navigation_pruning || ctx.graph.is_legal_subset(&subset);
    if legal && ctx.safety.passes(&subset) {
        let candidate = {
            let mut q = ctx.pool_query.subquery(&subset);
            q.name = format!("{}_candidate{}", ctx.original.name, index);
            q
        };
        if candidate.is_safe() {
            eval.checked = true;
            // original ⊆ candidate: the candidate must map into every
            // universal-plan branch (identity fast path on the primary).
            let maps_into_plan =
                ctx.branch_targets.iter().all(|t| t.mapping_from(&candidate).is_some());
            if maps_into_plan {
                // candidate ⊆ original: back-chase (memoized) and map the
                // original into every surviving branch.
                let seed = subset
                    .iter()
                    .find_map(|&i| ctx.prev_level.get(&mask.without(i)).map(|s| (s, i)));
                let back = match seed {
                    Some((seed_branches, added)) => {
                        eval.cache_hit = true;
                        // Resume from the memoized *resident* branches: the
                        // seed instances thaw with their indexes, statistics
                        // and scan ledgers warm — nothing is re-parsed.
                        chase_resident_with_atoms_compiled(
                            seed_branches,
                            std::slice::from_ref(&ctx.pool[added]),
                            ctx.deds,
                            ctx.back_chase_opts,
                        )
                    }
                    None => chase_to_resident_compiled(&candidate, ctx.deds, ctx.back_chase_opts),
                };
                if resident_confirms(ctx.original, &back) {
                    eval.found = Some(candidate);
                    return eval; // supersets are not minimal: no growth
                }
                // Not (yet) a reformulation: its supersets are chased next
                // level — hand this chase back as their memoization seed
                // (position-gated so a wide level cannot hold more chases
                // than the cache budget between evaluation and merge).
                if position < ctx.cache_budget && back.stats().completed && !back.is_empty() {
                    eval.cache_entry = Some(back.into_branches());
                }
            }
        }
    }

    eval.grow = if ctx.navigation_pruning {
        ctx.graph.enabled(&subset)
    } else {
        (0..ctx.pool.len()).filter(|&i| !mask.contains(i)).collect()
    };
    eval
}

/// Evaluate every candidate of one BFS level, on `threads` workers when that
/// pays off. Results come back in level order regardless of thread count —
/// each worker writes into its own disjoint slice of the result vector.
/// `base` is the number of candidates inspected before this level (candidate
/// indices, used for naming, continue from it).
fn evaluate_level(
    level: &[AtomSet],
    ctx: &LevelContext<'_>,
    threads: usize,
    base: usize,
) -> Vec<CandidateEval> {
    let threads = threads.max(1).min(level.len());
    if threads <= 1 {
        return level
            .iter()
            .enumerate()
            .map(|(j, mask)| evaluate_candidate(ctx, base + j + 1, j, mask))
            .collect();
    }
    let chunk = level.len().div_ceil(threads);
    let mut evals: Vec<Option<CandidateEval>> = Vec::new();
    evals.resize_with(level.len(), || None);
    std::thread::scope(|scope| {
        for (ci, (masks, out)) in level.chunks(chunk).zip(evals.chunks_mut(chunk)).enumerate() {
            let offset = ci * chunk;
            scope.spawn(move || {
                for (j, mask) in masks.iter().enumerate() {
                    out[j] = Some(evaluate_candidate(ctx, base + offset + j + 1, offset + j, mask));
                }
            });
        }
    });
    evals.into_iter().map(|e| e.expect("every level slot evaluated")).collect()
}

/// Run the backchase.
///
/// `original` is the query being reformulated, `universal_plan` the result of
/// the chase (its `branches`), `proprietary` the set of predicates that may
/// appear in a reformulation, `deds` the dependency set in its shared
/// compiled form ([`CompiledDeps`] — built once per engine, reused by every
/// back-chase here).
pub fn backchase(
    original: &ConjunctiveQuery,
    universal_plan: &UniversalPlan,
    proprietary: &HashSet<Predicate>,
    deds: &CompiledDeps,
    estimator: &dyn CostEstimator,
    options: &BackchaseOptions,
) -> BackchaseOutcome {
    let start = Instant::now();
    let mut outcome = BackchaseOutcome::default();
    if universal_plan.branches.is_empty() {
        outcome.duration = start.elapsed();
        return outcome;
    }
    let primary = universal_plan.primary();
    let pruned_plan =
        if options.prune_parallel_desc { prune_parallel_desc(primary) } else { primary.clone() };

    // Pool of candidate atoms: proprietary atoms of the (pruned) plan.
    let pool: Vec<_> =
        pruned_plan.body.iter().filter(|a| proprietary.contains(&a.predicate)).cloned().collect();
    if pool.is_empty() {
        outcome.duration = start.elapsed();
        return outcome;
    }

    if options.greedy {
        // Explicitly requested greedy minimization (at most one
        // reformulation; see the option's docs for the trade-off).
        let initial = ConjunctiveQuery {
            name: format!("{}_initial", primary.name),
            head: primary.head.clone(),
            body: pool.clone(),
            inequalities: primary.inequalities.clone(),
        };
        if let Some(minimized) = greedy_minimize(
            &initial,
            original,
            &universal_plan.branches,
            deds,
            &options.chase,
            &mut outcome,
        ) {
            let cost = estimator.estimate(&minimized);
            outcome.best = Some((minimized.clone(), cost));
            outcome.minimal.push((minimized, cost));
        }
        outcome.duration = start.elapsed();
        return outcome;
    }

    let pool_query = ConjunctiveQuery {
        name: format!("{}_pool", primary.name),
        head: primary.head.clone(),
        body: pool.clone(),
        inequalities: primary.inequalities.clone(),
    };
    let graph = ReachabilityGraph::new(&pool_query);

    // Precomputed per-candidate machinery (see the module docs).
    //
    // Back-chases invent variables strictly above every pool variable index,
    // so a cached chase can later absorb any further pool atom without an
    // invented variable colliding with a pool variable of the same base name.
    let max_pool_index = pool_query
        .variables()
        .iter()
        .map(|v| v.index)
        .chain(original.variables().iter().map(|v| v.index))
        .max()
        .unwrap_or(0);
    let back_chase_opts = ChaseOptions {
        min_fresh_index: options.chase.min_fresh_index.max(max_pool_index + 1),
        ..options.chase.clone()
    };
    let branch_targets: Vec<ContainmentTarget> =
        universal_plan.branches.iter().map(ContainmentTarget::new).collect();
    let atom_costs = estimator.atom_costs(&pool_query);
    let safety = SafetyPrefilter::new(&pool_query, &pool);

    // Level-synchronous breadth-first enumeration by subset size.
    let mut visited: HashSet<AtomSet> = HashSet::new();
    let mut frontier: Vec<AtomSet> = Vec::new();
    let mut found: Vec<AtomSet> = Vec::new();
    let mut best_cost = f64::INFINITY;
    // Memoized back-chases of the previous BFS size level.
    let mut prev_level: HashMap<AtomSet, ChasedBranches> = HashMap::new();

    let seeds: Vec<usize> =
        if options.navigation_pruning { graph.roots.clone() } else { (0..pool.len()).collect() };
    for s in seeds {
        let mask = AtomSet::singleton(s);
        if visited.insert(mask.clone()) {
            frontier.push(mask);
        }
    }

    while !frontier.is_empty() {
        // Minimality pruning: supersets of a found reformulation are not
        // minimal and are dropped without counting as inspected. (Within a
        // level no candidate can be a strict superset of another of the same
        // size, so found reformulations of previous levels suffice.)
        let mut level: Vec<AtomSet> = std::mem::take(&mut frontier)
            .into_iter()
            .filter(|m| !found.iter().any(|f| f.is_subset_of(m)))
            .collect();
        let remaining = options.max_candidates.saturating_sub(outcome.candidates_inspected);
        if level.len() > remaining {
            outcome.truncated = true;
            level.truncate(remaining);
        }
        if level.is_empty() {
            break;
        }

        let ctx = LevelContext {
            original,
            pool: &pool,
            pool_query: &pool_query,
            graph: &graph,
            branch_targets: &branch_targets,
            atom_costs: atom_costs.as_deref(),
            estimator,
            deds,
            back_chase_opts: &back_chase_opts,
            safety: &safety,
            prev_level: &prev_level,
            navigation_pruning: options.navigation_pruning,
            exhaustive: options.exhaustive,
            best_cost,
            cache_budget: options.chase_cache_per_level,
        };
        let evals = evaluate_level(&level, &ctx, options.threads, outcome.candidates_inspected);

        // Deterministic merge, in level order.
        let mut cur_level: HashMap<AtomSet, ChasedBranches> = HashMap::new();
        for (mask, eval) in level.iter().zip(evals) {
            outcome.candidates_inspected += 1;
            if eval.pruned_by_cost {
                outcome.pruned_by_cost += 1;
                continue;
            }
            if eval.checked {
                outcome.equivalence_checks += 1;
            }
            if eval.cache_hit {
                outcome.chase_cache_hits += 1;
            }
            if let Some(candidate) = eval.found {
                found.push(mask.clone());
                if eval.cost < best_cost {
                    best_cost = eval.cost;
                    outcome.best = Some((candidate.clone(), eval.cost));
                }
                outcome.minimal.push((candidate, eval.cost));
                continue; // supersets are not minimal
            }
            if let Some(cached) = eval.cache_entry {
                if cur_level.len() < options.chase_cache_per_level {
                    cur_level.insert(mask.clone(), cached);
                }
            }
            // Grow the subset by one atom.
            for g in eval.grow {
                let next = mask.with(g);
                if visited.insert(next.clone()) {
                    frontier.push(next);
                }
            }
        }
        prev_level = cur_level;
        if outcome.truncated {
            break;
        }
    }

    outcome.duration = start.elapsed();
    outcome
}

/// Greedy minimization (the explicit [`BackchaseOptions::greedy`] opt-in):
/// repeatedly drop atoms from the initial reformulation while it remains a
/// reformulation.
fn greedy_minimize(
    initial: &ConjunctiveQuery,
    original: &ConjunctiveQuery,
    branches: &[ConjunctiveQuery],
    deds: &CompiledDeps,
    chase_opts: &ChaseOptions,
    outcome: &mut BackchaseOutcome,
) -> Option<ConjunctiveQuery> {
    outcome.equivalence_checks += 1;
    if !is_reformulation(initial, original, branches, deds, chase_opts) {
        return None;
    }
    let mut current = initial.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..current.body.len() {
            if current.body.len() == 1 {
                break;
            }
            let mut cand = current.clone();
            cand.body.remove(i);
            outcome.equivalence_checks += 1;
            if is_reformulation(&cand, original, branches, deds, chase_opts) {
                current = cand;
                changed = true;
                break;
            }
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::chase_to_universal_plan;
    use mars_cost::WeightedAtomEstimator;
    use mars_cq::atom::builders::{child, root};
    use mars_cq::ded::view_dependencies;
    use mars_cq::{Atom, Ded, Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    /// The running Section 2.3 example: public schema {A, B}, storage {V},
    /// LAV view V(x,z) :- A(x,y), B(y,z), semantic constraint (ind).
    fn section_2_3_setup() -> (ConjunctiveQuery, Vec<Ded>, HashSet<Predicate>) {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![Variable::named("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let deds = vec![ind, c_v, b_v];
        let proprietary: HashSet<Predicate> = [Predicate::new("V")].into_iter().collect();
        (q, deds, proprietary)
    }

    /// Section 2.3 setup with a second, redundant proprietary copy of A.
    fn redundant_setup() -> (ConjunctiveQuery, Vec<Ded>, HashSet<Predicate>) {
        let (q, mut deds, _) = section_2_3_setup();
        let defa = ConjunctiveQuery::new("Astored")
            .with_head(vec![t("x"), t("y")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let (c_a, b_a) = view_dependencies("Astored", &defa);
        deds.push(c_a);
        deds.push(b_a);
        let proprietary: HashSet<Predicate> =
            [Predicate::new("V"), Predicate::new("Astored")].into_iter().collect();
        (q, deds, proprietary)
    }

    fn run(
        q: &ConjunctiveQuery,
        deds: &[Ded],
        proprietary: &HashSet<Predicate>,
        options: &BackchaseOptions,
    ) -> BackchaseOutcome {
        let compiled = CompiledDeps::new(deds);
        let up = chase_to_universal_plan_compiled(q, &compiled, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        backchase(q, &up, proprietary, &compiled, &est, options)
    }

    #[test]
    fn section_2_3_backchase_finds_view_rewriting() {
        let (q, deds, proprietary) = section_2_3_setup();
        let out = run(&q, &deds, &proprietary, &BackchaseOptions::default());
        assert_eq!(out.minimal.len(), 1);
        assert!(!out.truncated);
        let (best, _) = out.best.as_ref().unwrap();
        assert_eq!(best.body.len(), 1);
        assert_eq!(best.body[0].predicate.name(), "V");
    }

    #[test]
    fn initial_reformulation_restricts_to_proprietary_atoms() {
        let (q, deds, proprietary) = section_2_3_setup();
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let initial = initial_reformulation(up.primary(), &proprietary);
        assert_eq!(initial.body.len(), 1);
        assert_eq!(initial.body[0].predicate.name(), "V");
    }

    /// A redundant-storage scenario: the proprietary schema stores the public
    /// relation A itself *and* the view V. Both the A-only and the V-only
    /// rewritings are minimal reformulations; the best one is chosen by cost.
    #[test]
    fn redundant_storage_yields_multiple_minimal_reformulations() {
        let (q, deds, proprietary) = redundant_setup();
        let out = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert_eq!(out.minimal.len(), 2, "both the view and the stored copy are minimal");
        let best = out.best.as_ref().unwrap();
        assert_eq!(best.0.body.len(), 1);
        // Cost pruning (non-exhaustive) still finds at least one and the best.
        let pruned = run(&q, &deds, &proprietary, &BackchaseOptions::default());
        assert!(pruned.best.is_some());
    }

    #[test]
    fn no_reformulation_without_supporting_constraint() {
        // Without (ind) the view cannot answer Q.
        let (q, deds, proprietary) = section_2_3_setup();
        let deds_no_ind: Vec<Ded> = deds.iter().skip(1).cloned().collect();
        let out = run(&q, &deds_no_ind, &proprietary, &BackchaseOptions::default());
        assert!(out.minimal.is_empty());
        assert!(out.best.is_none());
    }

    #[test]
    fn unsafe_subqueries_are_rejected() {
        // Head variable x must be bound by the reformulation body.
        let (q, deds, _) = section_2_3_setup();
        // Make only B proprietary: B(y,z) does not bind x, so no reformulation.
        let proprietary: HashSet<Predicate> = [Predicate::new("B")].into_iter().collect();
        let out = run(&q, &deds, &proprietary, &BackchaseOptions::default());
        assert!(out.minimal.is_empty());
    }

    #[test]
    fn cost_pruning_reduces_inspected_candidates() {
        let (q, deds, proprietary) = redundant_setup();
        let exhaustive = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        let pruned = run(&q, &deds, &proprietary, &BackchaseOptions::default());
        assert!(pruned.candidates_inspected <= exhaustive.candidates_inspected);
        assert_eq!(
            pruned.best.as_ref().map(|(_, c)| *c),
            exhaustive.best.as_ref().map(|(_, c)| *c),
            "pruning must not change the optimum under a monotone cost model"
        );
    }

    /// Regression: a truncated enumeration must be distinguishable from a
    /// complete one.
    #[test]
    fn truncation_is_reported() {
        let (q, deds, proprietary) = redundant_setup();
        let opts = BackchaseOptions { max_candidates: 1, ..BackchaseOptions::exhaustive() };
        let out = run(&q, &deds, &proprietary, &opts);
        assert!(out.truncated, "hitting max_candidates must set the flag");
        assert!(out.minimal.len() < 2);
        let complete = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert!(!complete.truncated);
    }

    /// Regression for the memoized back-chase: resuming from a cached subset
    /// chase must find exactly the reformulations a from-scratch chase finds.
    #[test]
    fn memoized_and_scratch_backchase_agree() {
        let (q, deds, proprietary) = redundant_setup();
        let memo = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        let opts = BackchaseOptions { chase_cache_per_level: 0, ..BackchaseOptions::exhaustive() };
        let scratch = run(&q, &deds, &proprietary, &opts);
        assert_eq!(scratch.chase_cache_hits, 0);
        assert_eq!(memo.minimal.len(), scratch.minimal.len());
        assert_eq!(memo.best.as_ref().map(|(_, c)| *c), scratch.best.as_ref().map(|(_, c)| *c));
    }

    /// The determinism contract of the parallel engine: any thread count
    /// produces an outcome byte-identical to the sequential run — same
    /// reformulations (names, bodies, costs, order), same statistics, same
    /// flags.
    #[test]
    fn parallel_and_sequential_backchase_are_identical() {
        let (q, deds, proprietary) = redundant_setup();
        for exhaustive in [false, true] {
            let base = BackchaseOptions {
                exhaustive,
                ..if exhaustive { BackchaseOptions::exhaustive() } else { Default::default() }
            };
            let seq = run(&q, &deds, &proprietary, &base);
            for threads in [2usize, 4, 7] {
                let par = run(&q, &deds, &proprietary, &base.clone().with_threads(threads));
                assert_eq!(
                    format!("{:?}", strip_duration(&seq)),
                    format!("{:?}", strip_duration(&par)),
                    "threads = {threads}, exhaustive = {exhaustive}"
                );
            }
        }
    }

    /// `outcome` with the wall-clock field zeroed (everything else must be
    /// bit-for-bit reproducible across thread counts).
    fn strip_duration(outcome: &BackchaseOutcome) -> BackchaseOutcome {
        BackchaseOutcome { duration: Duration::default(), ..outcome.clone() }
    }

    /// Regression for the removed 128-atom ceiling: a candidate pool wider
    /// than 128 atoms is enumerated exhaustively (no silent greedy fallback,
    /// no truncation flag). The pool is a 139-atom navigation chain, so the
    /// reachability pruning keeps the search space linear: the prefixes.
    #[test]
    fn pool_wider_than_128_atoms_is_enumerated_exhaustively() {
        let steps = 138usize;
        let mut body = vec![root(t("x0"))];
        for i in 0..steps {
            body.push(child(t(&format!("x{i}")), t(&format!("x{}", i + 1))));
        }
        let q =
            ConjunctiveQuery::new("deep").with_head(vec![t(&format!("x{steps}"))]).with_body(body);
        let proprietary: HashSet<Predicate> =
            [Predicate::new("root"), Predicate::new("child")].into_iter().collect();
        let compiled = CompiledDeps::new(&[]);
        let up = chase_to_universal_plan_compiled(&q, &compiled, &ChaseOptions::default());
        let est = WeightedAtomEstimator::default();
        let out =
            backchase(&q, &up, &proprietary, &compiled, &est, &BackchaseOptions::exhaustive());
        assert!(!out.truncated, "a wide pool must enumerate completely, not truncate");
        assert_eq!(out.minimal.len(), 1, "only the full chain binds the head");
        assert_eq!(out.minimal[0].0.body.len(), steps + 1);
        // Navigation pruning keeps it linear: one prefix per size.
        assert_eq!(out.candidates_inspected, steps + 1);
        // And the parallel engine agrees on the wide pool too.
        let par = backchase(
            &q,
            &up,
            &proprietary,
            &compiled,
            &est,
            &BackchaseOptions::exhaustive().with_threads(4),
        );
        assert_eq!(format!("{:?}", strip_duration(&out)), format!("{:?}", strip_duration(&par)));
    }

    /// Greedy minimization only runs as an explicit opt-in, and still finds
    /// a correct (single) reformulation.
    #[test]
    fn greedy_minimization_is_an_explicit_opt_in() {
        let (q, deds, proprietary) = redundant_setup();
        let greedy = BackchaseOptions { greedy: true, ..Default::default() };
        let out = run(&q, &deds, &proprietary, &greedy);
        assert_eq!(out.minimal.len(), 1, "greedy yields at most one reformulation");
        assert!(!out.truncated, "greedy is requested incompleteness, not truncation");
        let (m, _) = &out.minimal[0];
        assert_eq!(m.body.len(), 1, "greedy minimizes down to a single atom here");
        // The exhaustive default, by contrast, enumerates both.
        let full = run(&q, &deds, &proprietary, &BackchaseOptions::exhaustive());
        assert_eq!(full.minimal.len(), 2);
    }
}
