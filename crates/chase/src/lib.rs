//! # mars-chase — the scalable Chase & Backchase engine
//!
//! This crate is the reproduction of Section 3 of the MARS paper: a new,
//! set-oriented implementation of the C&B algorithm that scales to the large
//! relational queries (hundreds of joins) and numerous constraints (hundreds
//! of DEDs) produced by the XML-to-relational reduction.
//!
//! The key idea (Section 3.1) is that chasing a query `Q` with a constraint
//! `c` can be viewed as *evaluating a relational query obtained from `c` over
//! a small database obtained from `Q`* — the symbolic instance `Inst(Q)` whose
//! constants are `Q`'s variables and whose tuples are `Q`'s body atoms.
//! Constraint premises are compiled once into join plans evaluated with hash
//! joins and selection pushdown; the extension check against the conclusion is
//! a semijoin.
//!
//! On top of the chase the crate implements:
//!
//! * **shared compilation** ([`CompiledDeps`]): the dependency set is
//!   compiled once per engine (closure detection, EGD-priority ordering,
//!   per-DED join plans with precompiled join orders) and shared via `Arc`
//!   across every chase, back-chase, branch and query block,
//! * **adaptive join planning** ([`JoinPlanner`]): each join step is
//!   resolved at evaluation time to a filtered scan or an index probe from
//!   the symbolic instance's incremental relation statistics (tuple counts,
//!   per-column distinct counts, scan-work ledgers); the historical fixed
//!   scan threshold survives only as the documented
//!   [`ChaseOptions::with_fixed_scan_threshold`] fallback/ablation,
//! * **semi-naive delta joins with a shared old-prefix**
//!   ([`evaluate_bindings_delta`]): dirty dependencies join delta-seeded,
//!   and the pre-watermark prefix join is computed once per dependency and
//!   shared across its delta passes — byte-identical to the naive full
//!   join,
//! * the **chase shortcut** of Section 3.2 (the effect of the TIX constraints
//!   `(refl)`, `(base)`, `(trans)` is computed directly as a transitive
//!   closure instead of step-by-step),
//! * the **backchase** with level-synchronous bottom-up subquery enumeration
//!   over growable [`mars_cq::AtomSet`] bitsets (no pool-width ceiling),
//!   deterministic multi-threaded candidate evaluation
//!   ([`BackchaseOptions::threads`]), cost-based pruning and the three
//!   XML-specific pruning criteria implemented on the atom reachability
//!   graph,
//! * the top-level [`ChaseBackchase`] driver returning the initial
//!   reformulation, all minimal reformulations and the cost-optimal one.

#![deny(missing_docs)]

pub mod backchase;
pub mod cb;
pub mod chase;
pub mod compiled;
pub mod evaluate;
pub mod instance;
pub mod reach;
pub mod shortcut;

pub use backchase::{backchase, BackchaseOptions, BackchaseOutcome, Degradation};
pub use cb::{CbOptions, CbStatistics, ChaseBackchase, ReformulationBudget, ReformulationResult};
pub use chase::{
    chase_branches_with_atoms, chase_branches_with_atoms_compiled,
    chase_resident_with_atoms_compiled, chase_to_resident_compiled, chase_to_universal_plan,
    chase_to_universal_plan_compiled, ChaseOptions, ChaseStats, ChaseStop, ResidentBranch,
    ResidentChase, UniversalPlan,
};
pub use compiled::{compilation_count, CompiledConclusion, CompiledDed, CompiledDeps};
pub use evaluate::{
    evaluate_bindings, evaluate_bindings_delta, evaluate_bindings_delta_with,
    evaluate_bindings_with, satisfiable, satisfiable_with, Binding, JoinPlanner,
};
pub use instance::{index_build_count, FrozenInstance, Relation, SymbolicInstance};
pub use reach::{prune_parallel_desc, ReachabilityGraph};
pub use shortcut::{detect_closure_constraints, ClosureConstraints};
