//! The top-level Chase & Backchase driver.
//!
//! [`ChaseBackchase`] bundles the dependency set (compiled schema
//! correspondence + XICs + TIX), the proprietary-schema predicate set, a
//! plug-in cost estimator and the chase/backchase options, and exposes the
//! reformulation entry points used by the MARS facade and the experiments:
//!
//! * [`ChaseBackchase::reformulate`] — full C&B: chase to the universal plan,
//!   compute the initial reformulation, run the backchase, return all minimal
//!   reformulations and the cost-optimal one;
//! * [`ChaseBackchase::initial_only`] — "switch off" the backchase and return
//!   just the initial reformulation (Section 2.3), for scenarios without
//!   significant redundancy or when any reformulation is needed fast.

use crate::backchase::{
    backchase, initial_reformulation, BackchaseOptions, BackchaseOutcome, Degradation,
};
use crate::chase::{chase_to_universal_plan_compiled, ChaseOptions, ChaseStats};
use crate::compiled::CompiledDeps;
use mars_cost::{CostEstimator, WeightedAtomEstimator};
use mars_cq::{ConjunctiveQuery, Ded, Predicate};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A per-request budget for one reformulation: a wall-clock deadline plus
/// candidate/atom ceilings, all optional. The budget extends the standing
/// engine options ([`ChaseOptions::timeout`],
/// [`BackchaseOptions::max_candidates`]) without replacing them: applying it
/// ([`ReformulationBudget::apply`]) tightens a copy of the engine's
/// [`CbOptions`] for this one request.
///
/// Budgets degrade, they do not error: a run that exhausts its budget
/// returns the best reformulation found so far tagged with a
/// [`Degradation`] reason (see [`CbStatistics::degradation`]), and the
/// universal plan remains the sound floor when nothing was found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReformulationBudget {
    /// Wall-clock budget for the whole chase → backchase pipeline. Converted
    /// to one absolute [`Instant`] when applied, so the initial chase, every
    /// back-chase (resumed ones included) and the BFS level loop all race
    /// the same clock.
    pub deadline: Option<Duration>,
    /// Ceiling on backchase candidates inspected (`None` keeps the engine's
    /// [`BackchaseOptions::max_candidates`]).
    pub max_candidates: Option<usize>,
    /// Ceiling on atoms per chase branch (`None` keeps the engine's
    /// [`ChaseOptions::max_atoms`]).
    pub max_atoms: Option<usize>,
}

impl ReformulationBudget {
    /// The unbounded budget (keeps every engine default).
    pub fn unbounded() -> ReformulationBudget {
        ReformulationBudget::default()
    }

    /// Builder: bound the request by a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> ReformulationBudget {
        self.deadline = Some(d);
        self
    }

    /// Builder: bound the number of backchase candidates inspected.
    pub fn with_max_candidates(mut self, n: usize) -> ReformulationBudget {
        self.max_candidates = Some(n);
        self
    }

    /// Builder: bound the atoms per chase branch.
    pub fn with_max_atoms(mut self, n: usize) -> ReformulationBudget {
        self.max_atoms = Some(n);
        self
    }

    /// Does this budget constrain anything at all? The hot path skips the
    /// per-request options clone when it does not.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.max_candidates.is_none() && self.max_atoms.is_none()
    }

    /// Tighten a copy of `base` with this budget. The relative deadline is
    /// resolved to one absolute [`Instant`] *now* and threaded into the
    /// universal-plan chase, the backchase level loop and every back-chase,
    /// so resumed chases cannot restart the clock (see
    /// [`ChaseOptions::deadline`]).
    pub fn apply(&self, base: &CbOptions) -> CbOptions {
        let mut opts = base.clone();
        if let Some(d) = self.deadline {
            // `None` on overflow = a deadline too far away to ever trip.
            if let Some(abs) = Instant::now().checked_add(d) {
                opts.chase.deadline = Some(abs);
                opts.backchase.deadline = Some(abs);
                opts.backchase.chase.deadline = Some(abs);
            }
        }
        if let Some(n) = self.max_candidates {
            opts.backchase.max_candidates = n;
        }
        if let Some(n) = self.max_atoms {
            opts.chase.max_atoms = n;
            opts.backchase.chase.max_atoms = n;
        }
        opts
    }
}

/// Options for the full C&B run.
#[derive(Clone, Debug, Default)]
pub struct CbOptions {
    /// Chase options (universal-plan construction).
    pub chase: ChaseOptions,
    /// Backchase options (minimization).
    pub backchase: BackchaseOptions,
}

impl CbOptions {
    /// Options enumerating all minimal reformulations.
    pub fn exhaustive() -> CbOptions {
        CbOptions { chase: ChaseOptions::default(), backchase: BackchaseOptions::exhaustive() }
    }
}

/// Timing and size statistics of a C&B run.
#[derive(Clone, Debug, Default)]
pub struct CbStatistics {
    /// Statistics of the chase phase.
    pub chase: ChaseStats,
    /// Time to build the universal plan.
    pub time_to_universal_plan: Duration,
    /// Time to the initial reformulation (chase + restriction to the
    /// proprietary schema) — the quantity plotted in Figure 5.
    pub time_to_initial: Duration,
    /// Additional time spent in the backchase ("delta to best minimal
    /// reformulation" in Figure 5).
    pub backchase_duration: Duration,
    /// End-to-end duration.
    pub total: Duration,
    /// Number of atoms in the (primary) universal plan.
    pub universal_plan_atoms: usize,
    /// Candidate subqueries inspected by the backchase.
    pub candidates_inspected: usize,
    /// Equivalence (chase) checks performed by the backchase.
    pub equivalence_checks: usize,
    /// Back-chases resumed from a memoized subset chase.
    pub chase_cache_hits: usize,
    /// Containment verdicts transferred from a memoized seed branch (no
    /// homomorphism search ran; see
    /// [`BackchaseOutcome::containment_success_transfers`]).
    pub containment_success_transfers: usize,
    /// Homomorphism searches restricted to the fresh delta of a resumed
    /// branch (see [`BackchaseOutcome::containment_delta_searches`]).
    pub containment_delta_searches: usize,
    /// Candidates whose superset cone was cut after failing to map into a
    /// universal-plan branch (see
    /// [`BackchaseOutcome::containment_dead_cone_skips`]).
    pub containment_dead_cone_skips: usize,
    /// Backchase wall-clock spent computing candidate costs.
    pub backchase_cost_phase: Duration,
    /// Backchase wall-clock spent in back-chases (scratch or resumed).
    pub backchase_chase_phase: Duration,
    /// Backchase wall-clock spent in containment (homomorphism) checks.
    pub backchase_containment_phase: Duration,
    /// `true` when the backchase hit its candidate budget or deadline before
    /// exhausting the search space (see [`BackchaseOutcome::truncated`]): the
    /// minimal reformulation set is possibly incomplete.
    pub backchase_truncated: bool,
    /// Why this run degraded, when it did: the most severe budget hit across
    /// the universal-plan chase and the backchase
    /// ([`BackchaseOutcome::degradation`] merged with the chase's own stop
    /// reason). `None` exactly when nothing was cut anywhere — the answer is
    /// the same one an unbounded run would produce.
    pub degradation: Option<Degradation>,
}

/// The result of reformulating one query.
#[derive(Clone, Debug)]
pub struct ReformulationResult {
    /// The universal plan (primary branch).
    pub universal_plan: ConjunctiveQuery,
    /// The initial reformulation (largest proprietary subquery), if non-empty.
    pub initial: Option<ConjunctiveQuery>,
    /// All minimal reformulations found (with estimated costs).
    pub minimal: Vec<(ConjunctiveQuery, f64)>,
    /// The cost-optimal reformulation.
    pub best: Option<(ConjunctiveQuery, f64)>,
    /// Statistics.
    pub stats: CbStatistics,
}

impl ReformulationResult {
    /// The best reformulation, falling back to the initial one.
    pub fn best_or_initial(&self) -> Option<&ConjunctiveQuery> {
        self.best.as_ref().map(|(q, _)| q).or(self.initial.as_ref())
    }

    /// Did MARS find any reformulation at all?
    pub fn has_reformulation(&self) -> bool {
        self.best.is_some() || self.initial.as_ref().map(|q| !q.body.is_empty()).unwrap_or(false)
    }
}

/// The C&B engine.
///
/// Thread-safe and cheap to clone: the dependency set is compiled exactly
/// once at construction ([`CompiledDeps`]) and shared via `Arc` across every
/// chase, back-chase, candidate branch and query block — no entry point
/// recompiles it.
#[derive(Clone)]
pub struct ChaseBackchase {
    /// Dependencies (compiled schema correspondence, XICs, TIX, relational
    /// integrity constraints) in shared compiled form.
    compiled: Arc<CompiledDeps>,
    /// Predicates of the proprietary schema (the only ones allowed in
    /// reformulations).
    pub proprietary: HashSet<Predicate>,
    /// Plug-in cost estimator.
    pub estimator: Arc<dyn CostEstimator>,
    /// Options.
    pub options: CbOptions,
}

impl ChaseBackchase {
    /// An engine with the default (weighted-atom) cost estimator. Compiles
    /// the dependency set once, up front.
    pub fn new(deds: Vec<Ded>, proprietary: HashSet<Predicate>) -> ChaseBackchase {
        ChaseBackchase {
            compiled: Arc::new(CompiledDeps::new(&deds)),
            proprietary,
            estimator: Arc::new(WeightedAtomEstimator::default()),
            options: CbOptions::default(),
        }
    }

    /// The dependency set this engine reformulates under.
    pub fn deds(&self) -> &[Ded] {
        self.compiled.deds()
    }

    /// The shared compiled form of the dependency set.
    pub fn compiled(&self) -> &Arc<CompiledDeps> {
        &self.compiled
    }

    /// Builder: replace the cost estimator.
    pub fn with_estimator(mut self, estimator: Arc<dyn CostEstimator>) -> ChaseBackchase {
        self.estimator = estimator;
        self
    }

    /// Builder: replace the options.
    pub fn with_options(mut self, options: CbOptions) -> ChaseBackchase {
        self.options = options;
        self
    }

    /// Builder: add proprietary predicates by name.
    pub fn with_proprietary_names(mut self, names: &[&str]) -> ChaseBackchase {
        self.proprietary.extend(names.iter().map(|n| Predicate::new(n)));
        self
    }

    /// Full chase & backchase reformulation of a query.
    pub fn reformulate(&self, query: &ConjunctiveQuery) -> ReformulationResult {
        let start = Instant::now();
        let up = chase_to_universal_plan_compiled(query, &self.compiled, &self.options.chase);
        let time_to_universal_plan = start.elapsed();

        let (universal_plan, initial) = if up.branches.is_empty() {
            (
                ConjunctiveQuery {
                    name: format!("{}_unsat", query.name),
                    head: query.head.clone(),
                    body: Vec::new(),
                    inequalities: query.inequalities.clone(),
                },
                None,
            )
        } else {
            let primary = up.primary().clone();
            let initial = initial_reformulation(&primary, &self.proprietary);
            let initial = if initial.body.is_empty() { None } else { Some(initial) };
            (primary, initial)
        };
        let time_to_initial = start.elapsed();

        let bc: BackchaseOutcome = if up.branches.is_empty() {
            BackchaseOutcome::default()
        } else {
            backchase(
                query,
                &up,
                &self.proprietary,
                &self.compiled,
                self.estimator.as_ref(),
                &self.options.backchase,
            )
        };

        let stats = CbStatistics {
            chase: up.stats.clone(),
            time_to_universal_plan,
            time_to_initial,
            backchase_duration: bc.duration,
            total: start.elapsed(),
            universal_plan_atoms: universal_plan.body.len(),
            candidates_inspected: bc.candidates_inspected,
            equivalence_checks: bc.equivalence_checks,
            chase_cache_hits: bc.chase_cache_hits,
            containment_success_transfers: bc.containment_success_transfers,
            containment_delta_searches: bc.containment_delta_searches,
            containment_dead_cone_skips: bc.containment_dead_cone_skips,
            backchase_cost_phase: bc.cost_phase,
            backchase_chase_phase: bc.chase_phase,
            backchase_containment_phase: bc.containment_phase,
            backchase_truncated: bc.truncated,
            degradation: Degradation::merge(bc.degradation, Degradation::of_chase(&up.stats)),
        };
        ReformulationResult { universal_plan, initial, minimal: bc.minimal, best: bc.best, stats }
    }

    /// Chase only ("switch off the backchase"): return the initial
    /// reformulation and the chase statistics.
    pub fn initial_only(
        &self,
        query: &ConjunctiveQuery,
    ) -> (Option<ConjunctiveQuery>, CbStatistics) {
        let start = Instant::now();
        let up = chase_to_universal_plan_compiled(query, &self.compiled, &self.options.chase);
        let time_to_universal_plan = start.elapsed();
        let initial = up.branches.first().map(|b| initial_reformulation(b, &self.proprietary));
        let initial = initial.filter(|q| !q.body.is_empty());
        let stats = CbStatistics {
            universal_plan_atoms: up.branches.first().map(|b| b.body.len()).unwrap_or(0),
            degradation: Degradation::of_chase(&up.stats),
            chase: up.stats,
            time_to_universal_plan,
            time_to_initial: start.elapsed(),
            backchase_duration: Duration::default(),
            total: start.elapsed(),
            ..Default::default()
        };
        (initial, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::ded::view_dependencies;
    use mars_cq::{Atom, Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    fn engine() -> (ChaseBackchase, ConjunctiveQuery) {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![Variable::named("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let proprietary: HashSet<Predicate> = [Predicate::new("V")].into_iter().collect();
        (ChaseBackchase::new(vec![ind, c_v, b_v], proprietary), q)
    }

    #[test]
    fn end_to_end_reformulation() {
        let (cb, q) = engine();
        let result = cb.reformulate(&q);
        assert!(result.has_reformulation());
        let best = result.best.as_ref().unwrap();
        assert_eq!(best.0.body.len(), 1);
        assert_eq!(best.0.body[0].predicate.name(), "V");
        assert_eq!(result.stats.universal_plan_atoms, 3);
        assert!(result.stats.time_to_initial <= result.stats.total);
        assert_eq!(result.minimal.len(), 1);
        assert_eq!(result.best_or_initial().unwrap().body[0].predicate.name(), "V");
    }

    #[test]
    fn initial_only_skips_backchase() {
        let (cb, q) = engine();
        let (initial, stats) = cb.initial_only(&q);
        let initial = initial.expect("initial reformulation exists");
        assert_eq!(initial.body.len(), 1);
        assert_eq!(stats.candidates_inspected, 0);
        assert_eq!(stats.backchase_duration, Duration::default());
    }

    #[test]
    fn queries_without_reformulation_are_reported() {
        let (cb, _) = engine();
        // A query over a predicate unrelated to the correspondence.
        let q = ConjunctiveQuery::new("Qother")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("C", vec![t("x")])]);
        let result = cb.reformulate(&q);
        assert!(!result.has_reformulation());
        assert!(result.best.is_none());
        assert!(result.initial.is_none());
    }

    #[test]
    fn builder_methods() {
        let (cb, q) = engine();
        let cb = cb
            .with_estimator(Arc::new(WeightedAtomEstimator::default()))
            .with_options(CbOptions::exhaustive())
            .with_proprietary_names(&["extraRel"]);
        assert!(cb.proprietary.contains(&Predicate::new("extraRel")));
        let result = cb.reformulate(&q);
        assert!(result.has_reformulation());
    }

    #[test]
    fn unsatisfiable_query_produces_empty_plan() {
        let denial = Ded::denial("no_a", vec![Atom::named("A", vec![t("x"), t("y")])]);
        let cb = ChaseBackchase::new(vec![denial], HashSet::new());
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let result = cb.reformulate(&q);
        assert!(result.universal_plan.body.is_empty());
        assert!(!result.has_reformulation());
    }
}
