//! Short-cutting the chase (Section 3.2).
//!
//! For the TIX constraints `(refl)`, `(base)` and `(trans)` the outcome of the
//! chase is known up front: it adds to the query exactly the `desc` atoms of
//! the reflexive-transitive closure of the `child`/`desc` atoms. Instead of
//! performing `O(n²)` individual chase steps, MARS jumps directly to the
//! result by computing the closure with a standard adjacency-based algorithm.
//! In the paper's stress test this cuts the chase of `//a/b/.../j` with TIX
//! from 2.6 s to 640 ms.
//!
//! GReX predicates are suffixed with their document name (`child#case.xml`);
//! closure constraints are therefore detected and applied *per document*.

use crate::instance::SymbolicInstance;
use mars_cq::{Atom, Ded, Predicate, Term};
use std::collections::{HashMap, HashSet};

/// Split a predicate name into its GReX base name and optional document
/// suffix.
fn split_pred(p: Predicate) -> (&'static str, Option<&'static str>) {
    let name = p.name();
    match name.split_once('#') {
        Some((base, doc)) => (base, Some(doc)),
        None => (name, None),
    }
}

fn pred_for(base: &str, doc: &Option<String>) -> Predicate {
    match doc {
        Some(d) => Predicate::new(&format!("{base}#{d}")),
        None => Predicate::new(base),
    }
}

/// The closure constraints of one document (or of the unsuffixed GReX
/// predicates when `document` is `None`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClosureGroup {
    /// Document the group's predicates refer to.
    pub document: Option<String>,
    /// Index of the `(base)` constraint (`child(x,y) → desc(x,y)`).
    pub base: Option<usize>,
    /// Index of the `(trans)` constraint.
    pub trans: Option<usize>,
    /// Index of the `(refl)` constraint (`el(x) → desc(x,x)`).
    pub refl: Option<usize>,
}

/// All closure constraints detected in a dependency set, grouped by document.
#[derive(Clone, Debug, Default)]
pub struct ClosureConstraints {
    /// Per-document groups.
    pub groups: Vec<ClosureGroup>,
}

impl ClosureGroup {
    /// The `desc` predicate this group's shortcut inserts into — the only
    /// relation [`apply_closure`] ever changes.
    pub fn desc_pred(&self) -> Predicate {
        pred_for("desc", &self.document)
    }

    /// Snapshot of this group's closure *inputs* on `inst`: the lengths of
    /// the `child`/`desc`/`el` relations plus the branch rewrite epoch. The
    /// closure output is a pure function of those relations, and relations
    /// only change by appending (lengths grow) or by an EGD rewrite (epoch
    /// bumps) — so an unchanged mark proves a recomputation would add
    /// nothing.
    fn input_mark(&self, inst: &SymbolicInstance, rewrites: u64) -> ClosureInputMark {
        ClosureInputMark {
            child: inst.relation(pred_for("child", &self.document)).len(),
            desc: inst.relation(self.desc_pred()).len(),
            el: inst.relation(pred_for("el", &self.document)).len(),
            rewrites,
        }
    }
}

/// Per-group watermark of the closure shortcut's input relations (see
/// `ClosureGroup::input_mark`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosureInputMark {
    child: usize,
    desc: usize,
    el: usize,
    rewrites: u64,
}

impl ClosureConstraints {
    /// Indices of all detected closure constraints.
    pub fn indices(&self) -> Vec<usize> {
        self.groups.iter().flat_map(|g| [g.base, g.trans, g.refl]).flatten().collect()
    }

    /// The input marks of every group on an instance already at closure
    /// fixpoint — the state a resumed chase seeds its branches with, so the
    /// first rounds skip the closure recomputation until an input relation
    /// actually changes.
    pub fn marks_at_fixpoint(
        &self,
        inst: &SymbolicInstance,
        rewrites: u64,
    ) -> Vec<ClosureInputMark> {
        self.groups.iter().map(|g| g.input_mark(inst, rewrites)).collect()
    }

    /// Were any closure constraints detected?
    pub fn any(&self) -> bool {
        !self.groups.is_empty()
    }

    fn group_mut(&mut self, doc: Option<String>) -> &mut ClosureGroup {
        if let Some(pos) = self.groups.iter().position(|g| g.document == doc) {
            &mut self.groups[pos]
        } else {
            self.groups.push(ClosureGroup { document: doc, ..Default::default() });
            self.groups.last_mut().expect("just pushed")
        }
    }
}

fn is_binary_base(a: &Atom, base: &str) -> Option<Option<String>> {
    let (b, doc) = split_pred(a.predicate);
    if b == base && a.arity() == 2 && a.args.iter().all(Term::is_var) {
        Some(doc.map(str::to_string))
    } else {
        None
    }
}

fn is_unary_base(a: &Atom, base: &str) -> Option<Option<String>> {
    let (b, doc) = split_pred(a.predicate);
    if b == base && a.arity() == 1 && a.args.iter().all(Term::is_var) {
        Some(doc.map(str::to_string))
    } else {
        None
    }
}

/// `child(x,y) → desc(x,y)` (same document on both sides).
fn match_base(d: &Ded) -> Option<Option<String>> {
    if d.premise.len() != 1 || d.conclusions.len() != 1 {
        return None;
    }
    let c = &d.conclusions[0];
    if c.atoms.len() != 1 || !c.equalities.is_empty() {
        return None;
    }
    let doc_p = is_binary_base(&d.premise[0], "child")?;
    let doc_c = is_binary_base(&c.atoms[0], "desc")?;
    if doc_p == doc_c && d.premise[0].args == c.atoms[0].args {
        Some(doc_p)
    } else {
        None
    }
}

/// `desc(x,y) ∧ desc(y,z) → desc(x,z)`.
fn match_trans(d: &Ded) -> Option<Option<String>> {
    if d.premise.len() != 2 || d.conclusions.len() != 1 {
        return None;
    }
    let c = &d.conclusions[0];
    if c.atoms.len() != 1 || !c.equalities.is_empty() {
        return None;
    }
    let d1 = is_binary_base(&d.premise[0], "desc")?;
    let d2 = is_binary_base(&d.premise[1], "desc")?;
    let d3 = is_binary_base(&c.atoms[0], "desc")?;
    if d1 != d2 || d2 != d3 {
        return None;
    }
    let (p1, p2, q) = (&d.premise[0], &d.premise[1], &c.atoms[0]);
    if p1.args[1] == p2.args[0] && q.args[0] == p1.args[0] && q.args[1] == p2.args[1] {
        Some(d1)
    } else {
        None
    }
}

/// `el(x) → desc(x,x)`.
fn match_refl(d: &Ded) -> Option<Option<String>> {
    if d.premise.len() != 1 || d.conclusions.len() != 1 {
        return None;
    }
    let c = &d.conclusions[0];
    if c.atoms.len() != 1 || !c.equalities.is_empty() {
        return None;
    }
    let dp = is_unary_base(&d.premise[0], "el")?;
    let dc = is_binary_base(&c.atoms[0], "desc")?;
    if dp != dc {
        return None;
    }
    let (p, q) = (&d.premise[0], &c.atoms[0]);
    if q.args[0] == p.args[0] && q.args[1] == p.args[0] {
        Some(dp)
    } else {
        None
    }
}

/// Structurally detect the `(base)`, `(trans)` and `(refl)` constraints in a
/// dependency set, grouped by document. Detection is purely syntactic, so
/// user-supplied equivalents are recognized too.
pub fn detect_closure_constraints(deds: &[Ded]) -> ClosureConstraints {
    let mut out = ClosureConstraints::default();
    for (i, d) in deds.iter().enumerate() {
        if let Some(doc) = match_base(d) {
            let g = out.group_mut(doc);
            if g.base.is_none() {
                g.base = Some(i);
            }
        } else if let Some(doc) = match_trans(d) {
            let g = out.group_mut(doc);
            if g.trans.is_none() {
                g.trans = Some(i);
            }
        } else if let Some(doc) = match_refl(d) {
            let g = out.group_mut(doc);
            if g.refl.is_none() {
                g.refl = Some(i);
            }
        }
    }
    out
}

/// Apply the closure shortcut for one group: add `desc` atoms for every pair
/// of terms connected by a path of `child`/`desc` edges, and `desc(x,x)` for
/// every `el(x)` when `(refl)` is present. Returns the number of atoms added.
fn apply_group(inst: &mut SymbolicInstance, group: &ClosureGroup) -> usize {
    let desc_pred = pred_for("desc", &group.document);
    let child_pred = pred_for("child", &group.document);
    let el_pred = pred_for("el", &group.document);

    let mut adjacency: HashMap<Term, Vec<Term>> = HashMap::new();
    let mut nodes: HashSet<Term> = HashSet::new();
    if group.base.is_some() || group.trans.is_some() {
        for tup in inst.relation(child_pred) {
            adjacency.entry(tup[0]).or_default().push(tup[1]);
            nodes.insert(tup[0]);
            nodes.insert(tup[1]);
        }
    }
    for tup in inst.relation(desc_pred) {
        adjacency.entry(tup[0]).or_default().push(tup[1]);
        nodes.insert(tup[0]);
        nodes.insert(tup[1]);
    }

    let mut added = 0usize;
    if group.trans.is_some() || group.base.is_some() {
        for &start in &nodes {
            let mut seen: HashSet<Term> = HashSet::new();
            let mut stack: Vec<Term> = adjacency.get(&start).cloned().unwrap_or_default();
            while let Some(next) = stack.pop() {
                if !seen.insert(next) {
                    continue;
                }
                if inst.insert_atom(&Atom::new(desc_pred, vec![start, next])) {
                    added += 1;
                }
                if group.trans.is_some() {
                    if let Some(succ) = adjacency.get(&next) {
                        stack.extend(succ.iter().copied());
                    }
                }
            }
        }
    }
    if group.refl.is_some() {
        let els: Vec<Term> = inst.relation(el_pred).iter().map(|t| t[0]).collect();
        for e in els {
            if inst.insert_atom(&Atom::new(desc_pred, vec![e, e])) {
                added += 1;
            }
        }
    }
    added
}

/// All terms reachable from `from` (inclusive) over `adj`, in deterministic
/// DFS order.
fn reach_with(adj: &HashMap<Term, Vec<Term>>, from: Term) -> Vec<Term> {
    let mut seen: HashSet<Term> = HashSet::new();
    seen.insert(from);
    let mut out = vec![from];
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if let Some(succ) = adj.get(&n) {
            for &s in succ {
                if seen.insert(s) {
                    out.push(s);
                    stack.push(s);
                }
            }
        }
    }
    out
}

/// Incremental variant of [`apply_group`] for a group whose input relations
/// have only *grown* since `mark` was taken at closure fixpoint (same rewrite
/// epoch, so no tuple was rewritten or removed in between). Every `desc` pair
/// still missing from the instance must then ride on at least one appended
/// edge, so for each new edge `(u, v)` the function inserts
/// `ancestors*(u) × descendants*(v)` over the full edge set instead of
/// re-running the DFS from every node. Pairs whose paths use several new
/// edges are caught when their first new edge is processed (the surrounding
/// reachability runs over the full adjacency), and pairs riding on the
/// freshly *inserted* `desc` atoms are subsumed because each such atom stands
/// for a path that already exists edge-by-edge in the adjacency. The inserted
/// atom set is therefore exactly the one a full [`apply_group`] would add.
fn apply_group_incremental(
    inst: &mut SymbolicInstance,
    group: &ClosureGroup,
    mark: &ClosureInputMark,
) -> usize {
    let desc_pred = group.desc_pred();
    let child_pred = pred_for("child", &group.document);
    let el_pred = pred_for("el", &group.document);

    let mut fwd: HashMap<Term, Vec<Term>> = HashMap::new();
    let mut rev: HashMap<Term, Vec<Term>> = HashMap::new();
    let mut new_edges: Vec<(Term, Term)> = Vec::new();
    if group.base.is_some() || group.trans.is_some() {
        for (i, tup) in inst.relation(child_pred).iter().enumerate() {
            fwd.entry(tup[0]).or_default().push(tup[1]);
            rev.entry(tup[1]).or_default().push(tup[0]);
            if i >= mark.child {
                new_edges.push((tup[0], tup[1]));
            }
        }
        for (i, tup) in inst.relation(desc_pred).iter().enumerate() {
            fwd.entry(tup[0]).or_default().push(tup[1]);
            rev.entry(tup[1]).or_default().push(tup[0]);
            if i >= mark.desc {
                new_edges.push((tup[0], tup[1]));
            }
        }
    }

    let mut added = 0usize;
    if group.trans.is_some() {
        for &(u, v) in &new_edges {
            let sources = reach_with(&rev, u);
            let targets = reach_with(&fwd, v);
            for &s in &sources {
                for &t in &targets {
                    if inst.insert_atom(&Atom::new(desc_pred, vec![s, t])) {
                        added += 1;
                    }
                }
            }
        }
    } else if group.base.is_some() {
        for &(u, v) in &new_edges {
            if inst.insert_atom(&Atom::new(desc_pred, vec![u, v])) {
                added += 1;
            }
        }
    }
    if group.refl.is_some() {
        let els: Vec<Term> = inst.relation(el_pred).iter().skip(mark.el).map(|t| t[0]).collect();
        for e in els {
            if inst.insert_atom(&Atom::new(desc_pred, vec![e, e])) {
                added += 1;
            }
        }
    }
    added
}

/// Apply the closure shortcut for every detected group. Returns the total
/// number of `desc` atoms added.
pub fn apply_closure(inst: &mut SymbolicInstance, closure: &ClosureConstraints) -> usize {
    closure.groups.iter().map(|g| apply_group(inst, g)).sum()
}

/// [`apply_closure`] with per-group input watermarks: a group whose
/// `child`/`desc`/`el` relations are unchanged since its mark (same lengths,
/// same rewrite epoch) is skipped outright — its recomputation would add
/// nothing — and a group whose relations merely *grew* within the same
/// rewrite epoch is closed incrementally over the appended edges
/// (`apply_group_incremental`) instead of DFS-ing from every node. `marks`
/// is updated in place to the post-application state; an empty vector means
/// "unknown" and forces a full first application, as does a rewrite-epoch
/// change (an EGD rewrite may rewrite or dedup tuples in place, invalidating
/// the append-only reading of the mark). The inserted atom *set* matches a
/// full [`apply_closure`] on every instance whose marks are honest.
pub fn apply_closure_watermarked(
    inst: &mut SymbolicInstance,
    closure: &ClosureConstraints,
    marks: &mut Vec<ClosureInputMark>,
    rewrites: u64,
) -> usize {
    let unknown = marks.len() != closure.groups.len();
    let mut added = 0;
    for (gi, g) in closure.groups.iter().enumerate() {
        if !unknown {
            let cur = g.input_mark(inst, rewrites);
            if marks[gi] == cur {
                continue; // unchanged inputs: recomputation is a no-op
            }
            if marks[gi].rewrites == rewrites {
                // Same rewrite epoch: the inputs only grew since the mark was
                // taken at fixpoint, so only the appended edges need closing.
                added += apply_group_incremental(inst, g, &marks[gi]);
                continue;
            }
        }
        added += apply_group(inst, g);
    }
    *marks = closure.groups.iter().map(|g| g.input_mark(inst, rewrites)).collect();
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Conjunct, ConjunctiveQuery};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    fn tix_core() -> Vec<Ded> {
        vec![
            Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]),
            Ded::tgd(
                "trans",
                vec![desc(t("x"), t("y")), desc(t("y"), t("z"))],
                vec![],
                vec![desc(t("x"), t("z"))],
            ),
            Ded::tgd("refl", vec![el(t("x"))], vec![], vec![desc(t("x"), t("x"))]),
        ]
    }

    fn doc_atom(base: &str, doc: &str, args: Vec<Term>) -> Atom {
        Atom::named(&format!("{base}#{doc}"), args)
    }

    #[test]
    fn detection_finds_all_three_unsuffixed() {
        let c = detect_closure_constraints(&tix_core());
        assert!(c.any());
        assert_eq!(c.groups.len(), 1);
        let g = &c.groups[0];
        assert_eq!(g.document, None);
        assert_eq!((g.base, g.trans, g.refl), (Some(0), Some(1), Some(2)));
        assert_eq!(c.indices().len(), 3);
    }

    #[test]
    fn detection_groups_by_document() {
        let mut deds = Vec::new();
        for doc in ["a.xml", "b.xml"] {
            deds.push(Ded::tgd(
                &format!("base#{doc}"),
                vec![doc_atom("child", doc, vec![t("x"), t("y")])],
                vec![],
                vec![doc_atom("desc", doc, vec![t("x"), t("y")])],
            ));
            deds.push(Ded::tgd(
                &format!("trans#{doc}"),
                vec![
                    doc_atom("desc", doc, vec![t("x"), t("y")]),
                    doc_atom("desc", doc, vec![t("y"), t("z")]),
                ],
                vec![],
                vec![doc_atom("desc", doc, vec![t("x"), t("z")])],
            ));
        }
        let c = detect_closure_constraints(&deds);
        assert_eq!(c.groups.len(), 2);
        assert_eq!(c.indices().len(), 4);
    }

    #[test]
    fn detection_rejects_lookalikes_and_cross_document_mixtures() {
        let bogus = Ded::tgd(
            "nottrans",
            vec![desc(t("x"), t("y")), desc(t("y"), t("z"))],
            vec![],
            vec![desc(t("z"), t("x"))],
        );
        let disj = Ded::disjunctive(
            "notbase",
            vec![child(t("x"), t("y"))],
            vec![Conjunct::atoms(vec![desc(t("x"), t("y"))]), Conjunct::atoms(vec![el(t("x"))])],
        );
        // child of one document implying desc of another is NOT (base).
        let cross = Ded::tgd(
            "cross",
            vec![doc_atom("child", "a.xml", vec![t("x"), t("y")])],
            vec![],
            vec![doc_atom("desc", "b.xml", vec![t("x"), t("y")])],
        );
        let c = detect_closure_constraints(&[bogus, disj, cross]);
        assert!(!c.any());
    }

    #[test]
    fn closure_on_chain_matches_expected_count() {
        // chain of n child atoms ⇒ n(n+1)/2 desc atoms (paper, Section 3.2).
        let n = 6;
        let mut body = vec![root(t("x1"))];
        for i in 1..=n {
            body.push(child(t(&format!("x{i}")), t(&format!("x{}", i + 1))));
        }
        let q = ConjunctiveQuery::new("chain").with_body(body);
        let mut inst = SymbolicInstance::from_query(&q);
        let closure = detect_closure_constraints(&tix_core());
        let added = apply_closure(&mut inst, &closure);
        assert_eq!(added, n * (n + 1) / 2);
    }

    #[test]
    fn closure_is_applied_per_document() {
        let mut deds = Vec::new();
        for doc in ["a.xml", "b.xml"] {
            deds.push(Ded::tgd(
                &format!("base#{doc}"),
                vec![doc_atom("child", doc, vec![t("x"), t("y")])],
                vec![],
                vec![doc_atom("desc", doc, vec![t("x"), t("y")])],
            ));
            deds.push(Ded::tgd(
                &format!("trans#{doc}"),
                vec![
                    doc_atom("desc", doc, vec![t("x"), t("y")]),
                    doc_atom("desc", doc, vec![t("y"), t("z")]),
                ],
                vec![],
                vec![doc_atom("desc", doc, vec![t("x"), t("z")])],
            ));
        }
        let q = ConjunctiveQuery::new("two_docs").with_body(vec![
            doc_atom("child", "a.xml", vec![t("p"), t("q")]),
            doc_atom("child", "a.xml", vec![t("q"), t("r")]),
            doc_atom("child", "b.xml", vec![t("u"), t("v")]),
        ]);
        let mut inst = SymbolicInstance::from_query(&q);
        let closure = detect_closure_constraints(&deds);
        let added = apply_closure(&mut inst, &closure);
        // a.xml: pairs (p,q),(q,r),(p,r) = 3; b.xml: (u,v) = 1.
        assert_eq!(added, 4);
        assert!(inst.contains_atom(&doc_atom("desc", "a.xml", vec![t("p"), t("r")])));
        assert!(!inst.contains_atom(&doc_atom("desc", "b.xml", vec![t("p"), t("r")])));
    }

    #[test]
    fn refl_only_applies_to_el_nodes() {
        let q = ConjunctiveQuery::new("els").with_body(vec![el(t("e")), child(t("e"), t("f"))]);
        let mut inst = SymbolicInstance::from_query(&q);
        let closure = detect_closure_constraints(&tix_core());
        apply_closure(&mut inst, &closure);
        assert!(inst.contains_atom(&desc(t("e"), t("e"))));
        assert!(!inst.contains_atom(&desc(t("f"), t("f"))));
    }

    #[test]
    fn no_closure_constraints_means_no_change() {
        let q = ConjunctiveQuery::new("q").with_body(vec![child(t("a"), t("b"))]);
        let mut inst = SymbolicInstance::from_query(&q);
        let added = apply_closure(&mut inst, &ClosureConstraints::default());
        assert_eq!(added, 0);
        assert_eq!(inst.len(), 1);
    }
}
