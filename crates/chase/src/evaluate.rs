//! Set-oriented evaluation of a conjunction of atoms over a symbolic
//! instance.
//!
//! This is the workhorse of the new C&B implementation: constraint premises
//! (and conclusions, for the semijoin extension check) are evaluated over
//! `Inst(Q)` using hash joins with selections (constants, repeated variables)
//! pushed into the joins, producing *all* homomorphisms in bulk rather than
//! one backtracking search per candidate.
//!
//! Joins probe the instance's **persistent** per-predicate column indexes
//! ([`crate::instance::Relation::index`]): an index is built at most once per
//! (relation, column-set) and maintained incrementally on insert, so repeated
//! evaluations over a growing instance never rebuild hash tables.
//!
//! Whether one join step *scans* its tuple window or *probes* the hash index
//! is resolved **at evaluation time** by a [`JoinPlanner`] from the
//! relation's incremental statistics (tuple counts, per-column distinct
//! counts, accumulated scan work) — see [`JoinPlanner::Adaptive`]. The
//! former fixed `SCAN_THRESHOLD` survives only as the documented
//! [`JoinPlanner::FixedThreshold`] fallback/ablation. Both strategies
//! enumerate matching tuples in ascending tuple-index order, so the planner
//! choice can never change a result, only its cost — the agreement property
//! tests pin this down.
//!
//! [`evaluate_bindings_delta`] is the semi-naive variant: given per-atom
//! tuple watermarks, it enumerates exactly the homomorphisms that use at
//! least one tuple beyond its atom's watermark. Each atom (in join order)
//! takes a turn as the *delta atom* — old × delta × full windows — and the
//! **old-prefix join is computed once and shared across the passes**: pass
//! `p` extends the prefix rows that joined the first `p` atoms entirely
//! below their watermarks, and the same prefix state then grows by one atom
//! to seed pass `p + 1`, instead of every pass re-joining its pre-watermark
//! prefix from scratch. The merged passes are sorted by the tuple-index
//! trail their rows carry; the full join emits rows in lexicographic trail
//! order, so the sorted union reproduces it exactly. The chase therefore
//! applies identical steps in identical order whether it joins full or
//! delta — the byte-identical contract.

use crate::instance::{Relation, SymbolicInstance};
use mars_cq::{Atom, Predicate, Substitution, Term, Variable};

/// A homomorphism produced by evaluation (bindings of the evaluated atoms'
/// variables to terms of the instance).
pub type Binding = Substitution;

/// A tuple-index window `[lo, hi)` restricting which tuples of a relation an
/// atom may match (semi-naive old/delta/full roles).
type Window = (usize, usize);

/// Modeled cost of building a hash index, in scan-equivalent tuple
/// inspections: one pass over the relation (hash and insert each tuple).
/// Deliberately *not* padded with constant overhead — chase instances are
/// short-lived and probed heavily, so an index that one full-relation scan
/// can amortize should be built immediately (a fresh instance per back-chase
/// candidate would otherwise re-pay a deferral transient thousands of
/// times).
const INDEX_BUILD_COST_PER_TUPLE: usize = 1;

/// Modeled fixed cost of one index probe, in scan-equivalent tuple
/// inspections: materializing the key vector, hashing it, and narrowing the
/// posting list to the window (two binary searches). Scanning a window
/// smaller than this is always cheaper than probing, whatever the key
/// selectivity.
const PROBE_COST: usize = 8;

/// How evaluation resolves each join step to a filtered scan or an index
/// probe.
///
/// Every strategy enumerates matching tuples in ascending tuple-index order,
/// so the choice is invisible in the results — universal plans, renamings
/// and statistics are byte-identical across planners (property-tested and
/// enforced in CI); only the join cost changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinPlanner {
    /// Statistics-driven choice (the default). Per join step, the planner
    /// reads the relation's incremental statistics
    /// ([`Relation::distinct_for_columns`], [`Relation::has_index`],
    /// [`Relation::scan_work`]) and:
    ///
    /// 1. scans when one probe (hash + expected matches) cannot beat
    ///    scanning the window outright — tiny windows, e.g. delta atoms;
    /// 2. probes when the index over the key columns is already cached (its
    ///    build cost is sunk);
    /// 3. otherwise *rents or buys*: the scan work this step would spend is
    ///    accrued in the relation's per-column-set ledger
    ///    ([`Relation::note_scan_work`]), and the index is built as soon as
    ///    the accumulated work amortizes the modeled build cost.
    #[default]
    Adaptive,
    /// The pre-statistics behaviour: scan any window of at most this many
    /// tuples, probe (building the index if needed) anything larger,
    /// regardless of row counts or key selectivity. Kept as the documented
    /// fallback and ablation baseline
    /// ([`crate::chase::ChaseOptions::with_fixed_scan_threshold`]); the
    /// historical threshold is [`JoinPlanner::DEFAULT_FIXED_THRESHOLD`].
    FixedThreshold(usize),
}

impl JoinPlanner {
    /// The window size below which the pre-statistics engine always scanned
    /// (its fixed `SCAN_THRESHOLD`).
    pub const DEFAULT_FIXED_THRESHOLD: usize = 8;

    /// The fixed-threshold planner at the historical default threshold.
    pub fn fixed() -> JoinPlanner {
        JoinPlanner::FixedThreshold(Self::DEFAULT_FIXED_THRESHOLD)
    }

    /// Resolve one join step: probe the persistent index over `cols`
    /// (`true`) or scan the `window`-wide tuple range (`false`), for a step
    /// extending `rows` partial bindings. In adaptive mode a `false` answer
    /// also accrues the step's scan work in the relation's ledger, so
    /// repeated scans over the same column set eventually tip into building
    /// the index (rent-or-buy).
    fn use_probe(self, rel: &Relation, cols: &[usize], rows: usize, window: usize) -> bool {
        match self {
            JoinPlanner::FixedThreshold(t) => window > t,
            JoinPlanner::Adaptive => {
                // One probe costs key materialization + hash + narrowing
                // the posting list to the window (PROBE_COST), plus walking
                // the expected matches; a scan inspects the whole window
                // inline. If probing cannot win even with the index in
                // hand, scan without accruing debt. (The first test is pure
                // arithmetic so the common tiny-window case — delta atoms —
                // never touches the statistics.)
                if window <= PROBE_COST {
                    return false;
                }
                let expected = rel.expected_matches(cols, window);
                if PROBE_COST + expected >= window {
                    return false;
                }
                if rel.has_index(cols) {
                    return true;
                }
                let scan_now = rows.saturating_mul(window);
                let build_price = INDEX_BUILD_COST_PER_TUPLE.saturating_mul(rel.len());
                if rel.scan_work(cols).saturating_add(scan_now) >= build_price {
                    true
                } else {
                    rel.note_scan_work(cols, scan_now);
                    false
                }
            }
        }
    }
}

/// Choose an evaluation order for the atoms: start from the atom with the
/// most constants (most selective), then repeatedly pick an atom sharing a
/// variable with the already-ordered prefix (avoiding Cartesian products when
/// possible), preferring more constants.
///
/// Only the *set* of initially bound variables matters, so the order for a
/// fixed conjunction and binding shape can be computed once and reused —
/// [`crate::compiled::CompiledDed`] precompiles its premise order this way.
pub(crate) fn order_atoms(atoms: &[Atom], initially_bound: &[Variable]) -> Vec<usize> {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: Vec<Variable> = initially_bound.to_vec();

    let const_count = |a: &Atom| a.args.iter().filter(|t| t.is_const()).count();

    while order.len() < n {
        let mut best: Option<usize> = None;
        let mut best_key = (false, 0usize);
        for (i, a) in atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let connected = order.is_empty() || a.variables().any(|v| bound.contains(&v));
            let key =
                (connected, const_count(a) + a.variables().filter(|v| bound.contains(v)).count());
            if best.is_none() || key > best_key {
                best = Some(i);
                best_key = key;
            }
        }
        let i = best.expect("atom available");
        used[i] = true;
        order.push(i);
        bound.extend(atoms[i].variables());
    }
    order
}

/// Columnar join state: a variable per column, flat term-vector rows, and —
/// when trails are tracked — the tuple index chosen at each join step (in
/// join order) per row.
///
/// Intermediate join results are kept *columnar* — a shared variable list
/// plus flat term-vector rows — and only surviving final rows are
/// materialized as [`Substitution`]s by the callers. Cloning a hash-map
/// substitution per intermediate row dominated the chase profile; the term
/// vectors make each extension a `Vec` push.
#[derive(Clone)]
struct JoinState {
    vars: Vec<Variable>,
    rows: Vec<Vec<Term>>,
    trails: Vec<Vec<u32>>,
    track: bool,
}

impl JoinState {
    /// The one-row state every join starts from: the initially bound
    /// variables as columns, the initial binding as the single row.
    fn new(initial: &Substitution, track: bool) -> JoinState {
        let vars: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
        let rows = vec![vars.iter().map(|v| initial.get(*v).expect("initially bound")).collect()];
        JoinState { vars, rows, trails: if track { vec![Vec::new()] } else { Vec::new() }, track }
    }

    fn clear(&mut self) {
        self.rows.clear();
        self.trails.clear();
    }
}

/// Extend the join state by one atom restricted to a tuple-index `window`,
/// resolving scan vs index probe through `planner`. Returns `false` when the
/// state has no surviving rows (missing relation, empty window, or no
/// matches) — callers may then stop early; the variable layout is left
/// truncated, which is fine because empty states are never materialized.
fn join_step(
    state: &mut JoinState,
    atom: &Atom,
    inst: &SymbolicInstance,
    window: Window,
    planner: JoinPlanner,
) -> bool {
    if state.rows.is_empty() {
        return false;
    }
    let Some(rel) = inst.relation_data(atom.predicate) else {
        state.clear();
        return false;
    };
    let (lo, hi) = (window.0, window.1.min(rel.len()));
    if lo >= hi {
        state.clear();
        return false;
    }
    let tuples = rel.tuples();

    // Classify argument positions against the current column set.
    // Argument positions whose (fresh) variable becomes a new column.
    let mut new_positions: Vec<usize> = Vec::new();
    // Positions repeating a fresh variable first seen at an earlier
    // position of the same atom: the tuple must carry equal terms.
    let mut dup_positions: Vec<(usize, usize)> = Vec::new();
    // Hash-key columns of the persistent index (ascending positions) and
    // how to fill the probe key: a fixed constant or a row column.
    let mut key_cols: Vec<usize> = Vec::new();
    let mut key_sources: Vec<Result<Term, usize>> = Vec::new();
    for (i, arg) in atom.args.iter().enumerate() {
        match arg {
            Term::Const(_) => {
                key_cols.push(i);
                key_sources.push(Ok(*arg));
            }
            Term::Var(v) => {
                if let Some(col) = state.vars.iter().position(|w| w == v) {
                    key_cols.push(i);
                    key_sources.push(Err(col));
                } else if let Some(p) = atom.args[..i].iter().position(|w| w.as_var() == Some(*v)) {
                    dup_positions.push((i, p));
                } else {
                    new_positions.push(i);
                }
            }
        }
    }

    let track = state.track;
    let rows = &state.rows;
    let trails = &state.trails;
    let mut next_rows: Vec<Vec<Term>> = Vec::new();
    let mut next_trails: Vec<Vec<u32>> = Vec::new();
    // Extend one row by one matching tuple (dup filter + window applied
    // by the callers below).
    let mut extend = |row: &Vec<Term>, trail: Option<&Vec<u32>>, ti: usize| {
        let tuple = &tuples[ti];
        for &(i, p) in &dup_positions {
            if tuple[i] != tuple[p] {
                return;
            }
        }
        let mut extended = Vec::with_capacity(row.len() + new_positions.len());
        extended.extend_from_slice(row);
        extended.extend(new_positions.iter().map(|&p| tuple[p]));
        next_rows.push(extended);
        if let Some(trail) = trail {
            let mut t = Vec::with_capacity(trail.len() + 1);
            t.extend_from_slice(trail);
            t.push(ti as u32);
            next_trails.push(t);
        }
    };

    if key_cols.is_empty() {
        // No bound position: scan the window (Cartesian extension).
        for (ri, row) in rows.iter().enumerate() {
            let trail = track.then(|| &trails[ri]);
            for ti in lo..hi {
                extend(row, trail, ti);
            }
        }
    } else if !planner.use_probe(rel, &key_cols, rows.len(), hi - lo) {
        // The planner chose a filtered scan of the window (tiny windows,
        // unselective keys, or an index that has not amortized yet).
        for (ri, row) in rows.iter().enumerate() {
            let trail = track.then(|| &trails[ri]);
            'scan: for (ti, tuple) in tuples.iter().enumerate().take(hi).skip(lo) {
                for (i, src) in key_cols.iter().zip(&key_sources) {
                    let want = match src {
                        Ok(c) => *c,
                        Err(col) => row[*col],
                    };
                    if tuple[*i] != want {
                        continue 'scan;
                    }
                }
                extend(row, trail, ti);
            }
        }
    } else {
        // Probe the persistent index; posting lists are ascending tuple
        // indices, so the window is a subrange — the same ascending
        // enumeration the scan produces, which is why planner choices are
        // invisible in the results.
        let index = rel.index(&key_cols);
        let mut key: Vec<Term> = Vec::with_capacity(key_sources.len());
        for (ri, row) in rows.iter().enumerate() {
            key.clear();
            key.extend(key_sources.iter().map(|s| match s {
                Ok(c) => *c,
                Err(col) => row[*col],
            }));
            if let Some(matches) = index.get(&key) {
                let from = matches.partition_point(|&ti| ti < lo);
                let to = matches.partition_point(|&ti| ti < hi);
                let trail = track.then(|| &trails[ri]);
                for &ti in &matches[from..to] {
                    extend(row, trail, ti);
                }
            }
        }
    }
    state.rows = next_rows;
    state.trails = next_trails;
    state.vars.extend(
        new_positions.iter().map(|&p| atom.args[p].as_var().expect("new slots are variables")),
    );
    !state.rows.is_empty()
}

/// Does a columnar row satisfy every inequality?
fn row_satisfies(vars: &[Variable], row: &[Term], ineqs: &[(Term, Term)]) -> bool {
    let value = |t: Term| -> Term {
        match t {
            Term::Var(v) => {
                vars.iter().position(|w| *w == v).map(|c| row[c]).unwrap_or(Term::Var(v))
            }
            Term::Const(_) => t,
        }
    };
    ineqs.iter().all(|(a, b)| value(*a) != value(*b))
}

/// Materialize columnar rows as [`Substitution`]s extending `initial`.
fn materialize(vars: &[Variable], rows: Vec<Vec<Term>>, initial: &Substitution) -> Vec<Binding> {
    rows.into_iter()
        .map(|row| {
            let mut s = initial.clone();
            for (v, t) in vars.iter().zip(&row) {
                s.set(*v, *t);
            }
            s
        })
        .collect()
}

/// Evaluate `atoms` (a conjunction) over `inst`, extending `initial`, and
/// filter the results by the inequalities. Returns every homomorphism.
///
/// Join steps are planned adaptively from the instance's statistics; use
/// [`evaluate_bindings_with`] to choose the planner explicitly.
pub fn evaluate_bindings(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
) -> Vec<Binding> {
    evaluate_bindings_with(atoms, inequalities, inst, initial, JoinPlanner::default())
}

/// [`evaluate_bindings`] with an explicit [`JoinPlanner`]. The planner never
/// changes the result, only the join strategy per step.
pub fn evaluate_bindings_with(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
    planner: JoinPlanner,
) -> Vec<Binding> {
    if atoms.is_empty() {
        // Only the initial binding, provided it satisfies the inequalities.
        let ok = inequalities.iter().all(|(a, b)| initial.apply_term(*a) != initial.apply_term(*b));
        return if ok { vec![initial.clone()] } else { Vec::new() };
    }
    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    let order = order_atoms(atoms, &initially_bound);
    evaluate_bindings_ordered(atoms, inequalities, inst, initial, &order, planner)
}

/// The join core behind [`evaluate_bindings_with`], with the atom order
/// already chosen — the entry point for callers holding a precompiled order
/// ([`crate::compiled::CompiledDed::premise_bindings_with`]).
pub(crate) fn evaluate_bindings_ordered(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
    order: &[usize],
    planner: JoinPlanner,
) -> Vec<Binding> {
    let mut state = JoinState::new(initial, false);
    for &ai in order {
        if !join_step(&mut state, &atoms[ai], inst, (0, usize::MAX), planner) {
            break;
        }
    }
    let JoinState { vars, mut rows, .. } = state;
    if !inequalities.is_empty() {
        rows.retain(|r| row_satisfies(&vars, r, inequalities));
    }
    materialize(&vars, rows, initial)
}

/// Semi-naive (delta-seeded) evaluation: every homomorphism that maps at
/// least one atom to a tuple at index ≥ that atom's watermark `old_len[i]`.
///
/// Homomorphisms whose atoms all map below their watermarks (*all-old*
/// bindings) are exactly the ones the chase already confirmed blocked when
/// the watermarks were taken — blocked steps stay blocked on a growing
/// instance, so skipping them is sound. Each atom in join order takes a turn
/// as the delta atom (`old × delta × full` windows, partitioning the new
/// bindings by their first over-watermark join step), the **old-prefix join
/// is shared across the passes** (computed once, grown one atom per pass),
/// and the union is sorted by tuple-index trail — precisely the order the
/// full join emits, so downstream chase steps fire in an order byte-identical
/// to the naive full join.
pub fn evaluate_bindings_delta(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
    old_len: &[usize],
) -> Vec<Binding> {
    evaluate_bindings_delta_with(
        atoms,
        inequalities,
        inst,
        initial,
        old_len,
        JoinPlanner::default(),
    )
}

/// [`evaluate_bindings_delta`] with an explicit [`JoinPlanner`].
pub fn evaluate_bindings_delta_with(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
    old_len: &[usize],
    planner: JoinPlanner,
) -> Vec<Binding> {
    if atoms.is_empty() {
        // No atoms, hence no delta tuple can be involved: the (single)
        // initial binding is all-old by definition.
        return Vec::new();
    }
    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    // The same join order the full join would use: every pass then probes
    // the same persistent column indexes the full join would (no per-pass
    // index variants), and the per-row trails are directly comparable.
    let order = order_atoms(atoms, &initially_bound);
    evaluate_bindings_delta_ordered(atoms, inequalities, inst, initial, old_len, &order, planner)
}

/// The delta-join core behind [`evaluate_bindings_delta_with`], with the
/// atom order already chosen.
///
/// Pass `p` (in join order) joins `old-prefix × delta(order[p]) × full
/// suffix`. The old prefix — the rows joining `order[..p]` entirely below
/// their watermarks — is **shared**: one [`JoinState`] is grown by one
/// old-windowed atom per pass and cloned as each pass's seed, so the
/// pre-watermark prefixes are joined once overall instead of once per pass.
/// The pass windows partition the delta bindings by their first
/// over-watermark join step, so the trail-sorted union reproduces the full
/// join's order exactly.
pub(crate) fn evaluate_bindings_delta_ordered(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
    old_len: &[usize],
    order: &[usize],
    planner: JoinPlanner,
) -> Vec<Binding> {
    if atoms.is_empty() {
        return Vec::new();
    }
    debug_assert_eq!(atoms.len(), old_len.len());

    // The last join-order position whose atom has any delta tuples bounds
    // the loop: passes beyond it cannot exist, so neither their shared
    // prefix nor anything after it is ever computed. All-old evaluations
    // (no delta anywhere) return without joining a single tuple.
    let Some(last_delta) = (0..order.len())
        .rev()
        .find(|&p| inst.delta_width(atoms[order[p]].predicate, old_len[order[p]]) > 0)
    else {
        return Vec::new();
    };

    let mut prefix = JoinState::new(initial, true);
    let mut vars: Vec<Variable> = Vec::new();
    let mut merged: Vec<(Vec<u32>, Vec<Term>)> = Vec::new();
    for (p, &ai) in order.iter().enumerate().take(last_delta + 1) {
        if inst.delta_width(atoms[ai].predicate, old_len[ai]) > 0 {
            // Pass p: shared old prefix × delta atom × full suffix. The
            // final pass consumes the prefix instead of cloning it (nothing
            // extends it afterwards — the empty placeholder is never read).
            let mut pass = if p == last_delta {
                let empty = JoinState {
                    vars: Vec::new(),
                    rows: Vec::new(),
                    trails: Vec::new(),
                    track: true,
                };
                std::mem::replace(&mut prefix, empty)
            } else {
                prefix.clone()
            };
            let mut alive =
                join_step(&mut pass, &atoms[ai], inst, (old_len[ai], usize::MAX), planner);
            for &aj in &order[p + 1..] {
                if !alive {
                    break;
                }
                alive = join_step(&mut pass, &atoms[aj], inst, (0, usize::MAX), planner);
            }
            if alive {
                // The pass windows partition the binding space, so trails —
                // and only trails — differ across non-empty passes; the
                // variable layout is identical.
                merged.extend(pass.trails.into_iter().zip(pass.rows));
                vars = pass.vars;
            }
        }
        if p == last_delta {
            break; // the prefix has served its final pass
        }
        // Grow the shared prefix by this atom's old window; once it empties,
        // no later pass can contribute (they all extend it).
        if !join_step(&mut prefix, &atoms[ai], inst, (0, old_len[ai]), planner) {
            break;
        }
    }
    // Lexicographic trail order == the order the full join enumerates rows.
    merged.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut rows: Vec<Vec<Term>> = merged.into_iter().map(|(_, row)| row).collect();
    if !inequalities.is_empty() {
        rows.retain(|r| row_satisfies(&vars, r, inequalities));
    }
    materialize(&vars, rows, initial)
}

/// Semijoin-style existence check: is there at least one extension of
/// `initial` satisfying the atoms and inequalities?
///
/// This is the chase's *blocked* test, called once per premise binding —
/// by far the highest-volume entry point of this module — so unlike
/// [`evaluate_bindings`] it does not materialize anything: a backtracking
/// search over the (join-ordered) atoms binds variables in place and
/// returns at the first witness. Candidate tuples at each depth come from
/// the persistent column indexes (probed on the positions bound so far)
/// or a filtered scan, as resolved per depth by the adaptive planner; use
/// [`satisfiable_with`] to choose the planner explicitly.
pub fn satisfiable(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
) -> bool {
    satisfiable_with(atoms, inequalities, inst, initial, JoinPlanner::default())
}

/// [`satisfiable`] with an explicit [`JoinPlanner`]. The planner never
/// changes the answer, only how candidate tuples are found per depth.
pub fn satisfiable_with(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
    planner: JoinPlanner,
) -> bool {
    if atoms.is_empty() {
        return inequalities.iter().all(|(a, b)| initial.apply_term(*a) != initial.apply_term(*b));
    }
    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    let order = order_atoms(atoms, &initially_bound);
    satisfiable_ordered(atoms, inequalities, inst, initial.clone(), &order, planner)
}

/// The search core behind [`satisfiable_with`], with the atom order already
/// chosen — the entry point for callers holding a precompiled order
/// ([`crate::compiled::CompiledConclusion::satisfied_with`], whose bound
/// *set* is known at compile time). The order only steers the search, never
/// the boolean answer, so a precompiled order is always sound.
pub(crate) fn satisfiable_ordered(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: Substitution,
    order: &[usize],
    planner: JoinPlanner,
) -> bool {
    if atoms.is_empty() {
        return inequalities.iter().all(|(a, b)| initial.apply_term(*a) != initial.apply_term(*b));
    }
    // The initial binding is taken by value: the highest-volume caller (the
    // blocked test) hands over a substitution it just built, so the search
    // mutates it in place instead of cloning a second time.
    let mut sub = initial;
    // One posting-list scratch buffer per depth: candidate tuple ids are
    // copied out of the index so no index borrow is held across recursion
    // (a deeper probe of the same relation may need to build a new index).
    let mut scratch: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
    satisfiable_from(order, 0, atoms, inequalities, inst, &mut sub, &mut scratch, planner)
}

#[allow(clippy::too_many_arguments)]
fn satisfiable_from(
    order: &[usize],
    depth: usize,
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    sub: &mut Substitution,
    scratch: &mut [Vec<usize>],
    planner: JoinPlanner,
) -> bool {
    if depth == order.len() {
        return inequalities.iter().all(|(a, b)| sub.apply_term(*a) != sub.apply_term(*b));
    }
    let atom = &atoms[order[depth]];
    let Some(rel) = inst.relation_data(atom.predicate) else {
        return false;
    };
    if rel.is_empty() {
        return false;
    }

    // Bound positions (constants and variables already bound) form the probe
    // key; the rest are free.
    let mut key_cols: Vec<usize> = Vec::new();
    let mut key: Vec<Term> = Vec::new();
    for (i, arg) in atom.args.iter().enumerate() {
        match arg {
            Term::Const(_) => {
                key_cols.push(i);
                key.push(*arg);
            }
            Term::Var(v) => {
                if let Some(t) = sub.get(*v) {
                    key_cols.push(i);
                    key.push(t);
                }
            }
        }
    }
    let (mine, rest) = scratch.split_first_mut().expect("scratch sized to the atom order");
    if key_cols.len() == atom.args.len() {
        // Fully bound: the key *is* the tuple — a set-membership test.
        return rel.contains(&key)
            && satisfiable_from(order, depth + 1, atoms, inequalities, inst, sub, rest, planner);
    }
    mine.clear();
    if key_cols.is_empty() {
        mine.extend(0..rel.len());
    } else if !planner.use_probe(rel, &key_cols, 1, rel.len()) {
        // The planner chose a filtered scan (tiny or unselective relations,
        // or an index that has not amortized across repeated probes yet).
        'scan: for (ti, tuple) in rel.tuples().iter().enumerate() {
            for (i, want) in key_cols.iter().zip(&key) {
                if tuple[*i] != *want {
                    continue 'scan;
                }
            }
            mine.push(ti);
        }
    } else {
        let index = rel.index(&key_cols);
        if let Some(matches) = index.get(&key) {
            mine.extend_from_slice(matches);
        }
    }

    'tuples: for &ti in mine.iter() {
        let tuple = &rel.tuples()[ti];
        // Match the free positions against the tuple, collecting the fresh
        // bindings this tuple would add (repeated fresh variables within the
        // atom must match equal terms; bound positions already matched via
        // the probe key).
        let mut added: Vec<(Variable, Term)> = Vec::new();
        for (i, arg) in atom.args.iter().enumerate() {
            if let Term::Var(v) = arg {
                if sub.binds(*v) {
                    continue;
                }
                if let Some((_, t)) = added.iter().find(|(w, _)| w == v) {
                    if *t != tuple[i] {
                        continue 'tuples;
                    }
                } else {
                    added.push((*v, tuple[i]));
                }
            }
        }
        for (v, t) in &added {
            sub.set(*v, *t);
        }
        if satisfiable_from(order, depth + 1, atoms, inequalities, inst, sub, rest, planner) {
            return true;
        }
        for (v, _) in &added {
            sub.remove(*v);
        }
    }
    false
}

/// Per-atom delta watermarks derived from per-predicate watermarks: the
/// convenience used by [`crate::compiled::CompiledDed::premise_bindings_delta`].
pub fn atom_watermarks(atoms: &[Atom], watermark: impl Fn(Predicate) -> usize) -> Vec<usize> {
    atoms.iter().map(|a| watermark(a.predicate)).collect()
}
#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, ConjunctiveQuery, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }
    fn v(n: &str) -> Variable {
        Variable::named(n)
    }

    fn example_instance() -> SymbolicInstance {
        // Q(a,g) :- R(a,b), R(b,c), R(c,d), S(d,e), S(e,f), S(f,g)
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("a"), t("g")]).with_body(vec![
            Atom::named("R", vec![t("a"), t("b")]),
            Atom::named("R", vec![t("b"), t("c")]),
            Atom::named("R", vec![t("c"), t("d")]),
            Atom::named("S", vec![t("d"), t("e")]),
            Atom::named("S", vec![t("e"), t("f")]),
            Atom::named("S", vec![t("f"), t("g")]),
        ]);
        SymbolicInstance::from_query(&q)
    }

    #[test]
    fn example_3_1_premise_evaluation() {
        // premise: R(x,y), R(y,z), S(z,u), S(u,v) — exactly one homomorphism.
        let premise = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("S", vec![t("z"), t("u")]),
            Atom::named("S", vec![t("u"), t("v")]),
        ];
        let inst = example_instance();
        let res = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
        assert_eq!(res.len(), 1);
        let h = &res[0];
        assert_eq!(h.get(v("x")), Some(t("b")));
        assert_eq!(h.get(v("v")), Some(t("f")));
    }

    #[test]
    fn constants_are_pushed_into_the_scan() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&tag(t("n1"), "author"));
        inst.insert_atom(&tag(t("n2"), "title"));
        inst.insert_atom(&tag(t("n3"), "author"));
        let res = evaluate_bindings(&[tag(t("x"), "author")], &[], &inst, &Substitution::new());
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn repeated_variables_in_one_atom() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        inst.insert_atom(&Atom::named("R", vec![t("c"), t("c")]));
        let res = evaluate_bindings(
            &[Atom::named("R", vec![t("x"), t("x")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].get(v("x")), Some(t("c")));
    }

    #[test]
    fn initial_bindings_restrict_results() {
        let inst = example_instance();
        let init = Substitution::from_pairs(vec![(v("x"), t("b"))]).unwrap();
        let res = evaluate_bindings(&[Atom::named("R", vec![t("x"), t("y")])], &[], &inst, &init);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].get(v("y")), Some(t("c")));
    }

    #[test]
    fn inequalities_filter_bindings() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("a")]));
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        let atoms = vec![Atom::named("R", vec![t("x"), t("y")])];
        let all = evaluate_bindings(&atoms, &[], &inst, &Substitution::new());
        assert_eq!(all.len(), 2);
        let neq = evaluate_bindings(&atoms, &[(t("x"), t("y"))], &inst, &Substitution::new());
        assert_eq!(neq.len(), 1);
    }

    #[test]
    fn empty_atom_list_checks_only_inequalities() {
        let inst = SymbolicInstance::new();
        let init = Substitution::from_pairs(vec![(v("x"), t("a")), (v("y"), t("a"))]).unwrap();
        assert_eq!(evaluate_bindings(&[], &[], &inst, &init).len(), 1);
        assert!(evaluate_bindings(&[], &[(t("x"), t("y"))], &inst, &init).is_empty());
    }

    #[test]
    fn missing_relation_yields_no_bindings() {
        let inst = example_instance();
        let res = evaluate_bindings(
            &[Atom::named("Absent", vec![t("x")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert!(res.is_empty());
        assert!(!satisfiable(
            &[Atom::named("Absent", vec![t("x")])],
            &[],
            &inst,
            &Substitution::new()
        ));
    }

    #[test]
    fn chain_evaluation_counts_paths() {
        // child chain n1->n2->n3->n4; pattern child(x,y),child(y,z) has 2 matches.
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("n1"), t("n2")));
        inst.insert_atom(&child(t("n2"), t("n3")));
        inst.insert_atom(&child(t("n3"), t("n4")));
        let res = evaluate_bindings(
            &[child(t("x"), t("y")), child(t("y"), t("z"))],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn disconnected_patterns_produce_cross_products() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("A", vec![t("a1")]));
        inst.insert_atom(&Atom::named("A", vec![t("a2")]));
        inst.insert_atom(&Atom::named("B", vec![t("b1")]));
        inst.insert_atom(&Atom::named("B", vec![t("b2")]));
        let res = evaluate_bindings(
            &[Atom::named("A", vec![t("x")]), Atom::named("B", vec![t("y")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn agrees_with_backtracking_homomorphism_search() {
        // Cross-check the set-oriented evaluator against the naive search
        // from mars-cq on a moderately branchy instance.
        let mut inst = SymbolicInstance::new();
        let mut atoms_in_instance = Vec::new();
        for i in 0..6 {
            for j in 0..3 {
                let a = child(t(&format!("p{i}")), t(&format!("c{i}_{j}")));
                inst.insert_atom(&a);
                atoms_in_instance.push(a);
            }
        }
        let pattern = vec![child(t("x"), t("y")), child(t("x"), t("z"))];
        let fast = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let index = mars_cq::AtomIndex::new(&atoms_in_instance);
        let slow = mars_cq::find_all_homomorphisms(&pattern, &index, &Substitution::new(), None);
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.len(), 6 * 3 * 3);
    }

    /// With all-zero watermarks, the only non-empty pass is the first one
    /// and its windows are unrestricted: the delta evaluation *is* the full
    /// join, including its order.
    #[test]
    fn delta_with_zero_watermarks_equals_full_join() {
        let inst = example_instance();
        let premise = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("S", vec![t("z"), t("u")]),
        ];
        let full = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
        let delta = evaluate_bindings_delta(&premise, &[], &inst, &Substitution::new(), &[0, 0, 0]);
        assert_eq!(full, delta);
    }

    /// Delta bindings + all-old bindings partition the full join: watermarks
    /// taken before an insert make the delta evaluation return exactly the
    /// new homomorphisms, in the full join's relative order.
    #[test]
    fn delta_after_insert_returns_exactly_the_new_bindings() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("n1"), t("n2")));
        inst.insert_atom(&child(t("n2"), t("n3")));
        let pattern = vec![child(t("x"), t("y")), child(t("y"), t("z"))];
        let before = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        assert_eq!(before.len(), 1);
        let marks = vec![inst.relation_len(pattern[0].predicate); 2];

        inst.insert_atom(&child(t("n3"), t("n4")));
        inst.insert_atom(&child(t("n0"), t("n1")));
        let after = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let delta = evaluate_bindings_delta(&pattern, &[], &inst, &Substitution::new(), &marks);
        // Every old binding is absent from the delta, every new one present,
        // and the delta preserves the full join's relative order.
        assert_eq!(after.len(), before.len() + delta.len());
        for b in &before {
            assert!(!delta.contains(b));
        }
        let filtered: Vec<&Binding> = after.iter().filter(|b| !before.contains(b)).collect();
        assert_eq!(filtered.len(), delta.len());
        for (f, d) in filtered.iter().zip(&delta) {
            assert_eq!(**f, *d, "delta must preserve the full join's order");
        }
    }

    /// The same partition property on a branchier instance with repeated
    /// predicates and inequalities.
    #[test]
    fn delta_partition_with_inequalities() {
        let mut inst = SymbolicInstance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "a"), ("c", "a")] {
            inst.insert_atom(&Atom::named("R", vec![t(a), t(b)]));
        }
        let pattern =
            vec![Atom::named("R", vec![t("x"), t("y")]), Atom::named("R", vec![t("y"), t("z")])];
        let ineqs = vec![(t("x"), t("z"))];
        let marks = vec![inst.relation_len(pattern[0].predicate); 2];
        inst.insert_atom(&Atom::named("R", vec![t("c"), t("d")]));
        inst.insert_atom(&Atom::named("R", vec![t("d"), t("a")]));

        let after = evaluate_bindings(&pattern, &ineqs, &inst, &Substitution::new());
        let delta = evaluate_bindings_delta(&pattern, &ineqs, &inst, &Substitution::new(), &marks);
        let old: Vec<&Binding> = after
            .iter()
            .filter(|b| {
                // A binding is all-old iff both matched tuples predate the mark.
                let pos = |x: Term, y: Term| {
                    inst.relation(pattern[0].predicate)
                        .iter()
                        .position(|tu| tu[0] == x && tu[1] == y)
                        .unwrap()
                };
                pos(b.get(v("x")).unwrap(), b.get(v("y")).unwrap()) < marks[0]
                    && pos(b.get(v("y")).unwrap(), b.get(v("z")).unwrap()) < marks[1]
            })
            .collect();
        assert_eq!(old.len() + delta.len(), after.len());
        for d in &delta {
            assert!(after.contains(d));
            assert!(!old.contains(&d));
        }
    }

    #[test]
    fn satisfiable_probes_agree_with_full_evaluation() {
        let inst = example_instance();
        let premise =
            vec![Atom::named("R", vec![t("x"), t("y")]), Atom::named("S", vec![t("u"), t("w")])];
        assert!(satisfiable(&premise, &[], &inst, &Substitution::new()));
        // Fully bound membership path.
        let init = Substitution::from_pairs(vec![(v("x"), t("a")), (v("y"), t("b"))]).unwrap();
        assert!(satisfiable(&[Atom::named("R", vec![t("x"), t("y")])], &[], &inst, &init));
        let bad = Substitution::from_pairs(vec![(v("x"), t("a")), (v("y"), t("c"))]).unwrap();
        assert!(!satisfiable(&[Atom::named("R", vec![t("x"), t("y")])], &[], &inst, &bad));
        // Repeated free variable within an atom.
        let mut inst2 = SymbolicInstance::new();
        inst2.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        assert!(!satisfiable(
            &[Atom::named("R", vec![t("x"), t("x")])],
            &[],
            &inst2,
            &Substitution::new()
        ));
        inst2.insert_atom(&Atom::named("R", vec![t("c"), t("c")]));
        assert!(satisfiable(
            &[Atom::named("R", vec![t("x"), t("x")])],
            &[],
            &inst2,
            &Substitution::new()
        ));
    }

    /// The planner resolves scan vs probe per step but can never change a
    /// result: adaptive, the historical fixed threshold, an always-scan and
    /// an always-probe planner must return identical binding lists — order
    /// included — on full, delta and semijoin evaluation.
    #[test]
    fn planners_agree_on_bindings_deltas_and_satisfiability() {
        let mut inst = SymbolicInstance::new();
        for i in 0..24 {
            inst.insert_atom(&child(t(&format!("p{}", i % 6)), t(&format!("c{i}"))));
            inst.insert_atom(&tag(t(&format!("c{i}")), if i % 2 == 0 { "a" } else { "b" }));
        }
        let pattern = vec![child(t("x"), t("y")), tag(t("y"), "a"), child(t("x"), t("z"))];
        let ineqs = vec![(t("y"), t("z"))];
        let marks = vec![
            inst.relation_len(pattern[0].predicate) - 3,
            inst.relation_len(pattern[1].predicate) - 2,
            inst.relation_len(pattern[2].predicate) - 3,
        ];
        let planners = [
            JoinPlanner::Adaptive,
            JoinPlanner::fixed(),
            JoinPlanner::FixedThreshold(0),
            JoinPlanner::FixedThreshold(usize::MAX),
        ];
        let reference =
            evaluate_bindings_with(&pattern, &ineqs, &inst, &Substitution::new(), planners[0]);
        let ref_delta = evaluate_bindings_delta_with(
            &pattern,
            &ineqs,
            &inst,
            &Substitution::new(),
            &marks,
            planners[0],
        );
        assert!(!reference.is_empty());
        for p in planners[1..].iter() {
            assert_eq!(
                reference,
                evaluate_bindings_with(&pattern, &ineqs, &inst, &Substitution::new(), *p),
                "planner {p:?} changed the full join"
            );
            assert_eq!(
                ref_delta,
                evaluate_bindings_delta_with(
                    &pattern,
                    &ineqs,
                    &inst,
                    &Substitution::new(),
                    &marks,
                    *p
                ),
                "planner {p:?} changed the delta join"
            );
            assert!(
                satisfiable_with(&pattern, &ineqs, &inst, &Substitution::new(), *p),
                "planner {p:?} changed satisfiability"
            );
        }
    }

    /// The shared old-prefix delta join must still partition exactly like
    /// the per-pass formulation: zero watermarks degenerate to the full
    /// join, and a mid-stream watermark returns exactly the new bindings in
    /// full-join order (these complement the pre-existing partition tests).
    #[test]
    fn shared_prefix_delta_equals_per_pass_partition() {
        let mut inst = SymbolicInstance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("a", "c")] {
            inst.insert_atom(&Atom::named("R", vec![t(a), t(b)]));
        }
        let pattern = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("R", vec![t("z"), t("w")]),
        ];
        // Watermark below the full length on every atom: multiple passes
        // have non-empty deltas and non-empty shared prefixes.
        let marks = vec![3usize, 2, 4];
        let full = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let delta = evaluate_bindings_delta(&pattern, &[], &inst, &Substitution::new(), &marks);
        // Every delta binding appears in the full join, in the same relative
        // order, and no all-old binding leaks in.
        let mut fi = full.iter();
        for d in &delta {
            assert!(fi.any(|f| f == d), "delta binding missing or out of order: {d:?}");
        }
        let rel = inst.relation(pattern[0].predicate);
        let pos = |x: Term, y: Term| {
            rel.iter().position(|tu| tu[0] == x && tu[1] == y).expect("tuple present")
        };
        for b in &full {
            let steps = [
                pos(b.get(v("x")).unwrap(), b.get(v("y")).unwrap()),
                pos(b.get(v("y")).unwrap(), b.get(v("z")).unwrap()),
                pos(b.get(v("z")).unwrap(), b.get(v("w")).unwrap()),
            ];
            let all_old = steps.iter().zip(&marks).all(|(s, m)| s < m);
            assert_eq!(
                !all_old,
                delta.contains(b),
                "binding {b:?} misclassified by the shared-prefix delta join"
            );
        }
    }
}
